"""A CDCL (conflict-driven clause learning) SAT solver.

The paper's deductive engines for the timing-analysis and program-synthesis
applications are SAT/SMT solvers.  No solver is available offline, so this
module implements the classic CDCL architecture from scratch:

* two-watched-literal unit propagation with *blocking literals* (each
  watch entry caches one other literal of its clause; when the cached
  literal is already true the clause is skipped without touching it,
  which avoids most pointer-chasing in the hot loop),
* first-UIP conflict analysis with clause learning and non-chronological
  backjumping,
* VSIDS-style variable activities with exponential decay,
* phase saving,
* Luby-sequence restarts (the default), plus optional glucose-style
  adaptive restarts driven by LBD moving averages
  (``restart_strategy="glucose"``): restart when the average LBD of the
  last 50 learned clauses exceeds the lifetime average by the glucose
  factor (recent avg > lifetime avg / 0.8, i.e. 1.25×) — the recent
  clauses are "worse glue" than usual, so the current search region is
  unpromising,
* glucose-style learned-clause management: every learned clause carries
  its LBD ("literals block distance" — the number of distinct decision
  levels among its literals); reduction deletes high-LBD clauses first
  and *glue* clauses (LBD ≤ 2) are kept unconditionally,
* level-0 database simplification (:meth:`CdclSolver.simplify_database`),
  used by the SMT layer to garbage-collect clause scopes that were
  permanently deactivated by popping,
* forced LBD-threshold retention (:meth:`CdclSolver.reduce_learned`),
  used by the solver pool between jobs to keep only good-glue learned
  clauses on long-lived sessions,
* solving under assumptions (used for incremental queries by the SMT layer).

The implementation favours clarity over raw speed but is easily fast enough
for the bit-blasted queries produced by the reproduction's benchmarks
(thousands of variables, tens of thousands of clauses).
"""

from __future__ import annotations

import enum
import heapq
import time
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.exceptions import SolverError
from repro.smt.cnf import (
    CnfFormula,
    literal_is_negative,
    literal_variable,
    make_literal,
    negate,
)

#: Truth values used on the solver trail.
_UNASSIGNED = -1
_FALSE = 0
_TRUE = 1


class SatResult(enum.Enum):
    """Verdict of a SAT query."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SatStatistics:
    """Counters describing the work done by the solver."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    deleted_clauses: int = 0
    max_decision_level: int = 0
    #: Problem clauses accepted into the database via :meth:`CdclSolver.add_clause`
    #: (tautologies and clauses already satisfied at level 0 are not counted;
    #: learned clauses are tracked separately by ``learned_clauses``).
    clauses_added: int = 0
    #: Clauses removed by :meth:`CdclSolver.simplify_database` (level-0
    #: garbage collection of satisfied clauses, e.g. retired SMT scopes).
    gc_removed_clauses: int = 0
    #: Number of :meth:`CdclSolver.simplify_database` runs.
    gc_runs: int = 0

    def delta_since(self, baseline: "SatStatistics") -> "SatStatistics":
        """Counters accumulated since ``baseline`` was snapshotted.

        Used for per-job accounting on shared (pooled) solvers: every
        monotone counter is differenced; ``max_decision_level`` is not a
        monotone count, so the current value is reported as-is.
        """
        delta = SatStatistics()
        for name in vars(delta):  # analysis: allow[ND01] field-wise difference; every field is visited exactly once, order-independent
            if name == "max_decision_level":
                setattr(delta, name, getattr(self, name))
            else:
                setattr(delta, name, getattr(self, name) - getattr(baseline, name))
        return delta

    def merged_with(self, other: "SatStatistics") -> "SatStatistics":
        """Field-wise sum of two records (max for the level-depth field)."""
        merged = SatStatistics()
        for name in vars(merged):  # analysis: allow[ND01] field-wise sum; every field is visited exactly once, order-independent
            if name == "max_decision_level":
                value = max(getattr(self, name), getattr(other, name))
            else:
                value = getattr(self, name) + getattr(other, name)
            setattr(merged, name, value)
        return merged


def luby(index: int) -> int:
    """Return the ``index``-th element (1-based) of the Luby restart sequence.

    The sequence is 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
    (Luby, Sinclair & Zuckerman 1993), computed with the standard
    iterative scheme used by MiniSat.
    """
    position = index - 1  # zero-based position within the sequence
    size, exponent = 1, 0
    while size < position + 1:
        exponent += 1
        size = 2 * size + 1
    while size - 1 != position:
        size = (size - 1) >> 1
        exponent -= 1
        position %= size
    return 1 << exponent


class _Clause:
    """A clause in the solver's database.

    ``lbd`` is the literals-block-distance of learned clauses (number of
    distinct decision levels at learning time, kept as a running minimum);
    problem clauses carry the sentinel 0 and are never reduced.
    ``pristine`` remembers the literal order the clause was created with:
    propagation permanently swaps literals in place while relocating
    watches, and :meth:`CdclSolver.reset_search_state` restores the
    original order so a reused solver replays a fresh solver's search.
    """

    __slots__ = ("literals", "learned", "activity", "lbd", "pristine")

    def __init__(self, literals: list[int], learned: bool = False, lbd: int = 0):
        self.literals = literals
        self.learned = learned
        self.activity = 0.0
        self.lbd = lbd
        self.pristine = tuple(literals)


class CdclSolver:
    """A CDCL SAT solver over the internal literal encoding of
    :mod:`repro.smt.cnf`.

    Typical use::

        solver = CdclSolver()
        x, y = solver.new_variable(), solver.new_variable()
        solver.add_clause([make_literal(x), make_literal(y, negative=True)])
        result = solver.solve()
        if result is SatResult.SAT:
            model = solver.model()      # model[v] -> bool

    The solver may be reused for multiple :meth:`solve` calls, optionally
    with different assumption literals each time; clauses persist between
    calls (incremental solving).
    """

    #: Number of recent learned-clause LBDs averaged by the glucose
    #: restart heuristic, and its scaling factor K: a restart fires when
    #: ``recent_avg * K > lifetime_avg``, i.e. the recent average must
    #: exceed ``lifetime_avg / K`` (1.25× at K = 0.8).  *Raising* K makes
    #: restarts more frequent.
    GLUCOSE_LBD_WINDOW = 50
    GLUCOSE_MARGIN = 0.8

    def __init__(
        self,
        variable_decay: float = 0.95,
        clause_decay: float = 0.999,
        restart_base: int = 100,
        max_learned_ratio: float = 0.5,
        max_conflicts: int | None = None,
        restart_strategy: str = "luby",
    ):
        if restart_strategy not in {"luby", "glucose"}:
            raise SolverError(f"unknown restart strategy {restart_strategy!r}")
        self._num_vars = 0
        self._clauses: list[_Clause] = []
        # Watch lists indexed by literal; each entry is a (blocker, clause)
        # pair, where the blocker is some other literal of the clause that
        # lets the hot loop skip the clause when it is already satisfied.
        self._watches: list[list[tuple[int, _Clause]]] = [[], []]
        self._assignment: list[int] = [_UNASSIGNED]
        self._level: list[int] = [0]
        self._reason: list[_Clause | None] = [None]
        self._activity: list[float] = [0.0]
        self._phase: list[bool] = [False]
        self._trail: list[int] = []
        self._trail_limits: list[int] = []
        self._propagation_head = 0
        self._variable_increment = 1.0
        self._variable_decay = variable_decay
        self._clause_increment = 1.0
        self._clause_decay = clause_decay
        self._restart_base = restart_base
        self._max_learned_ratio = max_learned_ratio
        self._max_conflicts = max_conflicts
        self._restart_strategy = restart_strategy
        # Moving window of recent learned-clause LBDs plus running sums for
        # the glucose restart heuristic (cheap to maintain even under Luby).
        self._lbd_recent: deque[int] = deque(maxlen=self.GLUCOSE_LBD_WINDOW)
        self._lbd_recent_sum = 0
        self._lbd_lifetime_sum = 0
        self._lbd_lifetime_count = 0
        # Job-level limits (see :meth:`set_limits`): an absolute ceiling on
        # ``statistics.conflicts`` and a ``time.monotonic()`` deadline,
        # both answering UNKNOWN when exceeded.  Unlike ``max_conflicts``
        # (a per-solve budget) these span solve() calls, which lets the
        # SMT/engine layers enforce per-*job* budgets across many checks.
        self._conflict_ceiling: int | None = None
        self._deadline: float | None = None
        self._unsat = False
        self._conflicts_at_last_reduction = 0
        # Decision levels occupied by assumption pseudo-decisions during the
        # current solve() call (one entry per assumption already enqueued).
        self._active_assumption_levels: list[int] = []
        # Lazy max-heap of (-activity, variable) entries used by the
        # branching heuristic; stale entries are skipped on pop.
        self._order_heap: list[tuple[float, int]] = []
        # Low-water mark for the heap-exhausted fallback of
        # _pick_branch_literal: every unassigned variable below this index
        # is guaranteed to have a heap entry (any variable skipped by the
        # fallback scan was assigned at the time, and unassignment happens
        # only in _backtrack, which re-pushes the variable), so the linear
        # scan never revisits a prefix it has already paid for.
        self._fallback_head = 1
        # Model of the most recent satisfiable solve() (the working
        # assignment is backtracked to level 0 before returning, so clauses
        # can be added incrementally afterwards).
        self._cached_model: list[bool] | None = None
        self.statistics = SatStatistics()

    # -- problem construction -------------------------------------------

    def new_variable(self) -> int:
        """Allocate a fresh variable and return its (positive) index."""
        self._num_vars += 1
        self._assignment.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        self._watches.append([])
        self._watches.append([])
        heapq.heappush(self._order_heap, (0.0, self._num_vars))
        return self._num_vars

    def ensure_variables(self, count: int) -> None:
        """Grow the variable table so that indices ``1..count`` exist."""
        while self._num_vars < count:
            self.new_variable()

    @property
    def num_variables(self) -> int:
        """Number of variables allocated so far."""
        return self._num_vars

    @property
    def num_fixed_assignments(self) -> int:
        """Number of level-0 (fixed) assignments on the trail."""
        if self._trail_limits:
            return self._trail_limits[0]
        return len(self._trail)

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause (internal literal encoding) to the database.

        Must be called at decision level 0 (i.e. outside :meth:`solve`).
        """
        if self._trail_limits:
            raise SolverError("clauses may only be added at decision level 0")
        seen: set[int] = set()
        clause: list[int] = []
        for literal in literals:
            variable = literal_variable(literal)
            if variable <= 0 or variable > self._num_vars:
                raise SolverError(f"unallocated variable in literal {literal}")
            if negate(literal) in seen:
                return  # tautology
            if literal in seen:
                continue
            # Drop literals already false at level 0; satisfied clauses are
            # dropped entirely.
            value = self._literal_value(literal)
            if value == _TRUE and self._level[variable] == 0:
                return
            if value == _FALSE and self._level[variable] == 0:
                continue
            seen.add(literal)
            clause.append(literal)
        if not clause:
            self._unsat = True
            return
        self.statistics.clauses_added += 1
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._unsat = True
            elif self._propagate() is not None:
                self._unsat = True
            return
        self._attach_clause(_Clause(clause))

    def add_formula(self, formula: CnfFormula) -> None:
        """Add every clause of a :class:`CnfFormula`."""
        self.ensure_variables(formula.num_variables)
        if formula.contains_empty_clause:
            self._unsat = True
        for clause in formula.clauses:
            self.add_clause(clause)

    # -- solving ---------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = ()) -> SatResult:
        """Decide satisfiability of the clause database under ``assumptions``.

        Args:
            assumptions: literals (internal encoding) assumed true for this
                call only.

        Returns:
            :data:`SatResult.SAT`, :data:`SatResult.UNSAT`, or
            :data:`SatResult.UNKNOWN` if a conflict budget was configured
            and exhausted.

        The model cached by a previous satisfiable call is invalidated on
        entry: after a non-SAT answer, :meth:`model` raises
        :class:`SolverError` instead of returning stale values.
        """
        self._cached_model = None
        if self._unsat:
            return SatResult.UNSAT
        self._backtrack(0)
        if self._propagate() is not None:
            self._unsat = True
            return SatResult.UNSAT

        # The conflict budget applies per solve() call, so an incremental
        # sequence of checks does not starve later calls of their budget.
        conflict_budget = self._max_conflicts
        conflicts_at_start = self.statistics.conflicts
        restart_count = 0
        conflicts_until_restart = self._restart_base * luby(restart_count + 1)
        conflicts_since_restart = 0

        # Enqueue assumptions as pseudo-decisions, one level each.
        assumption_queue = list(assumptions)

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.statistics.conflicts += 1
                conflicts_since_restart += 1
                if self._limits_exhausted(conflicts_at_start, conflict_budget):
                    self._backtrack(0)
                    return SatResult.UNKNOWN
                if self._decision_level() == 0:
                    self._unsat = True
                    return SatResult.UNSAT
                if self._decision_level() <= len(self._active_assumption_levels):
                    # Conflict depends only on assumptions.
                    self._backtrack(0)
                    return SatResult.UNSAT
                learned, backjump_level, lbd = self._analyze_conflict(conflict)
                self._backtrack(max(backjump_level, len(self._active_assumption_levels)))
                self._learn_clause(learned, lbd)
                self._record_lbd(lbd)
                self._decay_activities()
                continue

            if self._restart_due(conflicts_since_restart, conflicts_until_restart):
                restart_count += 1
                self.statistics.restarts += 1
                conflicts_since_restart = 0
                conflicts_until_restart = self._restart_base * luby(restart_count + 1)
                self._lbd_recent.clear()
                self._lbd_recent_sum = 0
                self._backtrack(len(self._active_assumption_levels))
                continue

            self._reduce_learned_clauses_if_needed()

            # Re-establish pending assumptions (they may have been undone by
            # restarts / backjumps).
            next_assumption = self._next_unhandled_assumption(assumption_queue)
            if next_assumption is not None:
                value = self._literal_value(next_assumption)
                if value == _FALSE:
                    self._backtrack(0)
                    return SatResult.UNSAT
                if value == _TRUE:
                    # Already implied; record a no-op decision level so the
                    # bookkeeping of assumption levels stays consistent.
                    self._trail_limits.append(len(self._trail))
                    self._active_assumption_levels.append(self._decision_level())
                    continue
                self._trail_limits.append(len(self._trail))
                self._active_assumption_levels.append(self._decision_level())
                self._enqueue(next_assumption, None)
                continue

            if (
                self._deadline is not None
                and (self.statistics.decisions & 255) == 0
                and time.monotonic() >= self._deadline  # analysis: allow[WC01] sanctioned deadline probe; enforces the job budget, never feeds search order
            ):
                self._backtrack(0)
                return SatResult.UNKNOWN

            literal = self._pick_branch_literal()
            if literal is None:
                self._cached_model = [value == _TRUE for value in self._assignment]
                self._backtrack(0)
                return SatResult.SAT
            self.statistics.decisions += 1
            self._trail_limits.append(len(self._trail))
            self.statistics.max_decision_level = max(
                self.statistics.max_decision_level, self._decision_level()
            )
            self._enqueue(literal, None)

    def model(self) -> list[bool]:
        """Return the satisfying assignment found by the last SAT answer.

        ``model()[v]`` is the value of variable ``v``; index 0 is unused.
        Unassigned variables (possible when they do not occur in any clause)
        default to False.

        Raises:
            SolverError: if the most recent :meth:`solve` call did not
                answer SAT (or :meth:`solve` has not been called yet).
        """
        if self._cached_model is None:
            raise SolverError("no model available (last solve() was not SAT)")
        return list(self._cached_model)

    def value(self, variable: int) -> bool:
        """Value of ``variable`` in the model of the last SAT answer.

        Raises:
            SolverError: if no model is available (see :meth:`model`), or
                if ``variable`` was allocated after the model was found.
        """
        if self._cached_model is None:
            raise SolverError("no model available (last solve() was not SAT)")
        if not 0 < variable < len(self._cached_model):
            raise SolverError(
                f"variable {variable} has no value in the current model "
                "(allocated after the last SAT answer?)"
            )
        return self._cached_model[variable]

    def cached_model(self) -> list[bool] | None:
        """The last SAT model *without copying*, or None when unavailable.

        The returned list is replaced (never mutated) by later
        :meth:`solve` calls, so holding a reference across solves is safe;
        callers must not mutate it.
        """
        return self._cached_model

    # -- job limits & restart policy --------------------------------------

    def set_limits(
        self,
        conflict_ceiling: int | None = None,
        deadline: float | None = None,
    ) -> None:
        """Install (or clear, with ``None``) job-level solving limits.

        Args:
            conflict_ceiling: absolute bound on ``statistics.conflicts``;
                once reached, :meth:`solve` answers UNKNOWN.  Because the
                bound is absolute it naturally spans multiple solve()
                calls — callers enforce a per-job budget by setting
                ``statistics.conflicts + budget``.
            deadline: ``time.monotonic()`` timestamp after which solve()
                answers UNKNOWN.  Polled at every conflict and every 256
                decisions, so preemption granularity is coarse but the hot
                propagation loop stays untouched.
        """
        self._conflict_ceiling = conflict_ceiling
        self._deadline = deadline

    def _limits_exhausted(
        self, conflicts_at_start: int, conflict_budget: int | None
    ) -> bool:
        """Whether any conflict budget / ceiling / deadline is exceeded."""
        conflicts = self.statistics.conflicts
        if conflict_budget is not None and conflicts - conflicts_at_start >= conflict_budget:
            return True
        if self._conflict_ceiling is not None and conflicts >= self._conflict_ceiling:
            return True
        if (
            self._deadline is not None
            and (conflicts & 31) == 0
            and time.monotonic() >= self._deadline  # analysis: allow[WC01] sanctioned deadline probe; enforces the job budget, never feeds search order
        ):
            return True
        return False

    def _record_lbd(self, lbd: int) -> None:
        """Feed one learned clause's LBD into the restart moving averages."""
        self._lbd_lifetime_sum += lbd
        self._lbd_lifetime_count += 1
        if len(self._lbd_recent) == self.GLUCOSE_LBD_WINDOW:
            self._lbd_recent_sum -= self._lbd_recent[0]
        self._lbd_recent.append(lbd)
        self._lbd_recent_sum += lbd

    def _restart_due(
        self, conflicts_since_restart: int, conflicts_until_restart: int
    ) -> bool:
        """Decide whether to restart under the configured strategy."""
        if self._restart_strategy == "glucose":
            # Adaptive: the last window's average LBD (scaled by the
            # glucose margin) exceeding the lifetime average means recent
            # learned clauses are unusually poor glue — restart.
            if len(self._lbd_recent) < self.GLUCOSE_LBD_WINDOW:
                return False
            recent_average = self._lbd_recent_sum / self.GLUCOSE_LBD_WINDOW
            lifetime_average = self._lbd_lifetime_sum / self._lbd_lifetime_count
            return recent_average * self.GLUCOSE_MARGIN > lifetime_average
        return conflicts_since_restart >= conflicts_until_restart

    # -- internal: assignment & propagation ------------------------------

    def _next_unhandled_assumption(self, assumptions: list[int]) -> int | None:
        handled = len(self._active_assumption_levels)
        if handled < len(assumptions):
            return assumptions[handled]
        return None

    def _decision_level(self) -> int:
        return len(self._trail_limits)

    def _literal_value(self, literal: int) -> int:
        value = self._assignment[literal_variable(literal)]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        if literal_is_negative(literal):
            return _TRUE if value == _FALSE else _FALSE
        return value

    def _enqueue(self, literal: int, reason: _Clause | None) -> bool:
        value = self._literal_value(literal)
        if value == _FALSE:
            return False
        if value == _TRUE:
            return True
        variable = literal_variable(literal)
        self._assignment[variable] = _FALSE if literal_is_negative(literal) else _TRUE
        self._level[variable] = self._decision_level()
        self._reason[variable] = reason
        self._phase[variable] = not literal_is_negative(literal)
        self._trail.append(literal)
        return True

    def _propagate(self) -> _Clause | None:
        """Unit propagation; returns a conflicting clause or None."""
        while self._propagation_head < len(self._trail):
            literal = self._trail[self._propagation_head]
            self._propagation_head += 1
            self.statistics.propagations += 1
            false_literal = negate(literal)
            watch_list = self._watches[false_literal]
            index = 0
            while index < len(watch_list):
                blocker, clause = watch_list[index]
                # Blocking literal: if the cached literal is already true
                # the clause is satisfied — skip it without touching its
                # literal list (the common case on long watch lists).
                if self._literal_value(blocker) == _TRUE:
                    index += 1
                    continue
                literals = clause.literals
                # Ensure the false literal is in position 1.
                if literals[0] == false_literal:
                    literals[0], literals[1] = literals[1], literals[0]
                first = literals[0]
                if first != blocker and self._literal_value(first) == _TRUE:
                    # Refresh the blocker so the next visit can skip early.
                    watch_list[index] = (first, clause)
                    index += 1
                    continue
                # Look for a replacement watch.
                replaced = False
                for position in range(2, len(literals)):
                    candidate = literals[position]
                    if self._literal_value(candidate) != _FALSE:
                        literals[1], literals[position] = literals[position], literals[1]
                        watch_list[index] = watch_list[-1]
                        watch_list.pop()
                        self._watches[candidate].append((first, clause))
                        replaced = True
                        break
                if replaced:
                    continue
                # Clause is unit or conflicting.
                if not self._enqueue(first, clause):
                    self._propagation_head = len(self._trail)
                    return clause
                index += 1
        return None

    def _attach_clause(self, clause: _Clause) -> None:
        # Watch lists are indexed by the watched literal itself: when a
        # literal L is falsified (i.e. ~L is asserted) we visit watches[L].
        # Each watcher carries the clause's *other* watched literal as its
        # initial blocking literal.
        self._clauses.append(clause)
        self._watches[clause.literals[0]].append((clause.literals[1], clause))
        self._watches[clause.literals[1]].append((clause.literals[0], clause))

    def _backtrack(self, target_level: int) -> None:
        if self._decision_level() <= target_level:
            return
        boundary = self._trail_limits[target_level]
        for literal in reversed(self._trail[boundary:]):
            variable = literal_variable(literal)
            self._assignment[variable] = _UNASSIGNED
            self._reason[variable] = None
            heapq.heappush(self._order_heap, (-self._activity[variable], variable))
        del self._trail[boundary:]
        del self._trail_limits[target_level:]
        del self._active_assumption_levels[target_level:]
        self._propagation_head = min(self._propagation_head, len(self._trail))

    # -- internal: conflict analysis --------------------------------------

    def _analyze_conflict(self, conflict: _Clause) -> tuple[list[int], int, int]:
        """First-UIP conflict analysis.

        Returns the learned clause (with the asserting literal first), the
        backjump level, and the clause's LBD (distinct decision levels).
        """
        learned: list[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        literal = -1
        reason: _Clause | None = conflict
        trail_index = len(self._trail) - 1
        current_level = self._decision_level()

        while True:
            assert reason is not None
            self._bump_clause(reason)
            # On the first iteration ``reason`` is the conflict clause and
            # every literal participates; on later iterations it is the
            # reason of the literal being resolved away, which sits at
            # position 0 and is skipped.
            start = 0 if literal == -1 else 1
            for clause_literal in reason.literals[start:]:
                variable = literal_variable(clause_literal)
                if seen[variable] or self._level[variable] == 0:
                    continue
                seen[variable] = True
                self._bump_variable(variable)
                if self._level[variable] == current_level:
                    counter += 1
                else:
                    learned.append(clause_literal)
            # Find the next trail literal to resolve on.
            while not seen[literal_variable(self._trail[trail_index])]:
                trail_index -= 1
            literal = self._trail[trail_index]
            variable = literal_variable(literal)
            seen[variable] = False
            trail_index -= 1
            counter -= 1
            if counter == 0:
                learned[0] = negate(literal)
                break
            reason = self._reason[variable]

        # Clause minimisation: drop literals implied by the rest (cheap,
        # reason-subsumption based check).
        learned = self._minimise_clause(learned, seen)

        # LBD ("glue"): number of distinct decision levels in the learned
        # clause, measured before backtracking invalidates the levels.
        lbd = len({self._level[literal_variable(lit)] for lit in learned})

        if len(learned) == 1:
            backjump_level = 0
        else:
            # Move the literal with the highest level (other than the
            # asserting one) into position 1.
            best = 1
            for position in range(2, len(learned)):
                if (
                    self._level[literal_variable(learned[position])]
                    > self._level[literal_variable(learned[best])]
                ):
                    best = position
            learned[1], learned[best] = learned[best], learned[1]
            backjump_level = self._level[literal_variable(learned[1])]
        return learned, backjump_level, lbd

    def _minimise_clause(self, learned: list[int], seen: list[bool]) -> list[int]:
        for literal in learned[1:]:
            seen[literal_variable(literal)] = True
        result = [learned[0]]
        for literal in learned[1:]:
            variable = literal_variable(literal)
            reason = self._reason[variable]
            if reason is None:
                result.append(literal)
                continue
            redundant = True
            for reason_literal in reason.literals:
                reason_variable = literal_variable(reason_literal)
                if reason_variable == variable:
                    continue
                if not seen[reason_variable] and self._level[reason_variable] > 0:
                    redundant = False
                    break
            if not redundant:
                result.append(literal)
        for literal in learned[1:]:
            seen[literal_variable(literal)] = False
        return result

    def _learn_clause(self, learned: list[int], lbd: int) -> None:
        self.statistics.learned_clauses += 1
        if len(learned) == 1:
            self._enqueue(learned[0], None)
            return
        clause = _Clause(learned, learned=True, lbd=lbd)
        clause.activity = self._clause_increment
        self._attach_clause(clause)
        self._enqueue(learned[0], clause)

    # -- internal: heuristics ---------------------------------------------

    def _bump_variable(self, variable: int) -> None:
        self._activity[variable] += self._variable_increment
        if self._activity[variable] > 1e100:
            for index in range(1, self._num_vars + 1):
                self._activity[index] *= 1e-100
            self._variable_increment *= 1e-100
        if self._assignment[variable] == _UNASSIGNED:
            heapq.heappush(self._order_heap, (-self._activity[variable], variable))

    def _bump_clause(self, clause: _Clause) -> None:
        if not clause.learned:
            return
        clause.activity += self._clause_increment
        if clause.activity > 1e20:
            for other in self._clauses:
                if other.learned:
                    other.activity *= 1e-20
            self._clause_increment *= 1e-20
        # Glucose-style dynamic LBD: a clause participating in a conflict
        # has all its literals assigned, so its current LBD is well defined;
        # keep the minimum ever observed (clauses can only become "gluier").
        lbd = len({self._level[literal_variable(lit)] for lit in clause.literals})
        if lbd < clause.lbd:
            clause.lbd = lbd

    def _decay_activities(self) -> None:
        self._variable_increment /= self._variable_decay
        self._clause_increment /= self._clause_decay

    def _pick_branch_literal(self) -> int | None:
        # Compact the lazy heap once stale entries dominate: every
        # unassigned variable's effective priority is its *current*
        # activity (bumps and backtracking always re-push at the current
        # value, and newer entries pop first), so rebuilding from the
        # activity table preserves the pop order exactly while bounding
        # heap operations — and the churn of deallocating hundreds of
        # thousands of stale tuples — to O(num_vars).
        if len(self._order_heap) > 4 * self._num_vars + 16:
            self._order_heap = [
                (-self._activity[variable], variable)
                for variable in range(1, self._num_vars + 1)
                if self._assignment[variable] == _UNASSIGNED
            ]
            heapq.heapify(self._order_heap)
        # Pop the lazy heap until an unassigned variable surfaces.  Stale
        # entries (assigned variables, or outdated activities) are simply
        # discarded; unassigned variables are guaranteed to be present
        # because they are re-pushed on backtracking and on activity bumps.
        while self._order_heap:
            _, variable = heapq.heappop(self._order_heap)
            # The index bound guards against entries for variables dropped
            # by shrink_variables.
            if (
                variable <= self._num_vars
                and self._assignment[variable] == _UNASSIGNED
            ):
                return make_literal(variable, negative=not self._phase[variable])
        # Heap exhausted: scan forward from the low-water mark (covers
        # variables never bumped nor backtracked over since their initial
        # entry was popped).  Skipped variables are assigned *now*; should
        # they ever become unassigned again, _backtrack re-pushes them into
        # the heap, so the mark only ever moves forward and the scan cost
        # over the variable range is paid once per solve, not per decision.
        variable = self._fallback_head
        num_vars = self._num_vars
        while variable <= num_vars:
            if self._assignment[variable] == _UNASSIGNED:
                self._fallback_head = variable + 1
                return make_literal(variable, negative=not self._phase[variable])
            variable += 1
        self._fallback_head = variable
        return None

    def _reduce_learned_clauses_if_needed(self) -> None:
        # Scanning the clause database is O(|clauses|); only bother after a
        # sizeable batch of new conflicts has accumulated.
        if self.statistics.conflicts - self._conflicts_at_last_reduction < 2000:
            return
        self._conflicts_at_last_reduction = self.statistics.conflicts
        learned = [clause for clause in self._clauses if clause.learned]
        if len(learned) <= self._max_learned_ratio * max(len(self._clauses), 1) + 1000:
            return
        locked = {
            id(self._reason[literal_variable(lit)])
            for lit in self._trail
            if self._reason[literal_variable(lit)] is not None
        }
        # Glucose-style reduction: glue clauses (LBD <= 2), binary clauses
        # and reason-locked clauses are untouchable; the rest are deleted
        # worst-first by (high LBD, low activity) until half the learned
        # clauses are gone.
        candidates = [
            clause
            for clause in learned
            if len(clause.literals) > 2 and clause.lbd > 2 and id(clause) not in locked
        ]
        candidates.sort(key=lambda clause: (-clause.lbd, clause.activity))
        to_delete = {id(clause) for clause in candidates[: len(learned) // 2]}
        if not to_delete:
            return
        self.statistics.deleted_clauses += len(to_delete)
        self._clauses = [c for c in self._clauses if id(c) not in to_delete]
        for literal in range(2, 2 * self._num_vars + 2):
            self._watches[literal] = [
                entry for entry in self._watches[literal] if id(entry[1]) not in to_delete
            ]

    def reduce_learned(self, max_lbd: int) -> int:
        """Drop learned clauses whose LBD exceeds ``max_lbd`` (level 0 only).

        Unlike :meth:`_reduce_learned_clauses_if_needed` — the in-search
        heuristic that halves the learned set once it dwarfs the problem
        clauses — this is a *forced*, threshold-based retention pass meant
        for session reuse: a pooled solver that has just finished a job
        keeps at most the clauses glucose would call good glue (low LBD)
        so the next tenant's propagation is not dragged through thousands
        of job-specific learned clauses.  With ``max_lbd >= 1``, binary
        clauses are kept regardless (they cost nothing to propagate);
        ``max_lbd <= 0`` drops *every* learned clause, handing the next
        tenant a clause database indistinguishable from a freshly encoded
        one.  Clauses locked as reasons of the level-0 trail always stay.

        Returns:
            The number of clauses removed.

        Raises:
            SolverError: if called above decision level 0.
        """
        if self._trail_limits:
            raise SolverError("reduce_learned requires decision level 0")
        locked = {
            id(self._reason[literal_variable(lit)])
            for lit in self._trail
            if self._reason[literal_variable(lit)] is not None
        }
        to_delete = {
            id(clause)
            for clause in self._clauses
            if clause.learned
            and (max_lbd <= 0 or (len(clause.literals) > 2 and clause.lbd > max_lbd))
            and id(clause) not in locked
        }
        if not to_delete:
            return 0
        self.statistics.deleted_clauses += len(to_delete)
        self._clauses = [c for c in self._clauses if id(c) not in to_delete]
        for literal in range(2, 2 * self._num_vars + 2):
            watch_list = self._watches[literal]
            if watch_list:
                self._watches[literal] = [
                    entry for entry in watch_list if id(entry[1]) not in to_delete
                ]
        return len(to_delete)

    def reset_search_state(self, simplify: bool = True) -> None:
        """Reset every branching heuristic to its pristine state (level 0).

        Clears VSIDS activities, phase saving, clause activities, the
        decay increments, the lazy order heap, and the glucose LBD
        windows — everything the *search* accumulated, while the clause
        database and the level-0 trail stay.  A pooled solver session
        calls this between jobs so the next tenant starts from the same
        heuristic state a fresh solver would: the warm session then
        replays the fresh search over its warm encoding instead of being
        steered off it by a previous job's activities and phases.

        Args:
            simplify: run a level-0 database simplification after
                restoring clause order.  Required for soundness whenever
                level-0 facts (learned units) were fixed since the clauses
                were added — a restored watch must not sit on an
                already-falsified literal.  Callers that know the level-0
                trail has not grown (the solver pool tracks it across a
                lease) may pass False to skip the pass.

        Raises:
            SolverError: if called above decision level 0.
        """
        if self._trail_limits:
            raise SolverError("reset_search_state requires decision level 0")
        for index in range(1, self._num_vars + 1):
            self._activity[index] = 0.0
            self._phase[index] = False
        self._variable_increment = 1.0
        self._clause_increment = 1.0
        # Restore every clause's creation-time literal order (propagation
        # permanently swaps literals while relocating watches) and rebuild
        # the watch lists in clause order — the exact state a fresh solver
        # would be in after adding the same clauses.
        for watch_list in self._watches:
            watch_list.clear()
        for clause in self._clauses:
            if clause.learned:
                clause.activity = 0.0
            clause.literals = list(clause.pristine)
            self._watches[clause.literals[0]].append((clause.literals[1], clause))
            self._watches[clause.literals[1]].append((clause.literals[0], clause))
        # Mirror the level-0 filtering add_clause would have applied had
        # the clauses been added now: facts fixed since (learned units)
        # may satisfy whole clauses or falsify restored watch literals,
        # and a clause must never watch an already-falsified literal.
        if simplify:
            self.simplify_database()
        # Ascending (0.0, var) pairs already satisfy the heap invariant —
        # the same content a fresh solver's heap holds after allocation.
        self._order_heap = [(0.0, index) for index in range(1, self._num_vars + 1)]
        self._fallback_head = 1
        self._lbd_recent.clear()
        self._lbd_recent_sum = 0
        self._lbd_lifetime_sum = 0
        self._lbd_lifetime_count = 0
        self._conflicts_at_last_reduction = self.statistics.conflicts

    def shrink_variables(self, num_vars: int) -> int:
        """Drop every variable above ``num_vars`` and every clause using one.

        This rolls the solver's variable frontier back to an earlier
        watermark (level 0 only).  It is sound when the dropped variables
        form a *conservative extension* of the retained ones — Tseitin
        gate definitions are exactly that (any model over the retained
        variables extends to the gates) — and when the caller guarantees
        the dropped variables are never referenced again (the SMT layer
        evicts the matching bit-blaster cache entries, so a re-appearing
        term re-blasts into fresh variables).  Learned clauses over
        retained variables may keep facts derived *through* dropped
        definitions; by the conservative-extension argument those facts
        are implied by the retained clauses alone.

        The solver pool uses this between jobs: a session rolls back to
        its persistent base skeleton, so the next tenant inherits the
        skeleton's clauses and lemmas without dragging the previous job's
        encoding through every propagation and model completion.

        Returns:
            The number of clauses removed.

        Raises:
            SolverError: if called above decision level 0.
        """
        if self._trail_limits:
            raise SolverError("shrink_variables requires decision level 0")
        if num_vars >= self._num_vars:
            return 0
        kept: list[_Clause] = []
        removed = 0
        # literal > limit  <=>  literal_variable(literal) > num_vars
        limit = 2 * num_vars + 1
        for clause in self._clauses:
            if max(clause.literals) > limit:
                removed += 1
                if clause.learned:
                    self.statistics.deleted_clauses += 1
            else:
                kept.append(clause)
        self._clauses = kept
        self._trail = [literal for literal in self._trail if literal <= limit]
        # Everything on the trail is level 0 here; dropped clauses may be
        # referenced as reasons, and conflict analysis never dereferences
        # level-0 reasons, so clear them all (mirrors simplify_database).
        for literal in self._trail:
            self._reason[literal_variable(literal)] = None
        self._propagation_head = len(self._trail)
        del self._assignment[num_vars + 1:]
        del self._level[num_vars + 1:]
        del self._reason[num_vars + 1:]
        del self._activity[num_vars + 1:]
        del self._phase[num_vars + 1:]
        del self._watches[2 * num_vars + 2:]
        for watch_list in self._watches:
            watch_list.clear()
        for clause in kept:
            self._watches[clause.literals[0]].append((clause.literals[1], clause))
            self._watches[clause.literals[1]].append((clause.literals[0], clause))
        self._num_vars = num_vars
        # Stale heap entries for dropped variables are skipped lazily by
        # _pick_branch_literal (it re-checks the index bound).
        self._fallback_head = min(self._fallback_head, num_vars + 1)
        self._cached_model = None
        return removed

    # -- internal: level-0 database simplification -------------------------

    def simplify_database(self) -> int:
        """Garbage-collect the clause database at decision level 0.

        Removes every clause satisfied by the level-0 (fixed) assignment
        and strips fixed-false literals from the remaining clauses.  The
        SMT layer calls this from :meth:`repro.smt.solver.SmtSolver.pop`
        once enough scopes have been permanently deactivated: their
        activation literal is fixed false, so every clause of the scope is
        fixed-satisfied and can be dropped wholesale.

        Returns:
            The number of clauses removed.

        Raises:
            SolverError: if called above decision level 0 (i.e. from
                within a :meth:`solve` callback).
        """
        if self._trail_limits:
            raise SolverError("simplify_database requires decision level 0")
        if self._unsat:
            return 0
        if self._propagate() is not None:
            self._unsat = True
            return 0
        kept: list[_Clause] = []
        units: list[int] = []
        removed = 0
        for clause in self._clauses:
            literals = clause.literals
            if any(self._literal_value(lit) == _TRUE for lit in literals):
                removed += 1  # fixed-satisfied: drop wholesale
                continue
            # Strip fixed-false literals (every assignment is level 0 here).
            remaining = [
                lit for lit in literals if self._literal_value(lit) != _FALSE
            ]
            if len(remaining) < len(literals):
                if not remaining:
                    # All literals fixed false without a prior conflict
                    # cannot happen after a clean propagation fixpoint.
                    self._unsat = True
                    return removed
                if len(remaining) == 1:
                    units.append(remaining[0])
                    removed += 1
                    continue
                clause.literals = remaining
                # The stripped literals must not reappear when the
                # pristine order is restored (a watch on a fixed-false
                # literal would never fire again).
                clause.pristine = tuple(remaining)
            kept.append(clause)
        if removed:
            self._clauses = kept
            for watch_list in self._watches:
                watch_list.clear()
            for clause in kept:
                self._watches[clause.literals[0]].append((clause.literals[1], clause))
                self._watches[clause.literals[1]].append((clause.literals[0], clause))
            # Level-0 reasons may reference dropped clauses; they are never
            # dereferenced (conflict analysis skips level-0 variables), but
            # clearing them lets the clauses be freed.
            for literal in self._trail:
                self._reason[literal_variable(literal)] = None
            for literal in units:
                if not self._enqueue(literal, None) or self._propagate() is not None:
                    self._unsat = True
                    break
            self.statistics.gc_removed_clauses += removed
        self.statistics.gc_runs += 1
        return removed


def solve_formula(
    formula: CnfFormula, assumptions: Sequence[int] = (), **solver_kwargs
) -> tuple[SatResult, list[bool] | None]:
    """One-shot convenience: solve a :class:`CnfFormula`.

    Returns the verdict and, when SAT, the model as a list indexed by
    variable (index 0 unused).
    """
    solver = CdclSolver(**solver_kwargs)
    solver.add_formula(formula)
    result = solver.solve(assumptions)
    if result is SatResult.SAT:
        return result, solver.model()
    return result, None
