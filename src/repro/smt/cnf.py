"""Propositional CNF representation used by the SAT solver.

Variables are positive integers ``1..n``.  A *literal* is encoded as an
integer ``2*var`` (positive polarity) or ``2*var + 1`` (negative polarity);
this encoding keeps literal negation a cheap XOR and lets watch lists be
indexed by literal directly, which matters for the pure-Python CDCL solver.

The human-facing representation (DIMACS-style signed integers) is supported
through :func:`lit_from_dimacs` / :func:`lit_to_dimacs` and the
:mod:`repro.smt.dimacs` module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.core.exceptions import SolverError


def make_literal(variable: int, negative: bool = False) -> int:
    """Return the internal literal for ``variable`` with the given polarity.

    Args:
        variable: a positive variable index.
        negative: True for the negated literal.
    """
    if variable <= 0:
        raise SolverError(f"variable indices must be positive, got {variable}")
    return variable * 2 + (1 if negative else 0)


def negate(literal: int) -> int:
    """Return the negation of an internal literal."""
    return literal ^ 1


def literal_variable(literal: int) -> int:
    """Return the variable index of an internal literal."""
    return literal >> 1


def literal_is_negative(literal: int) -> bool:
    """Return True iff the internal literal has negative polarity."""
    return bool(literal & 1)


def lit_from_dimacs(dimacs_literal: int) -> int:
    """Convert a DIMACS-style signed literal to the internal encoding."""
    if dimacs_literal == 0:
        raise SolverError("0 is not a valid DIMACS literal")
    return make_literal(abs(dimacs_literal), dimacs_literal < 0)


def lit_to_dimacs(literal: int) -> int:
    """Convert an internal literal to DIMACS-style signed representation."""
    variable = literal_variable(literal)
    return -variable if literal_is_negative(literal) else variable


@dataclass
class CnfFormula:
    """A CNF formula: a variable count plus a list of clauses.

    Clauses are stored in the *internal* literal encoding (see module
    docstring).  The class performs light normalisation on insertion:
    duplicate literals within a clause are removed and tautological clauses
    (containing both a literal and its negation) are dropped.

    Attributes:
        num_variables: highest variable index allocated so far.
        clauses: list of clauses, each a list of internal literals.
    """

    num_variables: int = 0
    clauses: list[list[int]] = field(default_factory=list)
    #: Set to True the first time an empty clause is added, making the
    #: formula trivially unsatisfiable.
    contains_empty_clause: bool = False

    def new_variable(self) -> int:
        """Allocate and return a fresh variable index."""
        self.num_variables += 1
        return self.num_variables

    def new_variables(self, count: int) -> list[int]:
        """Allocate ``count`` fresh variables and return their indices."""
        return [self.new_variable() for _ in range(count)]

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause given as internal literals.

        Tautologies are silently dropped; an empty clause marks the formula
        unsatisfiable.  Unit and binary clauses — the bulk of what the
        polarity-aware bit-blaster emits — skip the duplicate-scan
        bookkeeping entirely.
        """
        clause = list(literals)
        for literal in clause:
            variable = literal_variable(literal)
            if variable <= 0 or variable > self.num_variables:
                raise SolverError(
                    f"literal {literal} refers to unallocated variable {variable}"
                )
        if len(clause) == 2:
            first, second = clause
            if first == negate(second):
                return  # tautology
            if first == second:
                clause = [first]
        elif len(clause) > 2:
            seen: set[int] = set()
            deduplicated: list[int] = []
            for literal in clause:
                if negate(literal) in seen:
                    return  # tautology
                if literal in seen:
                    continue
                seen.add(literal)
                deduplicated.append(literal)
            clause = deduplicated
        if not clause:
            self.contains_empty_clause = True
        self.clauses.append(clause)

    def add_dimacs_clause(self, literals: Iterable[int]) -> None:
        """Add a clause given in DIMACS-style signed literals."""
        self.add_clause(lit_from_dimacs(lit) for lit in literals)

    def __iter__(self) -> Iterator[list[int]]:
        return iter(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    # -- evaluation ------------------------------------------------------

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """Evaluate the formula under a total assignment.

        Args:
            assignment: ``assignment[v]`` is the value of variable ``v``
                (index 0 is unused).

        Returns:
            True iff every clause is satisfied.
        """
        if self.contains_empty_clause:
            return False
        for clause in self.clauses:
            if not clause_is_satisfied(clause, assignment):
                return False
        return True


def clause_is_satisfied(clause: Sequence[int], assignment: Sequence[bool]) -> bool:
    """Return True iff ``clause`` is satisfied by the total ``assignment``."""
    for literal in clause:
        value = assignment[literal_variable(literal)]
        if literal_is_negative(literal):
            value = not value
        if value:
            return True
    return False
