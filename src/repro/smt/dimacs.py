"""DIMACS CNF input/output.

Provided for interoperability (dumping bit-blasted queries for external
solvers, loading standard benchmark instances into the CDCL solver) and
exercised by the SAT-solver test-suite.
"""

from __future__ import annotations

from typing import Iterable, TextIO

from repro.core.exceptions import SolverError
from repro.smt.cnf import CnfFormula, lit_from_dimacs, lit_to_dimacs


def dump_dimacs(formula: CnfFormula, stream: TextIO, comments: Iterable[str] = ()) -> None:
    """Write ``formula`` to ``stream`` in DIMACS CNF format."""
    for comment in comments:
        stream.write(f"c {comment}\n")
    stream.write(f"p cnf {formula.num_variables} {len(formula.clauses)}\n")
    for clause in formula.clauses:
        literals = " ".join(str(lit_to_dimacs(literal)) for literal in clause)
        stream.write(f"{literals} 0\n")


def dumps_dimacs(formula: CnfFormula, comments: Iterable[str] = ()) -> str:
    """Return the DIMACS text for ``formula``."""
    import io

    buffer = io.StringIO()
    dump_dimacs(formula, buffer, comments)
    return buffer.getvalue()


def load_dimacs(stream: TextIO) -> CnfFormula:
    """Parse a DIMACS CNF file into a :class:`CnfFormula`.

    Raises:
        SolverError: on malformed input.
    """
    formula = CnfFormula()
    declared_variables: int | None = None
    declared_clauses: int | None = None
    pending: list[int] = []
    for raw_line in stream:
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise SolverError(f"malformed problem line: {line!r}")
            declared_variables = int(parts[2])
            declared_clauses = int(parts[3])
            formula.num_variables = declared_variables
            continue
        for token in line.split():
            value = int(token)
            if value == 0:
                formula.add_clause(lit_from_dimacs(lit) for lit in pending)
                pending = []
            else:
                if declared_variables is None:
                    raise SolverError("clause before problem line")
                if abs(value) > declared_variables:
                    raise SolverError(
                        f"literal {value} exceeds declared variable count"
                    )
                pending.append(value)
    if pending:
        formula.add_clause(lit_from_dimacs(lit) for lit in pending)
    if declared_clauses is not None and len(formula.clauses) != declared_clauses:
        # Not fatal — many generators emit slightly-off counts — but worth
        # surfacing in strict contexts; we tolerate it silently here.
        pass
    return formula


def loads_dimacs(text: str) -> CnfFormula:
    """Parse DIMACS CNF text into a :class:`CnfFormula`."""
    import io

    return load_dimacs(io.StringIO(text))
