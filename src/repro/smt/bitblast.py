"""Bit-blasting of QF_BV terms to CNF via the Tseitin transformation.

Every Boolean term is mapped to one propositional literal and every
bit-vector term to a list of literals (least-significant bit first).
Structural caching guarantees that shared sub-terms are encoded once, so
the encoding size is linear in the DAG size of the formula (quadratic for
multiplication, which uses a shift-and-add array).

The blaster writes clauses into any *sink* object exposing
``new_variable()`` and ``add_clause(literals)`` — both
:class:`repro.smt.cnf.CnfFormula` and :class:`repro.smt.sat.CdclSolver`
qualify, enabling incremental use by the SMT facade.

A blaster instance may be kept alive across many solver queries: the
structural caches (``_bool_cache`` / ``_bv_cache`` / ``_gate_cache``) are
append-only, so a term blasted for one check is encoded exactly once for
the lifetime of the blaster.  The incremental :class:`repro.smt.solver.SmtSolver`
relies on this to avoid re-bit-blasting shared sub-terms between checks.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.core.exceptions import SolverError
from repro.smt.cnf import make_literal, negate
from repro.smt.terms import (
    Assignment,
    BitVecTerm,
    BoolConst,
    BoolIte,
    BoolOp,
    BoolTerm,
    BoolVar,
    BvComparison,
    BvConcat,
    BvConst,
    BvExtract,
    BvIte,
    BvOp,
    BvSignExtend,
    BvVar,
    BvZeroExtend,
    Term,
)


class ClauseSink(Protocol):
    """Anything that can allocate variables and accept clauses."""

    def new_variable(self) -> int:  # pragma: no cover - protocol
        ...

    def add_clause(self, literals) -> None:  # pragma: no cover - protocol
        ...


class BitBlaster:
    """Tseitin bit-blaster writing clauses into a :class:`ClauseSink`.

    Typical use (through the SMT facade, but usable standalone)::

        solver = CdclSolver()
        blaster = BitBlaster(solver)
        blaster.assert_formula(x.eq(y + bv_const(1, 8)))
        if solver.solve() is SatResult.SAT:
            assignment = blaster.extract_assignment(solver.model())
    """

    def __init__(self, sink: ClauseSink):
        self._sink = sink
        # A dedicated variable constrained to be true gives us constant
        # literals, which keeps every "bit" a plain literal.
        true_var = sink.new_variable()
        self._true = make_literal(true_var)
        self._false = negate(self._true)
        self._sink.add_clause([self._true])
        self._bool_cache: dict[Term, int] = {}
        self._bv_cache: dict[Term, list[int]] = {}
        self._bool_vars: dict[str, int] = {}
        self._bv_vars: dict[str, list[int]] = {}
        self._gate_cache: dict[tuple, int] = {}

    # -- public API -------------------------------------------------------

    @property
    def true_literal(self) -> int:
        """The literal constrained to be true."""
        return self._true

    @property
    def false_literal(self) -> int:
        """The literal constrained to be false."""
        return self._false

    def assert_formula(self, formula: BoolTerm) -> None:
        """Assert that ``formula`` holds (add its literal as a unit clause)."""
        self._sink.add_clause([self.blast_bool(formula)])

    def blast_bool(self, term: BoolTerm) -> int:
        """Return the literal representing the Boolean term."""
        cached = self._bool_cache.get(term)
        if cached is not None:
            return cached
        literal = self._blast_bool(term)
        self._bool_cache[term] = literal
        return literal

    def blast_bv(self, term: BitVecTerm) -> list[int]:
        """Return the literals (LSB first) representing the bit-vector term."""
        cached = self._bv_cache.get(term)
        if cached is not None:
            return cached
        bits = self._blast_bv(term)
        if len(bits) != term.width:
            raise SolverError(
                f"internal error: blasted {len(bits)} bits for width {term.width}"
            )
        self._bv_cache[term] = bits
        return bits

    def bool_variable_literal(self, name: str) -> int | None:
        """Literal assigned to a declared Boolean variable, if any."""
        return self._bool_vars.get(name)

    def bv_variable_literals(self, name: str) -> list[int] | None:
        """Literals assigned to a declared bit-vector variable, if any."""
        return self._bv_vars.get(name)

    def extract_assignment(self, sat_model: Sequence[bool]) -> Assignment:
        """Reconstruct variable values from a SAT model.

        Variables declared *after* the model was produced (possible when
        the blaster outlives the solve call that found it) are skipped:
        their literals index beyond the model.

        Args:
            sat_model: list indexed by SAT variable (index 0 unused).
        """
        assignment = Assignment()
        known = len(sat_model)
        for name, literal in self._bool_vars.items():
            if (literal >> 1) < known:
                assignment.bool_values[name] = self._literal_value(literal, sat_model)
        for name, bits in self._bv_vars.items():
            if any((literal >> 1) >= known for literal in bits):
                continue
            value = 0
            for position, literal in enumerate(bits):
                if self._literal_value(literal, sat_model):
                    value |= 1 << position
            assignment.bv_values[name] = value
        return assignment

    def extract_value(
        self, name: str, sat_model: Sequence[bool]
    ) -> int | bool | None:
        """Value of one declared variable under a SAT model.

        Cheaper than :meth:`extract_assignment` when only a few variables
        are needed.  Returns None for names never declared or declared
        after the model was produced.
        """
        known = len(sat_model)
        literal = self._bool_vars.get(name)
        if literal is not None:
            if (literal >> 1) >= known:
                return None
            return self._literal_value(literal, sat_model)
        bits = self._bv_vars.get(name)
        if bits is None or any((literal >> 1) >= known for literal in bits):
            return None
        value = 0
        for position, literal in enumerate(bits):
            if self._literal_value(literal, sat_model):
                value |= 1 << position
        return value

    @staticmethod
    def _literal_value(literal: int, sat_model: Sequence[bool]) -> bool:
        value = sat_model[literal >> 1]
        return (not value) if (literal & 1) else value

    # -- fresh variables & primitive gates ---------------------------------

    def _fresh(self) -> int:
        return make_literal(self._sink.new_variable())

    def _constant(self, value: bool) -> int:
        return self._true if value else self._false

    def _gate_and(self, operands: list[int]) -> int:
        operands = [lit for lit in operands if lit != self._true]
        if any(lit == self._false for lit in operands):
            return self._false
        if not operands:
            return self._true
        if len(operands) == 1:
            return operands[0]
        key = ("and", tuple(sorted(operands)))
        cached = self._gate_cache.get(key)
        if cached is not None:
            return cached
        output = self._fresh()
        for literal in operands:
            self._sink.add_clause([negate(output), literal])
        self._sink.add_clause([output] + [negate(literal) for literal in operands])
        self._gate_cache[key] = output
        return output

    def _gate_or(self, operands: list[int]) -> int:
        return negate(self._gate_and([negate(literal) for literal in operands]))

    def _gate_xor(self, left: int, right: int) -> int:
        if left == self._false:
            return right
        if right == self._false:
            return left
        if left == self._true:
            return negate(right)
        if right == self._true:
            return negate(left)
        if left == right:
            return self._false
        if left == negate(right):
            return self._true
        key = ("xor", tuple(sorted((left, right))))
        cached = self._gate_cache.get(key)
        if cached is not None:
            return cached
        output = self._fresh()
        self._sink.add_clause([negate(output), left, right])
        self._sink.add_clause([negate(output), negate(left), negate(right)])
        self._sink.add_clause([output, negate(left), right])
        self._sink.add_clause([output, left, negate(right)])
        self._gate_cache[key] = output
        return output

    def _gate_ite(self, condition: int, then_literal: int, else_literal: int) -> int:
        if condition == self._true:
            return then_literal
        if condition == self._false:
            return else_literal
        if then_literal == else_literal:
            return then_literal
        key = ("ite", condition, then_literal, else_literal)
        cached = self._gate_cache.get(key)
        if cached is not None:
            return cached
        output = self._fresh()
        self._sink.add_clause([negate(condition), negate(then_literal), output])
        self._sink.add_clause([negate(condition), then_literal, negate(output)])
        self._sink.add_clause([condition, negate(else_literal), output])
        self._sink.add_clause([condition, else_literal, negate(output)])
        # Redundant but propagation-friendly clauses.
        self._sink.add_clause([negate(then_literal), negate(else_literal), output])
        self._sink.add_clause([then_literal, else_literal, negate(output)])
        self._gate_cache[key] = output
        return output

    def _gate_iff(self, left: int, right: int) -> int:
        return negate(self._gate_xor(left, right))

    def _gate_majority(self, a: int, b: int, c: int) -> int:
        """Majority-of-three (full-adder carry)."""
        return self._gate_or(
            [self._gate_and([a, b]), self._gate_and([a, c]), self._gate_and([b, c])]
        )

    # -- Boolean terms ------------------------------------------------------

    def _blast_bool(self, term: BoolTerm) -> int:
        if isinstance(term, BoolConst):
            return self._constant(term.value)
        if isinstance(term, BoolVar):
            if term.name not in self._bool_vars:
                self._bool_vars[term.name] = self._fresh()
            return self._bool_vars[term.name]
        if isinstance(term, BoolOp):
            operands = [self.blast_bool(arg) for arg in term.args]
            if term.kind == "and":
                return self._gate_and(operands)
            if term.kind == "or":
                return self._gate_or(operands)
            if term.kind == "xor":
                result = operands[0]
                for literal in operands[1:]:
                    result = self._gate_xor(result, literal)
                return result
            return negate(operands[0])  # not
        if isinstance(term, BoolIte):
            return self._gate_ite(
                self.blast_bool(term.condition),
                self.blast_bool(term.then_branch),
                self.blast_bool(term.else_branch),
            )
        if isinstance(term, BvComparison):
            return self._blast_comparison(term)
        raise SolverError(f"cannot bit-blast Boolean term {type(term).__name__}")

    def _blast_comparison(self, term: BvComparison) -> int:
        left = self.blast_bv(term.left)
        right = self.blast_bv(term.right)
        if term.kind == "eq":
            return self._gate_and(
                [self._gate_iff(a, b) for a, b in zip(left, right)]
            )
        if term.kind in {"slt", "sle"}:
            # Signed comparison = unsigned comparison with sign bits flipped.
            left = left[:-1] + [negate(left[-1])]
            right = right[:-1] + [negate(right[-1])]
        strict = term.kind in {"ult", "slt"}
        return self._unsigned_less(left, right, allow_equal=not strict)

    def _unsigned_less(self, left: list[int], right: list[int], allow_equal: bool) -> int:
        """Encode ``left < right`` (or ``<=``) for LSB-first literal lists."""
        result = self._constant(allow_equal)
        for a, b in zip(left, right):  # LSB to MSB
            strictly_less = self._gate_and([negate(a), b])
            equal = self._gate_iff(a, b)
            result = self._gate_or([strictly_less, self._gate_and([equal, result])])
        return result

    # -- bit-vector terms ----------------------------------------------------

    def _blast_bv(self, term: BitVecTerm) -> list[int]:
        if isinstance(term, BvConst):
            return [
                self._constant(bool((term.value >> position) & 1))
                for position in range(term.width)
            ]
        if isinstance(term, BvVar):
            if term.name not in self._bv_vars:
                self._bv_vars[term.name] = [self._fresh() for _ in range(term.width)]
            bits = self._bv_vars[term.name]
            if len(bits) != term.width:
                raise SolverError(
                    f"variable {term.name!r} redeclared with width {term.width}"
                )
            return list(bits)
        if isinstance(term, BvOp):
            return self._blast_bv_op(term)
        if isinstance(term, BvIte):
            condition = self.blast_bool(term.condition)
            then_bits = self.blast_bv(term.then_branch)
            else_bits = self.blast_bv(term.else_branch)
            return [
                self._gate_ite(condition, t, e) for t, e in zip(then_bits, else_bits)
            ]
        if isinstance(term, BvExtract):
            bits = self.blast_bv(term.operand)
            return bits[term.low : term.high + 1]
        if isinstance(term, BvConcat):
            result: list[int] = []
            for operand in reversed(term.operands):  # LSB-first assembly
                result.extend(self.blast_bv(operand))
            return result
        if isinstance(term, BvZeroExtend):
            bits = self.blast_bv(term.operand)
            return bits + [self._false] * (term.width - term.operand.width)
        if isinstance(term, BvSignExtend):
            bits = self.blast_bv(term.operand)
            return bits + [bits[-1]] * (term.width - term.operand.width)
        raise SolverError(f"cannot bit-blast bit-vector term {type(term).__name__}")

    def _blast_bv_op(self, term: BvOp) -> list[int]:
        kind = term.kind
        if kind in {"and", "or", "xor"}:
            left = self.blast_bv(term.args[0])
            right = self.blast_bv(term.args[1])
            if kind == "and":
                return [self._gate_and([a, b]) for a, b in zip(left, right)]
            if kind == "or":
                return [self._gate_or([a, b]) for a, b in zip(left, right)]
            return [self._gate_xor(a, b) for a, b in zip(left, right)]
        if kind == "not":
            return [negate(bit) for bit in self.blast_bv(term.args[0])]
        if kind == "neg":
            bits = [negate(bit) for bit in self.blast_bv(term.args[0])]
            return self._ripple_add(bits, [self._false] * len(bits), carry_in=self._true)
        if kind == "add":
            return self._ripple_add(
                self.blast_bv(term.args[0]), self.blast_bv(term.args[1]), self._false
            )
        if kind == "sub":
            left = self.blast_bv(term.args[0])
            right = [negate(bit) for bit in self.blast_bv(term.args[1])]
            return self._ripple_add(left, right, carry_in=self._true)
        if kind == "mul":
            return self._multiply(
                self.blast_bv(term.args[0]), self.blast_bv(term.args[1])
            )
        if kind in {"shl", "lshr", "ashr"}:
            return self._shift(
                kind, self.blast_bv(term.args[0]), term.args[1]
            )
        raise SolverError(f"unhandled bit-vector op {kind!r}")

    def _ripple_add(self, left: list[int], right: list[int], carry_in: int) -> list[int]:
        carry = carry_in
        result: list[int] = []
        for a, b in zip(left, right):
            partial = self._gate_xor(a, b)
            result.append(self._gate_xor(partial, carry))
            carry = self._gate_majority(a, b, carry)
        return result

    def _multiply(self, left: list[int], right: list[int]) -> list[int]:
        width = len(left)
        accumulator = [self._false] * width
        for position, control in enumerate(right):
            if control == self._false:
                continue
            partial = (
                [self._false] * position
                + [self._gate_and([control, bit]) for bit in left[: width - position]]
            )
            accumulator = self._ripple_add(accumulator, partial, self._false)
        return accumulator

    def _shift(self, kind: str, operand: list[int], amount_term: BitVecTerm) -> list[int]:
        width = len(operand)
        fill = operand[-1] if kind == "ashr" else self._false
        # Constant shift amounts are rewired directly.
        if isinstance(amount_term, BvConst):
            amount = amount_term.value
            return self._shift_by_constant(kind, operand, amount, fill)
        amount_bits = self.blast_bv(amount_term)
        # Barrel shifter over the log2(width) least significant amount bits.
        stages = max(1, (width - 1).bit_length())
        result = list(operand)
        for stage in range(stages):
            shift = 1 << stage
            shifted = self._shift_by_constant(kind, result, shift, fill)
            control = amount_bits[stage] if stage < len(amount_bits) else self._false
            result = [
                self._gate_ite(control, s, r) for s, r in zip(shifted, result)
            ]
        # Any higher amount bit set (or amount >= width) forces the
        # overflow fill value.
        overflow_controls = list(amount_bits[stages:])
        if (1 << stages) > width - 1:
            # Amounts in [width, 2**stages) also overflow; detect them via a
            # comparison against the constant width.
            pass
        overflow = (
            self._gate_or(overflow_controls) if overflow_controls else self._false
        )
        # Additionally handle amounts between width and 2**stages - 1.
        if (1 << stages) - 1 >= width:
            width_const = [
                self._constant(bool((width >> position) & 1))
                for position in range(len(amount_bits))
            ]
            too_large = negate(
                self._unsigned_less(amount_bits, width_const, allow_equal=False)
            )
            overflow = self._gate_or([overflow, too_large])
        return [self._gate_ite(overflow, fill, bit) for bit in result]

    def _shift_by_constant(
        self, kind: str, operand: list[int], amount: int, fill: int
    ) -> list[int]:
        width = len(operand)
        if amount == 0:
            return list(operand)
        if amount >= width:
            return [fill] * width
        if kind == "shl":
            return [self._false] * amount + operand[: width - amount]
        # lshr / ashr
        return operand[amount:] + [fill] * amount
