"""Bit-blasting of QF_BV terms to CNF via the Tseitin transformation.

Every Boolean term is mapped to one propositional literal and every
bit-vector term to a list of literals (least-significant bit first).
Structural caching guarantees that shared sub-terms are encoded once, so
the encoding size is linear in the DAG size of the formula (quadratic for
multiplication, which uses a shift-and-add array).

The blaster writes clauses into any *sink* object exposing
``new_variable()`` and ``add_clause(literals)`` — both
:class:`repro.smt.cnf.CnfFormula` and :class:`repro.smt.sat.CdclSolver`
qualify, enabling incremental use by the SMT facade.

A blaster instance may be kept alive across many solver queries: the
structural caches (``_bool_cache`` / ``_bv_cache`` / ``_gate_cache``) are
append-only, so a term blasted for one check is encoded exactly once for
the lifetime of the blaster.  The incremental :class:`repro.smt.solver.SmtSolver`
relies on this to avoid re-bit-blasting shared sub-terms between checks.

**Polarity-aware encoding (Plaisted–Greenbaum).**  ``blast_bool`` accepts
the polarity under which the term is being used: :data:`POSITIVE` for
formulas asserted (or assumed) true, :data:`NEGATIVE` for formulas under
an odd number of negations, :data:`BOTH` (the default, and the classic
Tseitin behaviour) when either may matter.  A gate used under a single
polarity emits only the implication clauses of that direction — an
``n``-ary AND asserted positively costs ``n`` binary clauses but skips
the long ``(out ∨ ¬a₁ ∨ … ∨ ¬aₙ)`` clause; asserted negatively it costs
*only* the long clause.  The blaster records the directions each gate has
already emitted and lazily *upgrades* a gate to the full biconditional
the first time the other polarity is requested, so sharing cached gates
across incremental checks with different polarities stays sound.  Inputs
of XOR/IFF gates and ITE conditions are inherently mixed-polarity and are
always blasted with :data:`BOTH`, as is the entire bit-vector layer
(adders, shifters, …), whose bits feed comparison circuits in both
phases; consequently the model values of declared variables remain
extractable exactly as before.  Under P–G the SAT model restricted to the
declared variables still satisfies every formula asserted positively —
the half-encoded gates only ever drop the clause direction that is never
needed to justify those assertions.
"""

from __future__ import annotations

import zlib

from typing import Protocol, Sequence

from repro.core.exceptions import SolverError
from repro.smt.cnf import make_literal, negate
from repro.smt.terms import (
    Assignment,
    BitVecTerm,
    BoolConst,
    BoolIte,
    BoolOp,
    BoolTerm,
    BoolVar,
    BvComparison,
    BvConcat,
    BvConst,
    BvExtract,
    BvIte,
    BvOp,
    BvSignExtend,
    BvVar,
    BvZeroExtend,
    Term,
)


class ClauseSink(Protocol):
    """Anything that can allocate variables and accept clauses."""

    def new_variable(self) -> int:  # pragma: no cover - protocol
        ...

    def add_clause(self, literals) -> None:  # pragma: no cover - protocol
        ...


#: Polarity masks for :meth:`BitBlaster.blast_bool` (bitwise-combinable).
POSITIVE = 1
NEGATIVE = 2
BOTH = POSITIVE | NEGATIVE


def _swap_polarity(polarity: int) -> int:
    """Polarity seen through a negation (swaps the two direction bits)."""
    return ((polarity & POSITIVE) << 1) | ((polarity & NEGATIVE) >> 1)


class BitBlaster:
    """Tseitin bit-blaster writing clauses into a :class:`ClauseSink`.

    Typical use (through the SMT facade, but usable standalone)::

        solver = CdclSolver()
        blaster = BitBlaster(solver)
        blaster.assert_formula(x.eq(y + bv_const(1, 8)))
        if solver.solve() is SatResult.SAT:
            assignment = blaster.extract_assignment(solver.model())
    """

    def __init__(self, sink: ClauseSink):
        self._sink = sink
        # A dedicated variable constrained to be true gives us constant
        # literals, which keeps every "bit" a plain literal.
        true_var = sink.new_variable()
        self._true = make_literal(true_var)
        self._false = negate(self._true)
        self._sink.add_clause([self._true])
        self._bool_cache: dict[Term, int] = {}
        self._bv_cache: dict[Term, list[int]] = {}
        self._bool_vars: dict[str, int] = {}
        self._bv_vars: dict[str, list[int]] = {}
        self._gate_cache: dict[tuple, int] = {}
        # Polarity directions already emitted, per Boolean term / per gate.
        self._bool_polarity: dict[Term, int] = {}
        self._gate_emitted: dict[tuple, int] = {}
        # Hash chain over named-variable declarations, in order:
        # (highest SAT variable of the declaration, chain value).  The
        # chain value is a process-independent witness of the name→bits
        # layout — exactly what model extraction depends on — used by the
        # shared check memo to guarantee that replayed model bits decode
        # against the layout they were recorded under (a bare variable
        # *count* can collide between differently-polluted sessions).
        self._declarations: list[tuple[int, int]] = []

    # -- public API -------------------------------------------------------

    @property
    def true_literal(self) -> int:
        """The literal constrained to be true."""
        return self._true

    @property
    def false_literal(self) -> int:
        """The literal constrained to be false."""
        return self._false

    def assert_formula(self, formula: BoolTerm, polarity: int = BOTH) -> None:
        """Assert that ``formula`` holds (add its literal as a unit clause).

        Pass ``polarity=POSITIVE`` to use the Plaisted–Greenbaum encoding
        (sound because the formula is only ever used as a true assertion).
        """
        self._sink.add_clause([self.blast_bool(formula, polarity)])

    def blast_bool(self, term: BoolTerm, polarity: int = BOTH) -> int:
        """Return the literal representing the Boolean term.

        ``polarity`` declares the directions in which the caller relies on
        the Tseitin definitions (:data:`POSITIVE` / :data:`NEGATIVE` /
        :data:`BOTH`).  A cached term is re-walked only when it is missing
        a direction the caller now needs.
        """
        cached = self._bool_cache.get(term)
        missing = polarity & ~self._bool_polarity.get(term, 0)
        if cached is not None and not missing:
            return cached
        self._bool_polarity[term] = self._bool_polarity.get(term, 0) | polarity
        literal = self._blast_bool(term, polarity if cached is None else missing)
        if cached is not None:
            return cached  # upgrade walk: literal is identical by caching
        self._bool_cache[term] = literal
        return literal

    def blast_bv(self, term: BitVecTerm) -> list[int]:
        """Return the literals (LSB first) representing the bit-vector term."""
        cached = self._bv_cache.get(term)
        if cached is not None:
            return cached
        bits = self._blast_bv(term)
        if len(bits) != term.width:
            raise SolverError(
                f"internal error: blasted {len(bits)} bits for width {term.width}"
            )
        self._bv_cache[term] = bits
        return bits

    def _record_declaration(self, name: str, literals: Sequence[int]) -> None:
        previous = self._declarations[-1][1] if self._declarations else 0
        top = max(literal >> 1 for literal in literals)
        token = f"{previous}|{name}|{len(literals)}|{literals[0]}"
        self._declarations.append(
            (top, zlib.crc32(token.encode("utf-8")))
        )

    def layout_signature(self) -> int:
        """Process-independent digest of the name→bits declaration layout.

        Two blasters with equal signatures assign every declared variable
        name the same SAT literals (declarations are recorded in order
        with their positions), so a SAT model recorded under one decodes
        identically under the other — the guarantee the shared check
        memo's keys need.  Maintained incrementally and rolled back by
        :meth:`rollback_variables`.
        """
        return self._declarations[-1][1] if self._declarations else 0

    def bool_variable_literal(self, name: str) -> int | None:
        """Literal assigned to a declared Boolean variable, if any."""
        return self._bool_vars.get(name)

    def bv_variable_literals(self, name: str) -> list[int] | None:
        """Literals assigned to a declared bit-vector variable, if any."""
        return self._bv_vars.get(name)

    def extract_assignment(self, sat_model: Sequence[bool]) -> Assignment:
        """Reconstruct variable values from a SAT model.

        Variables declared *after* the model was produced (possible when
        the blaster outlives the solve call that found it) are skipped:
        their literals index beyond the model.

        Args:
            sat_model: list indexed by SAT variable (index 0 unused).
        """
        assignment = Assignment()
        known = len(sat_model)
        for name, literal in self._bool_vars.items():
            if (literal >> 1) < known:
                assignment.bool_values[name] = self._literal_value(literal, sat_model)
        for name, bits in self._bv_vars.items():
            if any((literal >> 1) >= known for literal in bits):
                continue
            value = 0
            for position, literal in enumerate(bits):
                if self._literal_value(literal, sat_model):
                    value |= 1 << position
            assignment.bv_values[name] = value
        return assignment

    def extract_value(
        self, name: str, sat_model: Sequence[bool]
    ) -> int | bool | None:
        """Value of one declared variable under a SAT model.

        Cheaper than :meth:`extract_assignment` when only a few variables
        are needed.  Returns None for names never declared or declared
        after the model was produced.
        """
        known = len(sat_model)
        literal = self._bool_vars.get(name)
        if literal is not None:
            if (literal >> 1) >= known:
                return None
            return self._literal_value(literal, sat_model)
        bits = self._bv_vars.get(name)
        if bits is None or any((literal >> 1) >= known for literal in bits):
            return None
        value = 0
        for position, literal in enumerate(bits):
            if self._literal_value(literal, sat_model):
                value |= 1 << position
        return value

    def rollback_variables(self, max_var: int) -> None:
        """Evict every cache entry referencing a SAT variable above ``max_var``.

        Companion of :meth:`repro.smt.sat.CdclSolver.shrink_variables`:
        after the solver drops the variables above a watermark, the
        blaster must forget the terms/gates whose encoding used them, so
        a later occurrence of the same term re-blasts into fresh
        variables instead of resolving to a dangling cache hit.  Entries
        at or below the watermark are untouched — by allocation order,
        everything they transitively reference (gate inputs, internal
        carries) was allocated before them and therefore also survives.
        """

        def keep(literal: int) -> bool:
            return (literal >> 1) <= max_var

        self._bool_cache = {
            term: literal
            for term, literal in self._bool_cache.items()
            if keep(literal)
        }
        self._bool_polarity = {
            term: mask
            for term, mask in self._bool_polarity.items()
            if term in self._bool_cache
        }
        self._bv_cache = {
            term: literals
            for term, literals in self._bv_cache.items()
            if all(keep(literal) for literal in literals)
        }
        # The name→bits maps hold *literals* (like every other cache here),
        # not variable indices.
        self._bool_vars = {
            name: literal
            for name, literal in self._bool_vars.items()
            if keep(literal)
        }
        self._bv_vars = {
            name: literals
            for name, literals in self._bv_vars.items()
            if all(keep(literal) for literal in literals)
        }
        # Gate keys only reference literals allocated before the gate's
        # output, so filtering on the output covers the key as well.
        self._gate_cache = {
            key: output
            for key, output in self._gate_cache.items()
            if keep(output)
        }
        self._gate_emitted = {
            key: mask
            for key, mask in self._gate_emitted.items()
            if key in self._gate_cache
        }
        # Rewind the declaration chain to the watermark: a deterministic
        # replay from here reproduces the same chain values, so the
        # layout signature stays a faithful witness across rollbacks.
        while self._declarations and self._declarations[-1][0] > max_var:
            self._declarations.pop()

    @staticmethod
    def _literal_value(literal: int, sat_model: Sequence[bool]) -> bool:
        value = sat_model[literal >> 1]
        return (not value) if (literal & 1) else value

    # -- fresh variables & primitive gates ---------------------------------

    def _fresh(self) -> int:
        return make_literal(self._sink.new_variable())

    def _constant(self, value: bool) -> int:
        return self._true if value else self._false

    def _gate_need(self, key: tuple, polarity: int) -> tuple[int, int]:
        """Cached output literal and the not-yet-emitted directions.

        Allocates the output variable on first sight.  The caller is
        responsible for emitting the clauses of the returned ``need`` mask
        (the mask is recorded as emitted here, before the clauses land, so
        recursive upgrades cannot duplicate them).
        """
        output = self._gate_cache.get(key)
        if output is None:
            output = self._fresh()
            self._gate_cache[key] = output
            self._gate_emitted[key] = 0
        need = polarity & ~self._gate_emitted[key]
        self._gate_emitted[key] |= need
        return output, need

    def _gate_and(self, operands: list[int], polarity: int = BOTH) -> int:
        operands = [lit for lit in operands if lit != self._true]
        if any(lit == self._false for lit in operands):
            return self._false
        if not operands:
            return self._true
        if len(operands) == 1:
            return operands[0]
        key = ("and", tuple(sorted(operands)))
        output, need = self._gate_need(key, polarity)
        if need & POSITIVE:  # output → every operand
            for literal in key[1]:
                self._sink.add_clause([negate(output), literal])
        if need & NEGATIVE:  # all operands → output
            self._sink.add_clause([output] + [negate(literal) for literal in key[1]])
        return output

    def _gate_or(self, operands: list[int], polarity: int = BOTH) -> int:
        # De Morgan: the inner AND gate is used *negated*, so the
        # directions it must support are the caller's, swapped.
        return negate(
            self._gate_and(
                [negate(literal) for literal in operands], _swap_polarity(polarity)
            )
        )

    def _gate_xor(self, left: int, right: int, polarity: int = BOTH) -> int:
        if left == self._false:
            return right
        if right == self._false:
            return left
        if left == self._true:
            return negate(right)
        if right == self._true:
            return negate(left)
        if left == right:
            return self._false
        if left == negate(right):
            return self._true
        key = ("xor", tuple(sorted((left, right))))
        output, need = self._gate_need(key, polarity)
        if need & POSITIVE:  # output → left ⊕ right
            self._sink.add_clause([negate(output), left, right])
            self._sink.add_clause([negate(output), negate(left), negate(right)])
        if need & NEGATIVE:  # left ⊕ right → output
            self._sink.add_clause([output, negate(left), right])
            self._sink.add_clause([output, left, negate(right)])
        return output

    def _gate_ite(
        self, condition: int, then_literal: int, else_literal: int, polarity: int = BOTH
    ) -> int:
        if condition == self._true:
            return then_literal
        if condition == self._false:
            return else_literal
        if then_literal == else_literal:
            return then_literal
        key = ("ite", condition, then_literal, else_literal)
        output, need = self._gate_need(key, polarity)
        if need & POSITIVE:  # output → (condition ? then : else)
            self._sink.add_clause([negate(condition), then_literal, negate(output)])
            self._sink.add_clause([condition, else_literal, negate(output)])
            # Redundant but propagation-friendly clause.
            self._sink.add_clause([then_literal, else_literal, negate(output)])
        if need & NEGATIVE:  # (condition ? then : else) → output
            self._sink.add_clause([negate(condition), negate(then_literal), output])
            self._sink.add_clause([condition, negate(else_literal), output])
            self._sink.add_clause([negate(then_literal), negate(else_literal), output])
        return output

    def _gate_iff(self, left: int, right: int, polarity: int = BOTH) -> int:
        return negate(self._gate_xor(left, right, _swap_polarity(polarity)))

    def _gate_majority(self, a: int, b: int, c: int) -> int:
        """Majority-of-three (full-adder carry); bit-vector layer, full encoding."""
        return self._gate_or(
            [self._gate_and([a, b]), self._gate_and([a, c]), self._gate_and([b, c])]
        )

    # -- Boolean terms ------------------------------------------------------

    def _blast_bool(self, term: BoolTerm, polarity: int) -> int:
        if isinstance(term, BoolConst):
            return self._constant(term.value)
        if isinstance(term, BoolVar):
            if term.name not in self._bool_vars:
                literal = self._fresh()
                self._bool_vars[term.name] = literal
                self._record_declaration(term.name, (literal,))
            return self._bool_vars[term.name]
        if isinstance(term, BoolOp):
            if term.kind == "not":
                # Negation flips the polarity of the operand's occurrences.
                return negate(self.blast_bool(term.args[0], _swap_polarity(polarity)))
            if term.kind == "xor":
                # XOR inputs occur in both phases of the gate clauses, so
                # sub-terms (and intermediate chain gates) need BOTH; only
                # the final output gate is polarity-split.
                operands = [self.blast_bool(arg, BOTH) for arg in term.args]
                if len(operands) == 1:
                    return operands[0]
                result = operands[0]
                for literal in operands[1:-1]:
                    result = self._gate_xor(result, literal, BOTH)
                return self._gate_xor(result, operands[-1], polarity)
            # and / or preserve the polarity of their operands.
            operands = [self.blast_bool(arg, polarity) for arg in term.args]
            if term.kind == "and":
                return self._gate_and(operands, polarity)
            return self._gate_or(operands, polarity)
        if isinstance(term, BoolIte):
            return self._gate_ite(
                # The condition guards both directions: it is mixed-polarity.
                self.blast_bool(term.condition, BOTH),
                self.blast_bool(term.then_branch, polarity),
                self.blast_bool(term.else_branch, polarity),
                polarity,
            )
        if isinstance(term, BvComparison):
            return self._blast_comparison(term, polarity)
        raise SolverError(f"cannot bit-blast Boolean term {type(term).__name__}")

    def _blast_comparison(self, term: BvComparison, polarity: int = BOTH) -> int:
        # The bit-vector layer below is always fully (biconditionally)
        # encoded; the polarity split applies to the comparison skeleton
        # gates built on top of the operand bits.
        left = self.blast_bv(term.left)
        right = self.blast_bv(term.right)
        if term.kind == "eq":
            return self._gate_and(
                [self._gate_iff(a, b, polarity) for a, b in zip(left, right)],
                polarity,
            )
        if term.kind in {"slt", "sle"}:
            # Signed comparison = unsigned comparison with sign bits flipped.
            left = left[:-1] + [negate(left[-1])]
            right = right[:-1] + [negate(right[-1])]
        strict = term.kind in {"ult", "slt"}
        return self._unsigned_less(left, right, not strict, polarity)

    def _unsigned_less(
        self,
        left: list[int],
        right: list[int],
        allow_equal: bool,
        polarity: int = BOTH,
    ) -> int:
        """Encode ``left < right`` (or ``<=``) for LSB-first literal lists."""
        result = self._constant(allow_equal)
        for a, b in zip(left, right):  # LSB to MSB
            strictly_less = self._gate_and([negate(a), b], polarity)
            equal = self._gate_iff(a, b, polarity)
            result = self._gate_or(
                [strictly_less, self._gate_and([equal, result], polarity)], polarity
            )
        return result

    # -- bit-vector terms ----------------------------------------------------

    def _blast_bv(self, term: BitVecTerm) -> list[int]:
        if isinstance(term, BvConst):
            return [
                self._constant(bool((term.value >> position) & 1))
                for position in range(term.width)
            ]
        if isinstance(term, BvVar):
            if term.name not in self._bv_vars:
                bits = [self._fresh() for _ in range(term.width)]
                self._bv_vars[term.name] = bits
                self._record_declaration(term.name, bits)
            bits = self._bv_vars[term.name]
            if len(bits) != term.width:
                raise SolverError(
                    f"variable {term.name!r} redeclared with width {term.width}"
                )
            return list(bits)
        if isinstance(term, BvOp):
            return self._blast_bv_op(term)
        if isinstance(term, BvIte):
            condition = self.blast_bool(term.condition)
            then_bits = self.blast_bv(term.then_branch)
            else_bits = self.blast_bv(term.else_branch)
            return [
                self._gate_ite(condition, t, e) for t, e in zip(then_bits, else_bits)
            ]
        if isinstance(term, BvExtract):
            bits = self.blast_bv(term.operand)
            return bits[term.low : term.high + 1]
        if isinstance(term, BvConcat):
            result: list[int] = []
            for operand in reversed(term.operands):  # LSB-first assembly
                result.extend(self.blast_bv(operand))
            return result
        if isinstance(term, BvZeroExtend):
            bits = self.blast_bv(term.operand)
            return bits + [self._false] * (term.width - term.operand.width)
        if isinstance(term, BvSignExtend):
            bits = self.blast_bv(term.operand)
            return bits + [bits[-1]] * (term.width - term.operand.width)
        raise SolverError(f"cannot bit-blast bit-vector term {type(term).__name__}")

    def _blast_bv_op(self, term: BvOp) -> list[int]:
        kind = term.kind
        if kind in {"and", "or", "xor"}:
            left = self.blast_bv(term.args[0])
            right = self.blast_bv(term.args[1])
            if kind == "and":
                return [self._gate_and([a, b]) for a, b in zip(left, right)]
            if kind == "or":
                return [self._gate_or([a, b]) for a, b in zip(left, right)]
            return [self._gate_xor(a, b) for a, b in zip(left, right)]
        if kind == "not":
            return [negate(bit) for bit in self.blast_bv(term.args[0])]
        if kind == "neg":
            bits = [negate(bit) for bit in self.blast_bv(term.args[0])]
            return self._ripple_add(bits, [self._false] * len(bits), carry_in=self._true)
        if kind == "add":
            return self._ripple_add(
                self.blast_bv(term.args[0]), self.blast_bv(term.args[1]), self._false
            )
        if kind == "sub":
            left = self.blast_bv(term.args[0])
            right = [negate(bit) for bit in self.blast_bv(term.args[1])]
            return self._ripple_add(left, right, carry_in=self._true)
        if kind == "mul":
            return self._multiply(
                self.blast_bv(term.args[0]), self.blast_bv(term.args[1])
            )
        if kind in {"shl", "lshr", "ashr"}:
            return self._shift(
                kind, self.blast_bv(term.args[0]), term.args[1]
            )
        raise SolverError(f"unhandled bit-vector op {kind!r}")

    def _ripple_add(self, left: list[int], right: list[int], carry_in: int) -> list[int]:
        carry = carry_in
        result: list[int] = []
        for a, b in zip(left, right):
            partial = self._gate_xor(a, b)
            result.append(self._gate_xor(partial, carry))
            carry = self._gate_majority(a, b, carry)
        return result

    def _multiply(self, left: list[int], right: list[int]) -> list[int]:
        width = len(left)
        accumulator = [self._false] * width
        for position, control in enumerate(right):
            if control == self._false:
                continue
            partial = (
                [self._false] * position
                + [self._gate_and([control, bit]) for bit in left[: width - position]]
            )
            accumulator = self._ripple_add(accumulator, partial, self._false)
        return accumulator

    def _shift(self, kind: str, operand: list[int], amount_term: BitVecTerm) -> list[int]:
        width = len(operand)
        fill = operand[-1] if kind == "ashr" else self._false
        # Constant shift amounts are rewired directly.
        if isinstance(amount_term, BvConst):
            amount = amount_term.value
            return self._shift_by_constant(kind, operand, amount, fill)
        amount_bits = self.blast_bv(amount_term)
        # Barrel shifter over the log2(width) least significant amount bits.
        stages = max(1, (width - 1).bit_length())
        result = list(operand)
        for stage in range(stages):
            shift = 1 << stage
            shifted = self._shift_by_constant(kind, result, shift, fill)
            control = amount_bits[stage] if stage < len(amount_bits) else self._false
            result = [
                self._gate_ite(control, s, r) for s, r in zip(shifted, result)
            ]
        # Any higher amount bit set (or amount >= width) forces the
        # overflow fill value.
        overflow_controls = list(amount_bits[stages:])
        if (1 << stages) > width - 1:
            # Amounts in [width, 2**stages) also overflow; detect them via a
            # comparison against the constant width.
            pass
        overflow = (
            self._gate_or(overflow_controls) if overflow_controls else self._false
        )
        # Additionally handle amounts between width and 2**stages - 1.
        if (1 << stages) - 1 >= width:
            width_const = [
                self._constant(bool((width >> position) & 1))
                for position in range(len(amount_bits))
            ]
            too_large = negate(
                self._unsigned_less(amount_bits, width_const, allow_equal=False)
            )
            overflow = self._gate_or([overflow, too_large])
        return [self._gate_ite(overflow, fill, bit) for bit in result]

    def _shift_by_constant(
        self, kind: str, operand: list[int], amount: int, fill: int
    ) -> list[int]:
        width = len(operand)
        if amount == 0:
            return list(operand)
        if amount >= width:
            return [fill] * width
        if kind == "shl":
            return [self._false] * amount + operand[: width - amount]
        # lshr / ashr
        return operand[amount:] + [fill] * amount
