#!/usr/bin/env python3
"""Quickstart: the sciduction engine as a multi-node cluster.

Boots the full cluster topology from ``docs/CLUSTER.md`` — one memo
service, one coordinator, two node agents, every role a real
subprocess on an ephemeral port — then drives it over the same HTTP
surface the single-process service exposes:

1. a small job stream submitted over the wire, sharded across the two
   nodes by problem shape (rendezvous hashing),
2. the ``/stats`` cluster section — per-node liveness, owned shapes,
   completed-job counts, memo-service counters,
3. a graceful drain: SIGTERM to the coordinator, nodes exit 0.

Run with::

    python examples/cluster_quickstart.py [--width 4]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

NODE_NAMES = ["alpha", "beta"]


def call(base: str, method: str, path: str, body: dict | None = None) -> dict:
    request = urllib.request.Request(
        base + path,
        method=method,
        data=None if body is None else json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return json.loads(response.read())


def wait_port(path: Path, deadline: float = 30.0) -> int:
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        if path.exists():
            text = path.read_text().strip()
            if text:
                return int(text)
        time.sleep(0.05)
    raise RuntimeError(f"port file {path} never appeared")


def spawn(command: list[str]) -> subprocess.Popen:
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.Popen(command, env=environment, cwd=str(REPO_ROOT))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--width", type=int, default=4, help="base deobfuscation width")
    arguments = parser.parse_args()

    state = Path(".cluster-quickstart")
    state.mkdir(exist_ok=True)
    for stale in state.glob("*.port"):
        stale.unlink()
    processes: dict[str, subprocess.Popen] = {}
    try:
        processes["memod"] = spawn(
            [sys.executable, "-m", "repro.cluster.memod",
             "--port", "0", "--port-file", str(state / "memod.port")]
        )
        memod_port = wait_port(state / "memod.port")
        processes["coordinator"] = spawn(
            [sys.executable, "-m", "repro.cluster.coordinator",
             "--port", "0", "--port-file", str(state / "http.port"),
             "--cluster-port", "0",
             "--cluster-port-file", str(state / "cluster.port"),
             "--memod", f"127.0.0.1:{memod_port}",
             "--data-dir", str(state / "coordinator-data"),
             "--quiet"]
        )
        base = f"http://127.0.0.1:{wait_port(state / 'http.port')}"
        cluster_port = wait_port(state / "cluster.port")
        print(f"coordinator listening on {base} (cluster port {cluster_port})")
        for name in NODE_NAMES:
            processes[name] = spawn(
                [sys.executable, "-m", "repro.cluster.node",
                 "--coordinator", f"127.0.0.1:{cluster_port}",
                 "--memod", f"127.0.0.1:{memod_port}",
                 "--name", name, "--quiet"]
            )
        while len(call(base, "GET", "/stats")["cluster"]["live_nodes"]) < 2:
            time.sleep(0.1)
        print(f"nodes registered: {call(base, 'GET', '/stats')['cluster']['live_nodes']}")

        # Two problem shapes land on different nodes; the duplicate rides
        # its shape's warm session on whichever node owns it.
        stream = [
            {"kind": "deobfuscation", "task": "multiply45",
             "width": arguments.width, "seed": 0},
            {"kind": "deobfuscation", "task": "multiply45",
             "width": arguments.width + 1, "seed": 0},
            {"kind": "deobfuscation", "task": "multiply45",
             "width": arguments.width, "seed": 0},
        ]
        job_ids = [
            call(base, "POST", "/jobs",
                 {"problem": spec, "label": f"quickstart-{index}"})["job_id"]
            for index, spec in enumerate(stream)
        ]
        for job_id in job_ids:
            while not call(base, "GET", f"/jobs/{job_id}?wait=30")["done"]:
                pass
            result = call(base, "GET", f"/jobs/{job_id}/result")
            engine = result["details"]["engine"]
            print(
                f"  job {job_id}: verdict={result['verdict']}"
                f" on node {engine['node']!r}"
            )
            assert result["success"] is True

        cluster = call(base, "GET", "/stats")["cluster"]
        for name in NODE_NAMES:
            record = cluster["nodes"][name]
            print(
                f"  node {name}: jobs_completed={record['jobs_completed']}"
                f" shapes={record['shapes']}"
            )
        memod = cluster["memod"]
        print("  memod:", {key: memod.get(key, 0)
                           for key in ("publishes", "hits", "cross_worker_hits")})

        # Graceful drain: the coordinator forwards the drain to its
        # nodes; everything exits 0 on its own.
        processes["coordinator"].send_signal(signal.SIGTERM)
        assert processes["coordinator"].wait(timeout=60) == 0
        for name in NODE_NAMES:
            assert processes[name].wait(timeout=60) == 0
        print("drained: coordinator and nodes exited 0")
    finally:
        for process in processes.values():
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
    print("done.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
