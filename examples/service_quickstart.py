#!/usr/bin/env python3
"""Quickstart: the sciduction engine as a long-lived HTTP service.

Boots :class:`repro.service.SciductionService` on an ephemeral port,
drives it over plain HTTP the way any non-Python client would (see
``docs/SERVICE.md`` for the equivalent ``curl`` commands), and shows the
service-grade machinery at work:

1. one job of each problem kind submitted over the wire,
2. a queued job cancelled before the engine reaches it,
3. the ``/stats`` counters — pool routing, scheduler, shared check memo.

Run with::

    python examples/service_quickstart.py [--width 4]
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import EngineConfig
from repro.service import SciductionService


def call(base: str, method: str, path: str, body: dict | None = None):
    request = urllib.request.Request(
        base + path,
        method=method,
        data=None if body is None else json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def wait_for(base: str, job_id: int) -> dict:
    # Long-poll: the server holds the request open (up to 30s per call)
    # and answers the moment the job reaches a terminal state — no
    # client-side sleep/poll loop.
    while True:
        _, record = call(base, "GET", f"/jobs/{job_id}?wait=30")
        if record["done"]:
            return record


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--width", type=int, default=4, help="deobfuscation width")
    arguments = parser.parse_args()

    service = SciductionService(EngineConfig(workers=1), port=0, quiet=True)
    service.start()
    base = service.url
    print(f"service listening on {base}")
    try:
        jobs = [
            {"kind": "deobfuscation", "task": "multiply45",
             "width": arguments.width, "seed": 0},
            {"kind": "timing-analysis", "program": "bounded_linear_search",
             "program_args": {"length": 3, "word_width": 16}, "bound": 250},
            {"kind": "switching-logic", "system": "transmission",
             "omega_step": 0.5, "integration_step": 0.05, "horizon": 40.0},
        ]
        for spec in jobs:
            status, submitted = call(
                base, "POST", "/jobs", {"problem": spec, "label": spec["kind"]}
            )
            assert status == 202, (status, submitted)
            record = wait_for(base, submitted["job_id"])
            _, result = call(base, "GET", f"/jobs/{submitted['job_id']}/result")
            print(
                f"  {spec['kind']:<16} -> {record['state']}"
                f" (success={result['success']}, verdict={result['verdict']},"
                f" {record['elapsed']:.2f}s)"
            )
            assert result["success"] is True

        # Cancellation: queue two jobs, cancel the second while the first
        # (deliberately slower) still runs.
        status, blocker = call(
            base, "POST", "/jobs",
            {"problem": {"kind": "deobfuscation", "task": "multiply45",
                         "width": max(5, arguments.width)}},
        )
        status, target = call(
            base, "POST", "/jobs",
            {"problem": {"kind": "deobfuscation", "task": "multiply45",
                         "width": arguments.width}},
        )
        status, outcome = call(base, "DELETE", f"/jobs/{target['job_id']}")
        print(f"  DELETE /jobs/{target['job_id']} -> {status} {outcome}")
        wait_for(base, blocker["job_id"])

        _, stats = call(base, "GET", "/stats")
        print("  /stats queue:", stats["queue"])
        print("  /stats pool routing hits:", stats["engine"]["pool"]["routing_hits"])
        print("  /stats shared memo:", {
            key: stats["engine"]["shared_memo"].get(key, 0)
            for key in ("publishes", "hits", "cross_worker_hits")
        })
    finally:
        service.shutdown()
    print("done.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
