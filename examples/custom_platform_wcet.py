#!/usr/bin/env python3
"""Porting GameTime to a new platform and a new task.

The paper emphasises that GameTime is *program-specific* and needs only
end-to-end measurements, which makes it easy to port to new platforms.
This example demonstrates exactly that: it defines

* a custom task in the task language (a bounded linear search whose timing
  depends on where — and whether — the needle occurs), and
* two different platform configurations (a small direct-mapped cache with
  a harsh miss penalty vs. a larger associative cache),

and shows how the learned (w, π) model, the predicted WCET and the
worst-case test case change with the platform, without touching the
analysis code.  A noisy measurement run (bounded perturbation, exercising
the π component of the structure hypothesis) is included as well.

Run with::

    python examples/custom_platform_wcet.py
"""

from __future__ import annotations

from repro.cfg import bounded_linear_search
from repro.gametime import GameTime
from repro.platform import CacheConfig, PerturbationModel, PipelineConfig, PlatformConfig


def make_platforms() -> dict[str, PlatformConfig]:
    """Two platform variants with different memory systems."""
    harsh = PlatformConfig(
        data_cache=CacheConfig(line_size_words=1, num_sets=2, associativity=1,
                               hit_latency=1, miss_penalty=40),
        instruction_cache=CacheConfig(line_size_words=2, num_sets=8, associativity=1,
                                      hit_latency=0, miss_penalty=20),
        pipeline=PipelineConfig(multiply_extra=6, taken_branch_penalty=3),
    )
    friendly = PlatformConfig(
        data_cache=CacheConfig(line_size_words=4, num_sets=32, associativity=4,
                               hit_latency=0, miss_penalty=6),
        instruction_cache=CacheConfig(line_size_words=8, num_sets=64, associativity=2,
                                      hit_latency=0, miss_penalty=4),
        pipeline=PipelineConfig(multiply_extra=2, taken_branch_penalty=1),
    )
    return {"harsh-memory": harsh, "friendly-memory": friendly}


def analyse(platform_name: str, platform: PlatformConfig) -> None:
    task = bounded_linear_search(length=4, word_width=16)
    analysis = GameTime(task, platform=platform, trials=None, seed=0)
    analysis.prepare()
    estimate = analysis.estimate_wcet()
    print(f"--- platform: {platform_name} ---")
    print(f"  task                   : {task.name}")
    print(f"  paths / basis paths    : {analysis.cfg.count_paths()} / "
          f"{analysis.num_basis_paths}")
    print(f"  predicted WCET         : {estimate.predicted_cycles:.1f} cycles")
    print(f"  measured on test case  : {estimate.measured_cycles} cycles")
    print(f"  worst-case test case   : {estimate.test_case}")
    report = analysis.predict_distribution(measure=True)
    print(f"  prediction error (mean): {report.mean_absolute_error:.2f} cycles "
          f"over {len(report.predictions)} feasible paths")
    print()


def noisy_run() -> None:
    """The same analysis with bounded measurement noise (the π component)."""
    task = bounded_linear_search(length=4, word_width=16)
    analysis = GameTime(
        task,
        perturbation=PerturbationModel(mean=8.0, seed=3),
        trials=60,
        mu_max=8.0,
        seed=3,
    )
    analysis.prepare()
    report = analysis.predict_distribution(measure=True)
    print("--- noisy platform (mean perturbation 8 cycles, 60 trials) ---")
    print(f"  mean |prediction error|: {report.mean_absolute_error:.2f} cycles")
    print(f"  max  |prediction error|: {report.max_absolute_error:.2f} cycles")
    print("  (errors stay within a few multiples of the perturbation bound,")
    print("   as the probabilistic-soundness argument of Section 3.3 predicts)")


def main() -> None:
    for name, platform in make_platforms().items():
        analyse(name, platform)
    noisy_run()


if __name__ == "__main__":
    main()
