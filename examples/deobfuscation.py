#!/usr/bin/env python3
"""Program deobfuscation by oracle-guided synthesis (paper Fig. 8).

Treats each obfuscated program as a black-box I/O oracle and re-synthesizes
a clean, loop-free program over a small component library, exactly as in
Section 4 of the paper — submitted as declarative problem specs to one
:class:`repro.api.SciductionEngine` batch, so both benchmarks share the
engine's pooled incremental SMT session:

* **P1 — interchange**: the obfuscated XOR-maze that swaps two IP
  addresses; the library is three XOR components and the synthesizer
  recovers the classic three-instruction XOR swap.
* **P2 — multiply by 45**: the obfuscated flag-driven state machine; the
  library is {<<2, +, <<3, +} and the synthesizer recovers the
  shift-and-add sequence.

The script also demonstrates the Figure 7 failure mode through the same
front door: with an *insufficient* component library (the registered
``multiply45_insufficient`` task) the engine reports either infeasibility
or a program that matches the seen examples but fails the a-posteriori
equivalence verdict — which is why the structure hypothesis (library
sufficiency) matters.

Run with::

    python examples/deobfuscation.py              # both benchmarks (8-bit)
    python examples/deobfuscation.py --width 16   # wider data path (slower)
"""

from __future__ import annotations

import argparse

from repro.api import DeobfuscationProblem, EngineConfig, SciductionEngine


def report(name: str, result) -> None:
    """Print one deobfuscation job's outcome."""
    print(f"--- {name} ---")
    print(f"  synthesis time       : {result.elapsed:.2f} s")
    print(f"  oracle (I/O) queries : {result.oracle_queries}")
    print(f"  candidate iterations : {result.iterations}")
    smt = result.details["engine"]["smt_job_statistics"]
    print(f"  SMT work (this job)  : {smt['variables_generated']} vars, "
          f"{smt['clauses_generated']} clauses")
    print("  deobfuscated program :")
    for line in result.artifact.pretty(name).splitlines():
        print(f"    {line}")
    print(f"  equivalent to the obfuscated oracle: {result.verdict}")
    print()


def report_invalid_hypothesis(result) -> None:
    """Figure 7: what happens when the component library is insufficient."""
    print("--- multiply45 with an insufficient library (Figure 7) ---")
    if not result.success:
        print("  outcome: INFEASIBILITY REPORTED "
              "(no composition of the library matches the examples)")
        return
    print("  outcome: a program consistent with the examples was produced")
    print(f"  but it is equivalent to the oracle: {result.verdict} "
          "(an invalid structure hypothesis can yield an incorrect program)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=8,
                        help="data-path width in bits used during synthesis")
    args = parser.parse_args()

    engine = SciductionEngine(EngineConfig())
    interchange, multiply45, insufficient = engine.run_batch([
        DeobfuscationProblem(task="interchange", width=args.width, seed=1),
        DeobfuscationProblem(task="multiply45", width=args.width, seed=1),
        DeobfuscationProblem(task="multiply45_insufficient",
                             width=args.width, seed=1),
    ])

    report(f"interchange ({args.width}-bit data path)", interchange)
    report(f"multiply45 ({args.width}-bit data path)", multiply45)
    report_invalid_hypothesis(insufficient)


if __name__ == "__main__":
    main()
