#!/usr/bin/env python3
"""Program deobfuscation by oracle-guided synthesis (paper Fig. 8).

Treats each obfuscated program as a black-box I/O oracle and re-synthesizes
a clean, loop-free program over a small component library, exactly as in
Section 4 of the paper:

* **P1 — interchange**: the obfuscated XOR-maze that swaps two IP
  addresses; the library is three XOR components and the synthesizer
  recovers the classic three-instruction XOR swap.
* **P2 — multiply by 45**: the obfuscated flag-driven state machine; the
  library is {<<2, +, <<3, +} and the synthesizer recovers the
  shift-and-add sequence.

The script also demonstrates the Figure 7 failure mode: with an
*insufficient* component library the synthesizer either reports
infeasibility or returns a program that matches the seen examples but is
not equivalent to the oracle — which is why the structure hypothesis
(library sufficiency) matters.

Run with::

    python examples/deobfuscation.py              # both benchmarks (8-bit)
    python examples/deobfuscation.py --width 16   # wider data path (slower)
"""

from __future__ import annotations

import argparse
import time

from repro.core import UnrealizableError
from repro.ogis import (
    OgisSynthesizer,
    ProgramIOOracle,
    insufficient_multiply45_library,
    interchange_library,
    interchange_obfuscated,
    interchange_reference,
    multiply45_library,
    multiply45_obfuscated,
    multiply45_reference,
)


def deobfuscate(name, library, obfuscated, reference, num_inputs, num_outputs, width):
    """Run the OGIS loop against ``obfuscated`` and report the result."""
    print(f"--- {name} ({width}-bit data path) ---")
    oracle = ProgramIOOracle(
        lambda values: obfuscated(values, width), num_inputs, num_outputs, width
    )
    synthesizer = OgisSynthesizer(library, oracle, width=width, seed=1)
    start = time.perf_counter()
    program = synthesizer.synthesize()
    elapsed = time.perf_counter() - start
    print(f"  synthesis time       : {elapsed:.2f} s")
    print(f"  oracle (I/O) queries : {synthesizer.trace.oracle_queries}")
    print(f"  candidate iterations : {synthesizer.trace.iterations}")
    print("  deobfuscated program :")
    for line in program.pretty(name).splitlines():
        print(f"    {line}")
    equivalent = program.equivalent_to(
        lambda values: reference(values, width), width=width
    )
    print(f"  equivalent to the obfuscated oracle: {equivalent}")
    print()
    return program


def demonstrate_invalid_hypothesis(width: int) -> None:
    """Figure 7: what happens when the component library is insufficient."""
    print("--- multiply45 with an insufficient library (Figure 7) ---")
    oracle = ProgramIOOracle(
        lambda values: multiply45_obfuscated(values, width), 1, 1, width
    )
    synthesizer = OgisSynthesizer(
        insufficient_multiply45_library(), oracle, width=width, seed=1
    )
    try:
        program = synthesizer.synthesize()
    except UnrealizableError:
        print("  outcome: INFEASIBILITY REPORTED "
              "(no composition of the library matches the examples)")
        return
    equivalent = program.equivalent_to(
        lambda values: multiply45_reference(values, width), width=width
    )
    print("  outcome: a program consistent with the examples was produced")
    print(f"  but it is equivalent to the oracle: {equivalent} "
          "(an invalid structure hypothesis can yield an incorrect program)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=8,
                        help="data-path width in bits used during synthesis")
    args = parser.parse_args()

    deobfuscate(
        "interchange", interchange_library(), interchange_obfuscated,
        interchange_reference, num_inputs=2, num_outputs=2, width=args.width,
    )
    deobfuscate(
        "multiply45", multiply45_library(), multiply45_obfuscated,
        multiply45_reference, num_inputs=1, num_outputs=1, width=args.width,
    )
    demonstrate_invalid_hypothesis(args.width)


if __name__ == "__main__":
    main()
