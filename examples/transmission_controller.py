#!/usr/bin/env python3
"""Switching-logic synthesis for the 3-gear automatic transmission
(paper Section 5, Eq. 3 / Eq. 4 / Figure 10).

The script:

1. synthesizes guard hyperboxes for the 12 transitions of the transmission
   multi-modal system so that the closed-loop hybrid automaton satisfies
   φS = (ω ≥ 5 ⇒ η ≥ 0.5) ∧ (0 ≤ ω ≤ 60), and prints them next to the
   intervals reported in the paper's Eq. (3);
2. optionally repeats the synthesis with a 5-second minimum dwell time per
   gear mode (the paper's Eq. (4) variant);
3. drives the synthesized automaton from Neutral up through the gears and
   back to Neutral and prints an ASCII rendering of Figure 10 (speed ω and
   efficiency η over time), checking that η ≥ 0.5 whenever ω ≥ 5.

Run with::

    python examples/transmission_controller.py                 # Eq. 3 + Fig. 10
    python examples/transmission_controller.py --dwell         # adds the Eq. 4 run
    python examples/transmission_controller.py --step 0.01     # paper-precision grid
"""

from __future__ import annotations

import argparse

from repro.api import SciductionEngine, SwitchingLogicProblem
from repro.hybrid import (
    FIGURE10_SCHEDULE,
    HybridAutomaton,
    Hyperbox,
    IntegratorConfig,
    PAPER_EQ3_GUARDS,
    PAPER_EQ4_GUARDS,
    THETA_MAX,
    build_transmission_system,
    efficiency_of_mode,
)


def print_guard_table(result, paper_reference, title):
    switching_logic = result.artifact
    print(f"\n{title}")
    print(f"  {'guard':6s} {'synthesized omega interval':30s} {'paper':>18s}")
    for name in sorted(switching_logic):
        interval = switching_logic[name].interval("omega")
        synthesized = f"[{interval.low:6.2f}, {interval.high:6.2f}]"
        if name in paper_reference:
            low, high = paper_reference[name]
            paper = f"[{low:6.2f}, {high:6.2f}]"
        else:
            paper = "(point guard)"
        print(f"  {name:6s} {synthesized:30s} {paper:>18s}")
    print(f"  fixpoint iterations: {result.iterations}, "
          f"simulation queries: {result.oracle_queries}")


def ascii_figure10(trace, samples: int = 48) -> None:
    """Render the speed/efficiency trace of Figure 10 as ASCII rows."""
    points = trace.points
    stride = max(1, len(points) // samples)
    print("\nFigure 10: speed and efficiency while switching through the gears")
    print(f"  {'time':>7s} {'mode':>4s} {'omega':>7s} {'eta':>5s}  speed bar (0..40)")
    for point in points[::stride]:
        omega = point.state[1]
        eta = efficiency_of_mode(point.mode, omega)
        bar = "*" * int(round(omega))
        print(f"  {point.time:7.1f} {point.mode:>4s} {omega:7.2f} {eta:5.2f}  {bar}")
    final = points[-1]
    print(f"  final: t={final.time:.1f}s mode={final.mode} "
          f"theta={final.state[0]:.1f} omega={final.state[1]:.2f}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--step", type=float, default=0.05,
                        help="omega grid precision (0.01 matches the paper)")
    parser.add_argument("--dwell", action="store_true",
                        help="also run the 5-second dwell-time variant (Eq. 4)")
    args = parser.parse_args()

    # Both synthesis variants go through the unified engine as declarative
    # problem specs; the Eq. 4 dwell-time variant differs in one field.
    engine = SciductionEngine()
    eq3_problem = SwitchingLogicProblem(
        system="transmission", dwell_time=0.0, omega_step=args.step,
        integration_step=0.02, horizon=80.0,
    )
    result = engine.run(eq3_problem)
    print_guard_table(result, PAPER_EQ3_GUARDS,
                      "Synthesized guards for the safety property (paper Eq. 3)")

    if args.dwell:
        dwell_result = engine.run(SwitchingLogicProblem(
            system="transmission", dwell_time=5.0, omega_step=args.step,
            integration_step=0.02, horizon=80.0,
        ))
        print_guard_table(dwell_result, PAPER_EQ4_GUARDS,
                          "Guards with a 5-second dwell time per gear (paper Eq. 4)")

    # Closed-loop Figure 10 trace.  The synthesized g1ND guard is the
    # designated point (theta = theta_max, omega = 0); for simulation we
    # relax it to "nearly stopped" so the fixed-step integrator can hit it.
    system = build_transmission_system(dwell_time=0.0)
    logic = dict(result.artifact)
    logic["g1ND"] = Hyperbox.from_bounds({"theta": (0.0, THETA_MAX), "omega": (0.0, 0.5)})
    automaton = HybridAutomaton(system, logic, IntegratorConfig(step=0.02))
    trace = automaton.simulate_schedule(FIGURE10_SCHEDULE, horizon=200.0)
    ascii_figure10(trace)

    violations = sum(
        1
        for point in trace.points
        if point.mode != "N"
        and point.state[1] >= 5.0
        and efficiency_of_mode(point.mode, point.state[1]) < 0.5
    )
    print(f"\nclosed-loop safety: {'SAFE' if trace.safe and violations == 0 else 'VIOLATED'} "
          f"(eta >= 0.5 whenever omega >= 5: {violations} violations)")


if __name__ == "__main__":
    main()
