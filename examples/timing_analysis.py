#!/usr/bin/env python3
"""GameTime-style timing analysis of modular exponentiation (paper Fig. 6).

Reproduces the paper's Section 3.3 experiment end to end:

* the task is square-and-multiply modular exponentiation with an 8-bit
  exponent (256 program paths, 9 basis paths);
* the platform is the package's cycle-level simulator (in-order pipeline,
  split caches) standing in for the SimIt-ARM / StrongARM-1100 testbed;
* GameTime measures only the 9 basis paths, learns the (w, π) model, then
  predicts the execution time of every one of the 256 paths;
* the script prints the predicted-vs-measured histogram (the textual form
  of Figure 6), the WCET prediction and its witness test case, and the
  answer to a ⟨TA⟩ query, and compares against a random-testing baseline
  with the same measurement budget.

Run with::

    python examples/timing_analysis.py            # 8-bit exponent (paper)
    python examples/timing_analysis.py --bits 6   # smaller, faster variant
"""

from __future__ import annotations

import argparse

from repro.cfg import modular_exponentiation
from repro.gametime import ExhaustiveEstimator, GameTime, RandomTestingEstimator


def render_histogram(rows, bar_width: int = 40) -> None:
    """Print the predicted/measured histogram as side-by-side bars."""
    peak = max((max(predicted, measured) for _, predicted, measured in rows), default=1)
    print(f"  {'cycles':>8s}  {'predicted':<{bar_width}s}  measured")
    for start, predicted, measured in rows:
        if predicted == 0 and measured == 0:
            continue
        predicted_bar = "#" * round(bar_width * predicted / peak)
        measured_bar = "#" * round(bar_width * measured / peak)
        print(f"  {start:>8d}  {predicted_bar:<{bar_width}s}  {measured_bar}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bits", type=int, default=8,
                        help="number of exponent bits (8 reproduces the paper)")
    parser.add_argument("--trials", type=int, default=None,
                        help="measurement budget (default: 3x basis paths)")
    parser.add_argument("--bound", type=int, default=None,
                        help="cycle bound for the <TA> query (default: WCET-1)")
    args = parser.parse_args()

    task = modular_exponentiation(exponent_bits=args.bits, word_width=16)
    analysis = GameTime(task, trials=args.trials, seed=0)
    analysis.prepare()

    print(f"task                     : {task.name} ({args.bits}-bit exponent)")
    print(f"program paths            : {analysis.cfg.count_paths()}")
    print(f"feasible basis paths     : {analysis.num_basis_paths}")
    print(f"end-to-end measurements  : {analysis.timing_oracle.query_count}")
    print()

    print("Predicted vs measured execution-time distribution (Figure 6):")
    report = analysis.predict_distribution(measure=True)
    render_histogram(report.histogram(bin_width=10))
    print(f"  paths predicted          : {len(report.predictions)}")
    print(f"  max |pred - meas| cycles : {report.max_absolute_error:.2f}")
    print(f"  mean |pred - meas| cycles: {report.mean_absolute_error:.2f}")
    print()

    estimate = analysis.estimate_wcet()
    truth = ExhaustiveEstimator(task).estimate()
    print("Worst-case execution time:")
    print(f"  GameTime prediction      : {estimate.predicted_cycles:.1f} cycles")
    print(f"  measured on its test case: {estimate.measured_cycles} cycles")
    print(f"  test case                : {estimate.test_case}")
    print(f"  exhaustive ground truth  : {truth.estimated_wcet} cycles "
          f"({truth.measurements} measurements)")
    budget = analysis.timing_oracle.query_count
    random_baseline = RandomTestingEstimator(task, seed=1).estimate(budget=budget)
    print(f"  random testing (same budget of {budget} runs): "
          f"{random_baseline.estimated_wcet} cycles")
    print()

    bound = args.bound if args.bound is not None else estimate.measured_cycles - 1
    answer = analysis.answer_timing_query(bound)
    verdict = "YES (always within bound)" if answer.within_bound else "NO"
    print(f"<TA> query: is execution time always <= {bound} cycles?  -> {verdict}")
    if not answer.within_bound:
        print(f"  witness test case: {answer.witness.test_case} "
              f"({answer.witness.measured_cycles} cycles)")


if __name__ == "__main__":
    main()
