#!/usr/bin/env python3
"""GameTime-style timing analysis of modular exponentiation (paper Fig. 6).

Reproduces the paper's Section 3.3 experiment end to end:

* the task is square-and-multiply modular exponentiation with an 8-bit
  exponent (256 program paths, 9 basis paths);
* the platform is the package's cycle-level simulator (in-order pipeline,
  split caches) standing in for the SimIt-ARM / StrongARM-1100 testbed;
* GameTime measures only the 9 basis paths, learns the (w, π) model, then
  predicts the execution time of every one of the 256 paths;
* the script prints the predicted-vs-measured histogram (the textual form
  of Figure 6), the WCET prediction and its witness test case, and the
  answer to a ⟨TA⟩ query, and compares against a random-testing baseline
  with the same measurement budget.

Run with::

    python examples/timing_analysis.py            # 8-bit exponent (paper)
    python examples/timing_analysis.py --bits 6   # smaller, faster variant
"""

from __future__ import annotations

import argparse
from dataclasses import replace

from repro.api import SciductionEngine, TimingAnalysisProblem
from repro.gametime import ExhaustiveEstimator, RandomTestingEstimator


def render_histogram(rows, bar_width: int = 40) -> None:
    """Print the predicted/measured histogram as side-by-side bars."""
    peak = max((max(predicted, measured) for _, predicted, measured in rows), default=1)
    print(f"  {'cycles':>8s}  {'predicted':<{bar_width}s}  measured")
    for start, predicted, measured in rows:
        if predicted == 0 and measured == 0:
            continue
        predicted_bar = "#" * round(bar_width * predicted / peak)
        measured_bar = "#" * round(bar_width * measured / peak)
        print(f"  {start:>8d}  {predicted_bar:<{bar_width}s}  {measured_bar}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bits", type=int, default=8,
                        help="number of exponent bits (8 reproduces the paper)")
    parser.add_argument("--trials", type=int, default=None,
                        help="measurement budget (default: 3x basis paths)")
    parser.add_argument("--bound", type=int, default=None,
                        help="cycle bound for the <TA> query (default: WCET-1)")
    args = parser.parse_args()

    # The declarative spec is the single source of truth for the problem;
    # `build()` hands back the rich GameTime object for in-process
    # exploration (distribution plots, baselines), while the same spec can
    # be submitted to a SciductionEngine for the <TA> decision problem.
    problem = TimingAnalysisProblem(
        program="modular_exponentiation",
        program_args={"exponent_bits": args.bits, "word_width": 16},
        trials=args.trials,
        seed=0,
    )
    analysis = problem.build()
    analysis.prepare()
    task = analysis.program

    print(f"task                     : {task.name} ({args.bits}-bit exponent)")
    print(f"program paths            : {analysis.cfg.count_paths()}")
    print(f"feasible basis paths     : {analysis.num_basis_paths}")
    print(f"end-to-end measurements  : {analysis.timing_oracle.query_count}")
    print()

    print("Predicted vs measured execution-time distribution (Figure 6):")
    report = analysis.predict_distribution(measure=True)
    render_histogram(report.histogram(bin_width=10))
    print(f"  paths predicted          : {len(report.predictions)}")
    print(f"  max |pred - meas| cycles : {report.max_absolute_error:.2f}")
    print(f"  mean |pred - meas| cycles: {report.mean_absolute_error:.2f}")
    print()

    estimate = analysis.estimate_wcet()
    truth = ExhaustiveEstimator(task).estimate()
    print("Worst-case execution time:")
    print(f"  GameTime prediction      : {estimate.predicted_cycles:.1f} cycles")
    print(f"  measured on its test case: {estimate.measured_cycles} cycles")
    print(f"  test case                : {estimate.test_case}")
    print(f"  exhaustive ground truth  : {truth.estimated_wcet} cycles "
          f"({truth.measurements} measurements)")
    budget = analysis.timing_oracle.query_count
    random_baseline = RandomTestingEstimator(task, seed=1).estimate(budget=budget)
    print(f"  random testing (same budget of {budget} runs): "
          f"{random_baseline.estimated_wcet} cycles")
    print()

    # The <TA> decision problem goes through the unified engine: the same
    # spec with a bound yields a verdict plus a soundness certificate.
    bound = args.bound if args.bound is not None else estimate.measured_cycles - 1
    engine = SciductionEngine()
    ta_result = engine.run(replace(problem, bound=bound))
    verdict = "YES (always within bound)" if ta_result.verdict else "NO"
    print(f"<TA> query: is execution time always <= {bound} cycles?  -> {verdict}")
    if not ta_result.verdict:
        print(f"  witness test case: {ta_result.details['wcet_test_case']} "
              f"({ta_result.details['wcet_measured']} cycles)")
    print(f"  certificate: {ta_result.certificate.statement()}")


if __name__ == "__main__":
    main()
