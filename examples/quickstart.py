#!/usr/bin/env python3
"""Quickstart: the sciduction framework in five minutes.

Runs one tiny instance of each of the paper's three applications through
the public API and prints, for each, the ⟨H, I, D⟩ decomposition (the
paper's Table 1) together with the headline result:

1. GameTime timing analysis of a small modular-exponentiation task,
2. oracle-guided synthesis of a two-component bit-vector program,
3. switching-logic synthesis for the automatic transmission (coarse grid).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.cfg import modular_exponentiation
from repro.gametime import GameTime
from repro.hybrid import make_transmission_synthesizer
from repro.ogis import (
    OgisSynthesizer,
    ProgramIOOracle,
    component_add,
    component_shift_left,
)


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def describe(procedure) -> None:
    row = procedure.describe()
    print(f"  structure hypothesis (H): {row['H']}")
    print(f"  inductive engine    (I): {row['I']}")
    print(f"  deductive engine    (D): {row['D']}")


def demo_gametime() -> None:
    banner("1. GameTime: timing analysis of software (paper Section 3)")
    task = modular_exponentiation(exponent_bits=4, word_width=16)
    analysis = GameTime(task, trials=15, seed=0)
    describe(analysis)
    estimate = analysis.estimate_wcet()
    print(f"  basis paths measured     : {analysis.num_basis_paths}")
    print(f"  total program paths      : {analysis.cfg.count_paths()}")
    print(f"  predicted WCET (cycles)  : {estimate.predicted_cycles:.1f}")
    print(f"  measured  WCET (cycles)  : {estimate.measured_cycles}")
    print(f"  worst-case test case     : {estimate.test_case}")
    answer = analysis.answer_timing_query(bound=estimate.measured_cycles + 50)
    print(f"  'always under {answer.bound} cycles?'  -> {'YES' if answer.within_bound else 'NO'}")


def demo_ogis() -> None:
    banner("2. Oracle-guided program synthesis (paper Section 4)")
    # The 'obfuscated program' is the I/O oracle: here, multiply by five.
    oracle = ProgramIOOracle(lambda v: ((5 * v[0]) % 256,), num_inputs=1,
                             num_outputs=1, width=8)
    synthesizer = OgisSynthesizer(
        [component_shift_left(2), component_add()], oracle, width=8, seed=0
    )
    describe(synthesizer)
    program = synthesizer.synthesize()
    print(f"  oracle queries           : {synthesizer.trace.oracle_queries}")
    print(f"  synthesis iterations     : {synthesizer.trace.iterations}")
    print("  synthesized program:")
    for line in program.pretty("multiply5").splitlines():
        print(f"    {line}")
    equivalent = program.equivalent_to(lambda v: ((5 * v[0]) % 256,), width=8)
    print(f"  equivalent to the oracle : {equivalent}")


def demo_switching_logic() -> None:
    banner("3. Switching-logic synthesis for hybrid systems (paper Section 5)")
    setup = make_transmission_synthesizer(
        dwell_time=0.0, omega_step=0.1, integration_step=0.02, horizon=60.0
    )
    describe(setup.synthesizer)
    report = setup.synthesizer.synthesize()
    print(f"  fixpoint iterations      : {report.iterations}")
    print(f"  simulation queries       : {report.labeling_queries}")
    print("  synthesized guards (omega intervals):")
    for name in sorted(report.switching_logic):
        interval = report.switching_logic[name].interval("omega")
        print(f"    {name:5s}: {interval.low:6.2f} <= omega <= {interval.high:6.2f}")


def main() -> None:
    demo_gametime()
    demo_ogis()
    demo_switching_logic()
    print()
    print("Done: three sciduction instances (H, I, D) ran end to end.")


if __name__ == "__main__":
    main()
