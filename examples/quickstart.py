#!/usr/bin/env python3
"""Quickstart: the sciduction engine in five minutes.

One :class:`repro.api.SciductionEngine` is the front door to all three of
the paper's applications.  Problems are *declarative specs* — plain,
JSON-serializable descriptions of what to solve — submitted to a single
batch that runs over the engine's pooled incremental SMT sessions:

1. GameTime timing analysis of a small modular-exponentiation task,
2. oracle-guided deobfuscation of the multiply-by-45 state machine,
3. switching-logic synthesis for the automatic transmission (coarse grid),
4. the same front door fanned out over worker processes
   (``EngineConfig(workers=2)``) with shape-aware job routing.

For each job the engine reports the ⟨H, I, D⟩ decomposition (the paper's
Table 1), the headline result, and the conditional-soundness certificate.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import json

from repro.api import (
    DeobfuscationProblem,
    EngineConfig,
    SciductionEngine,
    SwitchingLogicProblem,
    TimingAnalysisProblem,
    result_to_dict,
)


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def describe(result) -> None:
    row = result.details["hid"]
    print(f"  structure hypothesis (H): {row['H']}")
    print(f"  inductive engine    (I): {row['I']}")
    print(f"  deductive engine    (D): {row['D']}")


def main() -> None:
    engine = SciductionEngine(EngineConfig())

    problems = [
        TimingAnalysisProblem(
            program="modular_exponentiation",
            program_args={"exponent_bits": 4, "word_width": 16},
            trials=15,
            seed=0,
        ),
        DeobfuscationProblem(task="multiply45", width=8, seed=1),
        SwitchingLogicProblem(
            system="transmission",
            omega_step=0.1,
            integration_step=0.02,
            horizon=60.0,
        ),
    ]

    print("Problem specs are declarative and JSON-serializable, e.g.:")
    print(f"  {json.dumps(problems[1].to_dict())}")

    timing, deobfuscation, switching = engine.run_batch(problems)

    banner("1. GameTime: timing analysis of software (paper Section 3)")
    describe(timing)
    details = timing.details
    print(f"  basis paths measured     : {details['num_basis_paths']}")
    print(f"  total program paths      : {details['num_paths']}")
    print(f"  predicted WCET (cycles)  : {details['wcet_predicted']:.1f}")
    print(f"  measured  WCET (cycles)  : {details['wcet_measured']}")
    print(f"  worst-case test case     : {details['wcet_test_case']}")

    banner("2. Oracle-guided deobfuscation (paper Section 4)")
    describe(deobfuscation)
    print(f"  oracle queries           : {deobfuscation.oracle_queries}")
    print(f"  synthesis iterations     : {deobfuscation.iterations}")
    print("  synthesized program:")
    for line in deobfuscation.artifact.pretty("multiply45").splitlines():
        print(f"    {line}")
    print(f"  equivalent to the oracle : {deobfuscation.verdict}")

    banner("3. Switching-logic synthesis for hybrid systems (paper Section 5)")
    describe(switching)
    print(f"  fixpoint iterations      : {switching.iterations}")
    print(f"  simulation queries       : {switching.oracle_queries}")
    print("  synthesized guards (omega intervals):")
    for name in sorted(switching.artifact):
        interval = switching.artifact[name].interval("omega")
        print(f"    {name:5s}: {interval.low:6.2f} <= omega <= {interval.high:6.2f}")

    banner("Soundness certificates and the engine view")
    for result in (timing, deobfuscation, switching):
        print(f"  {result.certificate.statement()}")
    engine_view = deobfuscation.details["engine"]
    print(f"  per-job SMT work (deobfuscation): "
          f"{engine_view['smt_job_statistics']}")
    print("  every result serializes to JSON: "
          f"{len(json.dumps(result_to_dict(deobfuscation)))} bytes for job 2")

    banner("Parallel batches: EngineConfig(workers=2)")
    # workers=N fans run_batch out over N worker processes, one warm
    # SolverPool per worker.  Jobs are routed to workers by problem
    # *shape* (kind + bit width), so every shape's warm-session history —
    # and therefore every verdict, certificate, and statistic — is
    # identical to the sequential run.  Results cross the process
    # boundary in their JSON wire form: details and certificates arrive
    # intact, in submission order (artifact objects stay in the worker;
    # use details like "program" below, or re-run sequentially, when the
    # in-process object itself is needed).
    parallel_engine = SciductionEngine(EngineConfig(workers=2))
    stream = [
        DeobfuscationProblem(task="multiply45", width=4, seed=0),
        DeobfuscationProblem(task="multiply45", width=5, seed=0),
        DeobfuscationProblem(task="multiply45", width=4, seed=1),
        DeobfuscationProblem(task="multiply45", width=4, seed=0),
    ]
    parallel_results = parallel_engine.run_batch(stream)
    for job, result in zip(parallel_engine.jobs, parallel_results):
        print(f"  job {job.job_id} ({job.problem.shape_key()}): "
              f"state={job.state.value}, equivalent={result.verdict}")
    print("  first synthesized program (from the wire details):")
    for line in parallel_results[0].details["program"].splitlines():
        print(f"    {line}")

    print()
    print("Done: three sciduction instances (H, I, D) ran end to end.")


if __name__ == "__main__":
    main()
