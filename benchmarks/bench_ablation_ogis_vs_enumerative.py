"""Experiment E12 — ablation: SMT-based OGIS vs. enumerative synthesis.

Section 4 argues for formulating candidate generation and distinguishing-
input search as SMT queries.  The ablation compares the OGIS loop against
a brute-force enumerative baseline on a family of shift/add synthesis
tasks of growing library size, reporting the number of candidate programs
the enumerative baseline has to execute versus the number of SMT queries
OGIS issues (the enumeration count grows factorially with the library).
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.ogis import (
    EnumerativeSynthesizer,
    OgisSynthesizer,
    ProgramIOOracle,
    component_add,
    component_shift_left,
)

WIDTH = 4

#: (name, library factory, oracle function over WIDTH-bit values)
TASKS = (
    (
        "5y (2 components)",
        lambda: [component_shift_left(2), component_add()],
        lambda v: ((5 * v[0]) % (1 << WIDTH),),
    ),
    (
        "6y (3 components)",
        lambda: [component_shift_left(1), component_shift_left(2), component_add()],
        lambda v: ((6 * v[0]) % (1 << WIDTH),),
    ),
)


def _compare(task_name, library_factory, oracle_function):
    oracle_ogis = ProgramIOOracle(oracle_function, 1, 1, WIDTH)
    ogis = OgisSynthesizer(library_factory(), oracle_ogis, width=WIDTH, seed=1)
    program = ogis.synthesize()
    smt_queries = (
        ogis.encoder.statistics.synthesis_queries
        + ogis.encoder.statistics.distinguishing_queries
    )

    oracle_enum = ProgramIOOracle(oracle_function, 1, 1, WIDTH)
    enumerative = EnumerativeSynthesizer(
        library_factory(), oracle_enum, width=WIDTH, seed=1
    )
    baseline = enumerative.synthesize()
    return {
        "task": task_name,
        "ogis_program_ok": program.equivalent_to(oracle_function, width=WIDTH),
        "ogis_smt_queries": smt_queries,
        "ogis_oracle_queries": ogis.trace.oracle_queries,
        "enum_candidates": baseline.candidates_tested,
        "enum_oracle_queries": baseline.oracle_queries,
        "enum_program_ok": (
            baseline.program is not None
            and baseline.program.equivalent_to(oracle_function, width=WIDTH)
        ),
    }


def _run_all():
    return [_compare(*task) for task in TASKS]


def test_ogis_vs_enumerative(benchmark):
    rows = run_once(benchmark, _run_all)
    print_table(
        "Ablation — oracle-guided SMT synthesis vs. enumerative search",
        [
            "task",
            "OGIS SMT queries",
            "OGIS oracle queries",
            "enumerative candidates executed",
            "enumerative oracle queries",
        ],
        [
            [
                row["task"],
                str(row["ogis_smt_queries"]),
                str(row["ogis_oracle_queries"]),
                str(row["enum_candidates"]),
                str(row["enum_oracle_queries"]),
            ]
            for row in rows
        ],
    )
    for row in rows:
        assert row["ogis_program_ok"], row["task"]
        assert row["enum_program_ok"], row["task"]
        # The enumerative baseline executes orders of magnitude more
        # candidates than the number of SMT queries OGIS issues.
        assert row["enum_candidates"] > 10 * row["ogis_smt_queries"], row["task"]
    # Enumeration cost grows steeply with the library size.
    assert rows[1]["enum_candidates"] > 2 * rows[0]["enum_candidates"]
    benchmark.extra_info["rows"] = rows
