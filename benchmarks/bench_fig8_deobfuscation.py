"""Experiments E3/E4 — paper Figure 8: deobfuscation of P1 and P2.

Each obfuscated program is treated as an I/O oracle and re-synthesized
from its component library; the benchmark records the wall-clock synthesis
time (the paper reports "less than half a second" with a native SMT
solver; the shape to reproduce is "well under a minute, a handful of
oracle queries") and verifies that the synthesized program is semantically
equivalent to the obfuscated original.
"""

from __future__ import annotations

import time

from conftest import print_table, run_once

from repro.ogis import (
    OgisSynthesizer,
    ProgramIOOracle,
    interchange_library,
    interchange_obfuscated,
    interchange_reference,
    multiply45_library,
    multiply45_obfuscated,
    multiply45_reference,
)

WIDTH = 8


def _deobfuscate(library, obfuscated, num_inputs, num_outputs):
    oracle = ProgramIOOracle(
        lambda values: obfuscated(values, WIDTH), num_inputs, num_outputs, WIDTH
    )
    synthesizer = OgisSynthesizer(library, oracle, width=WIDTH, seed=1)
    start = time.perf_counter()
    program = synthesizer.synthesize()
    elapsed = time.perf_counter() - start
    return program, synthesizer, elapsed


def test_fig8_p1_interchange(benchmark):
    program, synthesizer, elapsed = run_once(
        benchmark, _deobfuscate, interchange_library(), interchange_obfuscated, 2, 2
    )
    print_table(
        "Figure 8 (P1) — interchange deobfuscation",
        ["quantity", "value"],
        [
            ["synthesis time (s)", f"{elapsed:.2f}"],
            ["oracle queries", str(synthesizer.trace.oracle_queries)],
            ["candidate iterations", str(synthesizer.trace.iterations)],
            ["program length (components)", str(program.length)],
        ],
    )
    print(program.pretty("interchange"))
    assert program.equivalent_to(lambda v: interchange_reference(v, WIDTH), width=WIDTH)
    assert program.length == 3  # the three-XOR swap of the paper
    assert elapsed < 120.0
    benchmark.extra_info.update(
        {
            "synthesis_seconds": elapsed,
            "oracle_queries": synthesizer.trace.oracle_queries,
            "iterations": synthesizer.trace.iterations,
        }
    )


def test_fig8_p2_multiply45(benchmark):
    program, synthesizer, elapsed = run_once(
        benchmark, _deobfuscate, multiply45_library(), multiply45_obfuscated, 1, 1
    )
    print_table(
        "Figure 8 (P2) — multiply-by-45 deobfuscation",
        ["quantity", "value"],
        [
            ["synthesis time (s)", f"{elapsed:.2f}"],
            ["oracle queries", str(synthesizer.trace.oracle_queries)],
            ["candidate iterations", str(synthesizer.trace.iterations)],
            ["program length (components)", str(program.length)],
        ],
    )
    print(program.pretty("multiply45"))
    assert program.equivalent_to(lambda v: multiply45_reference(v, WIDTH), width=WIDTH)
    assert program.length == 4  # two shifts and two adds, as in the paper
    assert elapsed < 120.0
    benchmark.extra_info.update(
        {
            "synthesis_seconds": elapsed,
            "oracle_queries": synthesizer.trace.oracle_queries,
            "iterations": synthesizer.trace.iterations,
        }
    )
