"""Experiment E8 — paper Table 1: the three demonstrated applications.

Runs one representative instance of each application end to end and
prints its ⟨H, I, D⟩ decomposition next to the headline result — the
programmatic regeneration of the paper's Table 1.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.cfg import modular_exponentiation
from repro.gametime import GameTime
from repro.hybrid import make_transmission_synthesizer
from repro.ogis import (
    OgisSynthesizer,
    ProgramIOOracle,
    interchange_library,
    interchange_obfuscated,
    interchange_reference,
)


def _run_all_three():
    # Timing analysis (Section 3) — modest size for a quick end-to-end run.
    gametime = GameTime(modular_exponentiation(5, 16), trials=None, seed=0)
    gametime_result = gametime.run(bound=10_000)

    # Program synthesis (Section 4).
    oracle = ProgramIOOracle(lambda v: interchange_obfuscated(v, 8), 2, 2, 8)
    ogis = OgisSynthesizer(interchange_library(), oracle, width=8, seed=1)
    ogis_result = ogis.run()

    # Switching logic synthesis (Section 5).
    setup = make_transmission_synthesizer(
        dwell_time=0.0, omega_step=0.05, integration_step=0.02, horizon=60.0
    )
    switching_result = setup.synthesizer.run()

    return (gametime, gametime_result), (ogis, ogis_result), (setup.synthesizer, switching_result)


def test_table1(benchmark):
    gametime_pair, ogis_pair, switching_pair = run_once(benchmark, _run_all_three)

    rows = []
    headlines = {}
    for (procedure, result), headline_key in (
        (gametime_pair, "wcet_measured"),
        (ogis_pair, "iterations"),
        (switching_pair, "guards"),
    ):
        description = procedure.describe()
        rows.append(
            [
                description["procedure"],
                description["H"],
                description["I"],
                description["D"],
            ]
        )
        headlines[description["procedure"]] = {
            "success": result.success,
            "oracle_queries": result.oracle_queries,
            "soundness": result.certificate.statement() if result.certificate else "",
        }
    print_table(
        "Table 1 — three demonstrated applications of sciduction",
        ["application", "H (structure hypothesis)", "I (inductive engine)", "D (deductive engine)"],
        rows,
    )
    print_table(
        "Table 1 — headline results and conditional-soundness statements",
        ["application", "succeeded", "oracle queries", "valid(H) => sound(P)"],
        [
            [name, str(info["success"]), str(info["oracle_queries"]), info["soundness"]]
            for name, info in headlines.items()
        ],
    )

    gametime, gametime_result = gametime_pair
    ogis, ogis_result = ogis_pair
    synthesizer, switching_result = switching_pair
    assert gametime_result.success and gametime_result.verdict is True
    assert ogis_result.success
    assert ogis_result.artifact.equivalent_to(
        lambda v: interchange_reference(v, 8), width=8
    )
    assert switching_result.success
    for result in (gametime_result, ogis_result, switching_result):
        assert result.certificate is not None
        assert "==>" in result.certificate.statement()
    benchmark.extra_info["applications"] = [row[0] for row in rows]
