"""Experiment E9 — the probabilistic-soundness claim of Section 3.3.

The paper states that, under the (w, π) structure hypothesis, GameTime
answers the ⟨TA⟩ question correctly with probability at least 1 − δ when
the number of trials grows (polynomially in ln(1/δ) and μ_max).  This
ablation sweeps the measurement budget on a noisy platform and reports the
empirical error rate of the YES/NO answer across repeated runs: the error
rate must be non-increasing (up to small-sample noise) and reach zero at
generous budgets.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.cfg import conditional_cascade
from repro.gametime import ExhaustiveEstimator, GameTime
from repro.platform import PerturbationModel

PERTURBATION_MEAN = 12.0
TRIAL_BUDGETS = (8, 24, 72)
REPEATS = 6


def _soundness_sweep():
    task = conditional_cascade(depth=3, word_width=16)
    truth = ExhaustiveEstimator(task).estimate().estimated_wcet
    # The <TA> bound sits just below the true WCET, so the correct answer is
    # NO and answering it requires actually finding the worst-case path.
    bound = truth - 1
    error_rates = {}
    for budget in TRIAL_BUDGETS:
        wrong = 0
        for repeat in range(REPEATS):
            analysis = GameTime(
                task,
                perturbation=PerturbationModel(mean=PERTURBATION_MEAN, seed=100 + repeat),
                trials=budget,
                mu_max=PERTURBATION_MEAN,
                seed=repeat,
            )
            answer = analysis.answer_timing_query(bound)
            # Correct answer is "NO" (not within bound).
            if answer.within_bound:
                wrong += 1
        error_rates[budget] = wrong / REPEATS
    return truth, bound, error_rates


def test_ta_probabilistic_soundness(benchmark):
    truth, bound, error_rates = run_once(benchmark, _soundness_sweep)
    print_table(
        "Section 3.3 — empirical error rate of the <TA> answer vs. trials "
        f"(noise mean {PERTURBATION_MEAN} cycles, bound = WCET - 1 = {bound})",
        ["measurement budget", "empirical error rate"],
        [[str(budget), f"{rate:.2f}"] for budget, rate in error_rates.items()],
    )
    budgets = sorted(error_rates)
    # More measurements never hurt (monotone up to one repeat of slack), and
    # a generous budget answers correctly every time.
    assert error_rates[budgets[-1]] == 0.0
    assert error_rates[budgets[-1]] <= error_rates[budgets[0]] + 1.0 / REPEATS
    benchmark.extra_info["error_rates"] = {str(k): v for k, v in error_rates.items()}
