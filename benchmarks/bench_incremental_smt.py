"""Benchmark — incremental vs. one-shot SMT solving across the stack.

The OGIS synthesis loop (paper Section 4) and the GameTime basis-path
front end (paper Section 3) both issue long sequences of closely related
deductive queries.  This benchmark measures what the incremental
:class:`~repro.smt.solver.SmtSolver` — persistent CDCL solver +
bit-blaster, activation-literal push/pop scopes, assumption-based
``check(*extra)`` — saves over the pre-incremental re-encode-every-check
design, which stays available through the ``reencode_each_check=True``
escape hatch:

* the Figure 8 deobfuscation workloads: one persistent solver serves all
  candidate-program and distinguishing-input queries of an OGIS run.  The
  baseline here is :class:`OneShotEncoder`, a faithful reproduction of the
  pre-incremental per-query construction (fresh solver, full re-blast,
  separate synthesis/distinguishing encodings), so the comparison is not
  flattered by architecture changes the old code never had;
* the Figure 6 modexp front end: per-path feasibility queries share one
  solver, so structurally shared path prefixes are bit-blasted once.  The
  baseline is the builder's ``reencode_each_check=True`` escape hatch,
  which matches the old fresh-solver-per-path behaviour exactly.

Both modes must issue identical verdicts; across the deobfuscation runs
the incremental mode must generate at least 2x fewer SAT variables and
clauses.  The stale-model regression (model() after an UNSAT answer) is
also pinned here because the incremental design depends on it.
"""

from __future__ import annotations

import time

import pytest

from conftest import print_table, run_once

from repro.cfg import build_cfg, enumerate_paths, modular_exponentiation
from repro.cfg.lang import Program
from repro.cfg.programs import bounded_linear_search
from repro.cfg.ssa import PathConstraintBuilder
from repro.core import SolverError, UnrealizableError
from repro.ogis import (
    OgisSynthesizer,
    ProgramIOOracle,
    SynthesisEncoder,
    interchange_library,
    interchange_obfuscated,
    interchange_reference,
    multiply45_library,
    multiply45_obfuscated,
    multiply45_reference,
)
from repro.smt import CdclSolver, SatResult, SmtResult, SmtSolver, SmtStatistics, make_literal
from repro.smt.terms import bool_or, bv_var


class OneShotEncoder(SynthesisEncoder):
    """Faithful pre-incremental baseline for the OGIS deductive engine.

    Reproduces the original per-query construction: every ``synthesize``
    and ``distinguishing_input`` call builds a *fresh* solver and re-blasts
    its whole encoding, and the two query kinds use separate encodings
    (synthesis queries never carry the symbolic-run dataflow skeleton that
    the shared incremental solver asserts up front).  This keeps the
    benchmark's baseline honest: it measures exactly the work the old
    architecture did, not the new architecture minus solver reuse.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._oneshot_statistics = SmtStatistics()

    def smt_statistics(self):
        return self._oneshot_statistics

    def _absorb(self, solver):
        self._oneshot_statistics = self._oneshot_statistics.merged_with(
            solver.statistics
        )

    def synthesize(self, examples):
        self.statistics.synthesis_queries += 1
        solver = SmtSolver()
        locations = self._locations("s")
        solver.add(*self.well_formedness(locations))
        for number, example in enumerate(examples):
            solver.add(*self.example_constraints(locations, example, tag=f"s{number}"))
        verdict = solver.check()
        self._absorb(solver)
        if verdict is not SmtResult.SAT:
            self.statistics.unsat_results += 1
            raise UnrealizableError(
                "no loop-free composition of the library is consistent with the examples"
            )
        self.statistics.sat_results += 1
        return self._program_from_model(solver, locations)

    def distinguishing_input(self, examples, candidate):
        self.statistics.distinguishing_queries += 1
        solver = SmtSolver()
        locations = self._locations("d")
        solver.add(*self.well_formedness(locations))
        for number, example in enumerate(examples):
            solver.add(*self.example_constraints(locations, example, tag=f"d{number}"))
        symbolic_inputs = [
            bv_var(f"distinguishing_in_{index}", self.width)
            for index in range(self.num_inputs)
        ]
        alternative_outputs = [
            bv_var(f"alt_out_{index}", self.width) for index in range(self.num_outputs)
        ]
        solver.add(
            *self._dataflow(locations, symbolic_inputs, alternative_outputs, tag="dx")
        )
        candidate_outputs = self._symbolic_execution(candidate, symbolic_inputs)
        solver.add(
            bool_or(
                *(
                    alternative.ne(candidate_output)
                    for alternative, candidate_output in zip(
                        alternative_outputs, candidate_outputs
                    )
                )
            )
        )
        verdict = solver.check()
        self._absorb(solver)
        if verdict is not SmtResult.SAT:
            self.statistics.unsat_results += 1
            return None
        self.statistics.sat_results += 1
        return tuple(
            self._model_int(solver, variable) for variable in symbolic_inputs
        )


#: (task name, library factory, obfuscated fn, reference fn, n_in, n_out, width, seed)
#: The narrower multiply45 widths take several OGIS iterations to converge
#: (one random example pins the program down less), which is the regime the
#: incremental solver targets — long sequences of closely related queries.
DEOBFUSCATION_TASKS = (
    ("interchange w8", interchange_library, interchange_obfuscated, interchange_reference, 2, 2, 8, 1),
    ("multiply45 w8", multiply45_library, multiply45_obfuscated, multiply45_reference, 1, 1, 8, 1),
    ("multiply45 w5", multiply45_library, multiply45_obfuscated, multiply45_reference, 1, 1, 5, 0),
    ("multiply45 w4", multiply45_library, multiply45_obfuscated, multiply45_reference, 1, 1, 4, 0),
    ("multiply45 w4b", multiply45_library, multiply45_obfuscated, multiply45_reference, 1, 1, 4, 1),
)


def _run_deobfuscation(oneshot: bool):
    rows = []
    for name, library, obfuscated, reference, n_in, n_out, width, seed in DEOBFUSCATION_TASKS:
        oracle = ProgramIOOracle(
            lambda values, fn=obfuscated, w=width: fn(values, w), n_in, n_out, width
        )
        synthesizer = OgisSynthesizer(library(), oracle, width=width, seed=seed)
        if oneshot:
            synthesizer.encoder = OneShotEncoder(
                synthesizer.library,
                num_inputs=oracle.num_inputs,
                num_outputs=oracle.num_outputs,
                width=synthesizer.width,
            )
        start = time.perf_counter()
        program = synthesizer.synthesize()
        elapsed = time.perf_counter() - start
        statistics = synthesizer.encoder.smt_statistics()
        rows.append(
            {
                "task": name,
                "ok": program.equivalent_to(
                    lambda values, fn=reference, w=width: fn(values, w), width=width
                ),
                "iterations": synthesizer.trace.iterations,
                "variables": statistics.variables_generated,
                "clauses": statistics.clauses_generated,
                "seconds": elapsed,
            }
        )
    return rows


def _run_feasibility_sweep(program: Program, reencode: bool):
    cfg = build_cfg(program)
    builder = PathConstraintBuilder(cfg, reencode_each_check=reencode)
    start = time.perf_counter()
    verdicts = [builder.is_feasible(path) for path in enumerate_paths(cfg)]
    elapsed = time.perf_counter() - start
    statistics = builder.smt_statistics
    return {
        "verdicts": verdicts,
        "feasible": sum(verdicts),
        "variables": statistics.variables_generated,
        "clauses": statistics.clauses_generated,
        "seconds": elapsed,
    }


def _run_all():
    return {
        "ogis": {
            "incremental": _run_deobfuscation(oneshot=False),
            "reencode": _run_deobfuscation(oneshot=True),
        },
        "sweeps": {
            name: {
                "incremental": _run_feasibility_sweep(program, reencode=False),
                "reencode": _run_feasibility_sweep(program, reencode=True),
            }
            for name, program in (
                ("modexp(8)", modular_exponentiation(8, 16)),
                ("linear_search(4)", bounded_linear_search(4, 16)),
            )
        },
    }


def test_incremental_smt(benchmark):
    results = run_once(benchmark, _run_all)

    table_rows = []
    for incremental, reencode in zip(
        results["ogis"]["incremental"], results["ogis"]["reencode"]
    ):
        table_rows.append(
            [
                incremental["task"],
                str(incremental["iterations"]),
                f"{incremental['variables']} / {reencode['variables']}",
                f"{incremental['clauses']} / {reencode['clauses']}",
                f"{incremental['seconds']:.2f} / {reencode['seconds']:.2f}",
            ]
        )
    print_table(
        "OGIS deobfuscation — incremental / one-shot baseline",
        ["task", "iterations", "SAT vars", "SAT clauses", "seconds"],
        table_rows,
    )
    sweep_rows = []
    for name, modes in results["sweeps"].items():
        incremental, reencode = modes["incremental"], modes["reencode"]
        sweep_rows.append(
            [
                name,
                f"{incremental['feasible']}/{len(incremental['verdicts'])}",
                f"{incremental['variables']} / {reencode['variables']}",
                f"{incremental['clauses']} / {reencode['clauses']}",
                f"{incremental['seconds']:.2f} / {reencode['seconds']:.2f}",
            ]
        )
    print_table(
        "Path-feasibility sweeps — incremental / re-encode-each-check",
        ["program", "feasible paths", "SAT vars", "SAT clauses", "seconds"],
        sweep_rows,
    )

    # Same verdicts in both modes.
    for incremental, reencode in zip(
        results["ogis"]["incremental"], results["ogis"]["reencode"]
    ):
        assert incremental["ok"] and reencode["ok"], incremental["task"]
    for name, modes in results["sweeps"].items():
        assert modes["incremental"]["verdicts"] == modes["reencode"]["verdicts"], name

    # >= 2x fewer SAT variables and clauses across the OGIS runs.
    incremental_variables = sum(r["variables"] for r in results["ogis"]["incremental"])
    reencode_variables = sum(r["variables"] for r in results["ogis"]["reencode"])
    incremental_clauses = sum(r["clauses"] for r in results["ogis"]["incremental"])
    reencode_clauses = sum(r["clauses"] for r in results["ogis"]["reencode"])
    assert reencode_variables >= 2 * incremental_variables
    assert reencode_clauses >= 2 * incremental_clauses
    # The sweeps share one solver per CFG too.  Clause counts can tie on
    # heavily sliced encodings (and the persistent solver's one-time
    # true-constant clause can tip an exact tie by one); the variable
    # reduction is the structural win.
    for modes in results["sweeps"].values():
        assert modes["incremental"]["variables"] < modes["reencode"]["variables"]
        assert modes["incremental"]["clauses"] <= modes["reencode"]["clauses"] + 1

    benchmark.extra_info.update(
        {
            "ogis_variable_reduction": reencode_variables / max(incremental_variables, 1),
            "ogis_clause_reduction": reencode_clauses / max(incremental_clauses, 1),
        }
    )


def test_model_after_unsat_raises():
    # Regression pinned alongside the benchmark: incremental callers must
    # never read a model left over from an earlier SAT answer.
    solver = CdclSolver()
    x = solver.new_variable()
    solver.add_clause([make_literal(x)])
    assert solver.solve() is SatResult.SAT
    assert solver.model()[x] is True
    solver.add_clause([make_literal(x, True)])
    assert solver.solve() is SatResult.UNSAT
    with pytest.raises(SolverError):
        solver.model()
