"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index) and is run once per invocation —
``benchmark.pedantic(..., rounds=1, iterations=1)`` — because the
experiments themselves are end-to-end reproductions, not micro-benchmarks.
Each benchmark prints the regenerated rows/series (run pytest with ``-s``
to see them) and stores headline numbers in ``benchmark.extra_info`` so
they appear in the saved benchmark JSON.
"""

from __future__ import annotations


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under the benchmark fixture."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_table(title: str, header: list[str], rows: list[list[str]]) -> None:
    """Print a small fixed-width table (the textual form of a paper table)."""
    print()
    print(title)
    widths = [
        max(len(str(header[column])), *(len(str(row[column])) for row in rows))
        for column in range(len(header))
    ]
    line = "  ".join(str(name).ljust(width) for name, width in zip(header, widths))
    print("  " + line)
    print("  " + "-" * len(line))
    for row in rows:
        print("  " + "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)))
