#!/usr/bin/env python3
"""Perf-regression gate over ``BENCH_perf.json``.

Compares a freshly generated perf report (the *candidate*) against the
committed baseline and fails CI when anything the suite guards has
regressed:

* **hard checks** — every boolean in the baseline's ``checks`` block
  that was true must still be true (verdict parity, byte-identical
  parallel results, the clause-reduction floor, steal counter, the
  cross-worker memo hit, ...);
* **counts** — SAT clause/variable totals per workload and config, the
  batch stream's pooled/fresh encoding work, and workload verdict lists
  are compared **exactly**: the whole stack is deterministic, so any
  drift is a real encoding change.  Improvements fail too, on purpose —
  they mean the committed baseline is stale; regenerate it with
  ``python benchmarks/bench_perf_suite.py --output BENCH_perf.json`` and
  commit it with the change that moved the numbers;
* **wall ratios** — the pooled-vs-fresh wall-time ratio may drift with
  machine noise, so it only fails when it is worse than baseline by more
  than ``WALL_RATIO_TOLERANCE`` (15%, one-sided: getting faster never
  fails).

The before/after table is printed to stdout, written to ``--summary``
as Markdown, and appended to ``$GITHUB_STEP_SUMMARY`` when set, so the
comparison shows up directly on the CI job page.

Usage::

    python benchmarks/check_regression.py \
        --baseline BENCH_perf_baseline.json --candidate BENCH_perf.json \
        --summary regression.md
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

#: One-sided relative tolerance for wall-clock ratio metrics.
WALL_RATIO_TOLERANCE = 0.15

#: Dotted paths of count metrics compared exactly (plus the per-config
#: workload counts discovered dynamically).
EXACT_PATHS = (
    "comparisons.deobfuscation_clauses_full",
    "comparisons.deobfuscation_clauses_baseline",
    "batch.pooled.sat_variables",
    "batch.pooled.sat_clauses",
    "batch.pooled.conflicts",
    "batch.fresh.sat_variables",
    "batch.fresh.sat_clauses",
    "batch.fresh.conflicts",
    "batch.pooled.verdicts",
    "batch.fresh.verdicts",
    "scheduler.jobs",
    "scheduler.verdicts",
)

#: Dotted paths of wall-clock ratios gated with the one-sided tolerance
#: (lower is better for every one of them).
RATIO_PATHS = ("batch.wall_time_ratio_pooled_vs_fresh",)

#: Reported for context but never gated (pure information).
INFO_PATHS = (
    "comparisons.deobfuscation_clause_reduction_vs_baseline",
    "batch.variables_reduction_vs_fresh",
    "batch.clauses_reduction_vs_fresh",
    "batch.wall_time_ratio_parallel_vs_pooled",
    "scheduler.steals",
    "scheduler.stolen_jobs",
    "scheduler.cross_worker_memo_hits",
    "intra.wall_time_ratio_sweep_parallel_vs_sequential",
    "intra.wall_time_ratio_speculation_on_vs_off",
    "intra.sweep_parallel.intra_statistics.sweep_tasks",
    "intra.speculation_on.intra_statistics.speculation_wins",
    "intra.speculation_on.intra_statistics.speculation_losses",
)


def lookup(report: dict, path: str):
    node = report
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    if isinstance(value, list):
        return f"<{len(value)} entries>"
    return str(value)


class Comparison:
    def __init__(self) -> None:
        self.rows: list[tuple[str, str, str, str]] = []
        self.failures: list[str] = []

    def add(self, metric: str, baseline, candidate, status: str) -> None:
        self.rows.append((metric, fmt(baseline), fmt(candidate), status))
        if status.startswith("FAIL"):
            self.failures.append(f"{metric}: {status}")

    # -- rules -------------------------------------------------------------

    def check_boolean(self, name: str, baseline, candidate) -> None:
        if candidate is None:
            self.add(f"checks.{name}", baseline, "missing", "FAIL (check removed)")
        elif baseline is True and candidate is not True:
            self.add(f"checks.{name}", baseline, candidate, "FAIL (hard check)")
        else:
            self.add(f"checks.{name}", baseline, candidate, "ok")

    def check_exact(self, path: str, baseline, candidate) -> None:
        if baseline is None:
            return  # metric did not exist in the baseline yet
        if candidate == baseline:
            self.add(path, baseline, candidate, "ok")
        else:
            self.add(
                path,
                baseline,
                candidate,
                "FAIL (exact; regenerate the baseline if intentional)",
            )

    def check_ratio(self, path: str, baseline, candidate) -> None:
        if baseline is None:
            return
        if candidate is None:
            self.add(path, baseline, "missing", "FAIL (metric removed)")
            return
        limit = baseline * (1.0 + WALL_RATIO_TOLERANCE)
        if candidate <= limit:
            self.add(path, baseline, candidate, f"ok (limit {limit:.4f})")
        else:
            self.add(
                path,
                baseline,
                candidate,
                f"FAIL (> {limit:.4f}, +{WALL_RATIO_TOLERANCE:.0%} over baseline)",
            )

    def info(self, path: str, baseline, candidate) -> None:
        self.add(path, baseline, candidate, "info")


def compare(baseline: dict, candidate: dict) -> Comparison:
    result = Comparison()
    if baseline.get("quick") != candidate.get("quick"):
        result.add(
            "quick",
            baseline.get("quick"),
            candidate.get("quick"),
            "FAIL (baseline and candidate must use the same workload size)",
        )
        return result
    for name, value in (baseline.get("checks") or {}).items():
        result.check_boolean(name, value, lookup(candidate, f"checks.{name}"))
    for config_name, config in (baseline.get("configs") or {}).items():
        for workload_name, workload in (config.get("workloads") or {}).items():
            prefix = f"configs.{config_name}.workloads.{workload_name}"
            for metric in ("sat_clauses", "sat_variables", "verdicts"):
                result.check_exact(
                    f"{prefix}.{metric}",
                    workload.get(metric),
                    lookup(candidate, f"{prefix}.{metric}"),
                )
    for path in EXACT_PATHS:
        result.check_exact(path, lookup(baseline, path), lookup(candidate, path))
    for path in RATIO_PATHS:
        result.check_ratio(path, lookup(baseline, path), lookup(candidate, path))
    for path in INFO_PATHS:
        result.info(path, lookup(baseline, path), lookup(candidate, path))
    return result


def render_markdown(result: Comparison, show_ok_limit: int = 400) -> str:
    lines = [
        "## Perf regression gate",
        "",
        f"**{'REGRESSION' if result.failures else 'PASS'}** — "
        f"{len(result.failures)} failing metric(s) out of {len(result.rows)} compared "
        f"(wall-ratio tolerance ±{WALL_RATIO_TOLERANCE:.0%}, counts exact).",
        "",
        "| metric | baseline | candidate | status |",
        "| --- | --- | --- | --- |",
    ]
    shown = 0
    for metric, base, cand, status in result.rows:
        interesting = not status.startswith("ok") or any(
            metric.startswith(p.split(".")[0]) for p in ("batch", "scheduler", "checks", "comparisons")
        )
        if not interesting and shown >= show_ok_limit:
            continue
        lines.append(f"| `{metric}` | {base} | {cand} | {status} |")
        shown += 1
    if result.failures:
        lines += ["", "### Failures", ""]
        lines += [f"- {failure}" for failure in result.failures]
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("BENCH_perf_baseline.json"),
        help="committed baseline report",
    )
    parser.add_argument(
        "--candidate",
        type=Path,
        default=Path("BENCH_perf.json"),
        help="freshly generated report",
    )
    parser.add_argument(
        "--summary",
        type=Path,
        default=None,
        help="write the Markdown table here as well",
    )
    arguments = parser.parse_args(argv)
    baseline = json.loads(arguments.baseline.read_text())
    candidate = json.loads(arguments.candidate.read_text())
    result = compare(baseline, candidate)
    markdown = render_markdown(result)
    print(markdown)
    if arguments.summary is not None:
        arguments.summary.write_text(markdown)
    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if step_summary:
        with open(step_summary, "a", encoding="utf-8") as handle:
            handle.write(markdown)
    if result.failures:
        print(
            "perf regression gate FAILED — if the change is intentional, "
            "regenerate BENCH_perf.json (full suite) and commit it.",
            file=sys.stderr,
        )
        return 1
    print("perf regression gate passed.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
