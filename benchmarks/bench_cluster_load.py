#!/usr/bin/env python3
"""Cluster load generator: end-to-end latency percentiles over HTTP.

Boots the full cluster topology (memod + coordinator + two nodes, every
role a real subprocess on an ephemeral port), then drives it with a
skewed job stream from concurrent clients the way a production caller
fleet would: each client submits one job and long-polls it to a
terminal state, and the submit→done wall time is that job's end-to-end
latency.  The report records p50/p95/p99 latency, throughput, and the
cluster's own counters (per-node completion, memo publishes/hits).

The numbers are wall-clock and machine-dependent, so they are merged
into ``BENCH_perf.json`` under the ``cluster`` key as *information* —
the regression gate (``check_regression.py``) does not compare them.

Usage::

    python benchmarks/bench_cluster_load.py [--jobs 24] [--clients 8] \
        [--output BENCH_perf.json]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from tempfile import TemporaryDirectory

REPO_ROOT = Path(__file__).resolve().parent.parent

NODE_NAMES = ["alpha", "beta"]

#: The stream cycles these shapes; duplicates keep per-node sessions
#: warm and exercise the shared memo, the width skew makes one node's
#: shard heavier than the other's (the scheduler-stream shape the
#: work-stealing benchmark also uses).
SHAPE_CYCLE = [
    {"kind": "deobfuscation", "task": "multiply45", "width": 4, "seed": 0},
    {"kind": "deobfuscation", "task": "multiply45", "width": 4, "seed": 0},
    {"kind": "deobfuscation", "task": "multiply45", "width": 5, "seed": 0},
    {"kind": "deobfuscation", "task": "multiply45", "width": 6, "seed": 0},
]


def call(base: str, method: str, path: str, body: dict | None = None) -> dict:
    request = urllib.request.Request(
        base + path,
        method=method,
        data=None if body is None else json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return json.loads(response.read())


def wait_port(path: Path, deadline: float = 30.0) -> int:
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        if path.exists():
            text = path.read_text().strip()
            if text:
                return int(text)
        time.sleep(0.05)
    raise RuntimeError(f"port file {path} never appeared")


def spawn(command: list[str]) -> subprocess.Popen:
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.Popen(command, env=environment, cwd=str(REPO_ROOT))


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


def run_client(base: str, problem: dict, label: str) -> float:
    """Submit one job, long-poll it to a terminal state, return latency."""
    start = time.monotonic()
    job_id = call(base, "POST", "/jobs",
                  {"problem": problem, "label": label})["job_id"]
    while not call(base, "GET", f"/jobs/{job_id}?wait=30")["done"]:
        pass
    record = call(base, "GET", f"/jobs/{job_id}")
    assert record["state"] == "completed", (job_id, record["state"])
    return time.monotonic() - start


def run_load(base: str, jobs: int, clients: int) -> dict:
    stream = [
        (dict(SHAPE_CYCLE[index % len(SHAPE_CYCLE)]), f"load-{index}")
        for index in range(jobs)
    ]
    started = time.monotonic()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        latencies = list(
            pool.map(lambda entry: run_client(base, *entry), stream)
        )
    wall = time.monotonic() - started
    latencies.sort()
    return {
        "jobs": jobs,
        "clients": clients,
        "wall_seconds": round(wall, 3),
        "throughput_jobs_per_second": round(jobs / wall, 3),
        "latency_seconds": {
            "p50": round(percentile(latencies, 0.50), 3),
            "p95": round(percentile(latencies, 0.95), 3),
            "p99": round(percentile(latencies, 0.99), 3),
            "max": round(latencies[-1], 3),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=24,
                        help="total jobs in the stream")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent submitting clients")
    parser.add_argument("--output", type=Path, default=None,
                        help="merge the report into this BENCH_perf.json")
    arguments = parser.parse_args(argv)

    with TemporaryDirectory(prefix="cluster-bench-") as scratch:
        state = Path(scratch)
        processes: dict[str, subprocess.Popen] = {}
        try:
            processes["memod"] = spawn(
                [sys.executable, "-m", "repro.cluster.memod",
                 "--port", "0", "--port-file", str(state / "memod.port")]
            )
            memod_port = wait_port(state / "memod.port")
            processes["coordinator"] = spawn(
                [sys.executable, "-m", "repro.cluster.coordinator",
                 "--port", "0", "--port-file", str(state / "http.port"),
                 "--cluster-port", "0",
                 "--cluster-port-file", str(state / "cluster.port"),
                 "--memod", f"127.0.0.1:{memod_port}",
                 "--data-dir", str(state / "coordinator-data"),
                 "--quiet"]
            )
            base = f"http://127.0.0.1:{wait_port(state / 'http.port')}"
            cluster_port = wait_port(state / "cluster.port")
            for name in NODE_NAMES:
                processes[name] = spawn(
                    [sys.executable, "-m", "repro.cluster.node",
                     "--coordinator", f"127.0.0.1:{cluster_port}",
                     "--memod", f"127.0.0.1:{memod_port}",
                     "--name", name, "--quiet"]
                )
            while len(call(base, "GET", "/stats")["cluster"]["live_nodes"]) \
                    < len(NODE_NAMES):
                time.sleep(0.1)

            report = run_load(base, arguments.jobs, arguments.clients)

            cluster = call(base, "GET", "/stats")["cluster"]
            report["nodes"] = {
                name: {
                    "jobs_completed": record["jobs_completed"],
                    "shapes": record["shapes"],
                }
                for name, record in cluster["nodes"].items()
            }
            report["memod"] = {
                key: cluster["memod"].get(key, 0)
                for key in ("publishes", "hits", "cross_worker_hits")
            }
        finally:
            for process in processes.values():
                if process.poll() is None:
                    process.kill()
                    process.wait(timeout=30)

    print(json.dumps(report, indent=2, sort_keys=True))
    if arguments.output is not None:
        merged = (
            json.loads(arguments.output.read_text())
            if arguments.output.exists()
            else {}
        )
        merged["cluster"] = report
        arguments.output.write_text(
            json.dumps(merged, indent=2, sort_keys=True) + "\n"
        )
        print(f"merged under 'cluster' into {arguments.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
