"""Experiment E7 — paper Figure 10: the closed-loop transmission trace.

Simulates the hybrid automaton obtained from the Eq. (3) switching logic
through the schedule N → G1U → G2U → G3U → G3D → G2D → G1D → N and checks
the properties visible in Figure 10:

* the speed climbs through the gears to its peak (≈ 36–37 in the paper)
  and returns to a standstill,
* the efficiency η stays at least 0.5 whenever ω ≥ 5,
* the speed never exceeds 60,
* a positive distance θ is covered and the vehicle ends at rest.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.hybrid import (
    FIGURE10_SCHEDULE,
    HybridAutomaton,
    Hyperbox,
    IntegratorConfig,
    THETA_MAX,
    efficiency_of_mode,
    make_transmission_synthesizer,
)


def _figure10_trace():
    setup = make_transmission_synthesizer(
        dwell_time=0.0, omega_step=0.01, integration_step=0.02, horizon=80.0
    )
    report = setup.synthesizer.synthesize()
    logic = dict(report.switching_logic)
    # The synthesized g1ND guard is the designated point θ = θmax ∧ ω = 0;
    # relax it to "nearly stopped" so the fixed-step simulation can take it.
    logic["g1ND"] = Hyperbox.from_bounds({"theta": (0.0, THETA_MAX), "omega": (0.0, 0.5)})
    automaton = HybridAutomaton(setup.system, logic, IntegratorConfig(step=0.02))
    trace = automaton.simulate_schedule(FIGURE10_SCHEDULE, horizon=200.0)
    return report, trace


def test_fig10_trace(benchmark):
    report, trace = run_once(benchmark, _figure10_trace)

    omegas = [point.state[1] for point in trace.points]
    efficiencies = [
        efficiency_of_mode(point.mode, point.state[1]) for point in trace.points
    ]
    switch_rows = []
    for (mode, enter_time, exit_time) in trace.mode_intervals():
        switch_rows.append([mode, f"{enter_time:.1f}", f"{exit_time:.1f}",
                            f"{exit_time - enter_time:.1f}"])
    print_table(
        "Figure 10 — mode schedule of the synthesized transmission",
        ["mode", "enter (s)", "exit (s)", "dwell (s)"],
        switch_rows,
    )
    violations = sum(
        1
        for point in trace.points
        if point.mode != "N"
        and point.state[1] >= 5.0
        and efficiency_of_mode(point.mode, point.state[1]) < 0.5
    )
    print_table(
        "Figure 10 — trace summary",
        ["quantity", "value"],
        [
            ["transitions taken", " ".join(trace.transitions_taken)],
            ["peak speed (omega)", f"{max(omegas):.2f}"],
            ["final speed", f"{trace.final_state[1]:.2f}"],
            ["distance covered (theta)", f"{trace.final_state[0]:.1f}"],
            ["total time (s)", f"{trace.final_time:.1f}"],
            ["min efficiency while omega >= 5", f"{min((e for e, p in zip(efficiencies, trace.points) if p.state[1] >= 5.0 and p.mode != 'N'), default=1.0):.3f}"],
            ["phi_S violations", str(violations)],
        ],
    )

    assert trace.transitions_taken == list(FIGURE10_SCHEDULE)
    assert trace.safe and violations == 0
    assert 30.0 < max(omegas) <= 60.0          # climbs into gear 3, stays under 60
    assert trace.final_state[1] < 0.5          # back to (near) standstill
    assert trace.final_state[0] > 100.0        # covered a real distance
    benchmark.extra_info.update(
        {
            "peak_omega": max(omegas),
            "final_theta": float(trace.final_state[0]),
            "total_time_s": trace.final_time,
        }
    )
