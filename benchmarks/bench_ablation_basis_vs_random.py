"""Experiment E11 — ablation: basis-path measurement vs. random testing.

The motivation for GameTime's basis-path machinery is that measuring a
handful of carefully chosen paths beats spending the same budget on random
inputs, because the worst-case path is rare under uniform sampling.  The
ablation gives both estimators the same measurement budget on programs
whose worst case requires all branch conditions to line up, and reports
how much of the true WCET each recovers.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.cfg import conditional_cascade, modular_exponentiation
from repro.gametime import ExhaustiveEstimator, GameTime, RandomTestingEstimator

WORKLOADS = (
    ("modexp8", lambda: modular_exponentiation(8, 16)),
    ("cascade5", lambda: conditional_cascade(5, 16)),
)


def _compare_estimators():
    rows = []
    for name, factory in WORKLOADS:
        program = factory()
        gametime = GameTime(program, trials=None, seed=0)
        estimate = gametime.estimate_wcet()
        budget = gametime.timing_oracle.query_count
        truth = ExhaustiveEstimator(program).estimate().estimated_wcet
        random_estimate = RandomTestingEstimator(program, seed=7).estimate(budget=budget)
        rows.append(
            {
                "workload": name,
                "budget": budget,
                "true_wcet": truth,
                "gametime": estimate.measured_cycles,
                "random": random_estimate.estimated_wcet,
            }
        )
    return rows


def test_basis_paths_vs_random_testing(benchmark):
    rows = run_once(benchmark, _compare_estimators)
    print_table(
        "Ablation — WCET recovered with an equal measurement budget",
        ["workload", "budget", "true WCET", "GameTime (basis paths)", "random testing"],
        [
            [
                row["workload"],
                str(row["budget"]),
                str(row["true_wcet"]),
                str(row["gametime"]),
                str(row["random"]),
            ]
            for row in rows
        ],
    )
    for row in rows:
        # GameTime finds the exact WCET; random testing never beats it and
        # underestimates on at least one workload.
        assert row["gametime"] == row["true_wcet"], row["workload"]
        assert row["random"] <= row["gametime"], row["workload"]
    assert any(row["random"] < row["true_wcet"] for row in rows)
    benchmark.extra_info["rows"] = rows
