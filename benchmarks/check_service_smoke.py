#!/usr/bin/env python3
"""Service smoke check: HTTP results must equal in-process results.

Drives a running ``repro.service`` instance (boot it separately, e.g.
``python -m repro.service --port 0 --port-file port.txt``) through the
full zoo:

1. submits one job of **each registered problem kind** over HTTP, waits
   for it, and asserts the wire-form result is byte-identical (modulo
   wall-clock fields) to running the same spec on an in-process
   :class:`~repro.api.engine.SciductionEngine` with the same
   configuration and submission order;
2. exercises **cancellation**: a queued job behind a slow one is
   DELETEd, must report ``cancelled`` with the engine's structured
   cancelled result;
3. sanity-checks ``/stats``, ``/problems`` and error responses.

Exits non-zero on any mismatch.  Usage::

    python benchmarks/check_service_smoke.py --base-url http://127.0.0.1:8080
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:  # standalone execution support
    sys.path.insert(0, str(_ROOT / "src"))

from repro.api import EngineConfig, SciductionEngine, result_wire_canonical

#: One small instance per problem kind (every paper application).
SMOKE_JOBS = (
    {"kind": "deobfuscation", "task": "multiply45", "width": 4, "seed": 0},
    {
        "kind": "timing-analysis",
        "program": "bounded_linear_search",
        "program_args": {"length": 3, "word_width": 16},
        "bound": 250,
    },
    {
        "kind": "switching-logic",
        "system": "transmission",
        "omega_step": 0.5,
        "integration_step": 0.05,
        "horizon": 40.0,
    },
)


def call(base_url: str, method: str, path: str, body: dict | None = None):
    request = urllib.request.Request(
        base_url + path,
        method=method,
        data=None if body is None else json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def wait_until_healthy(base_url: str, deadline_seconds: float = 30.0) -> None:
    deadline = time.monotonic() + deadline_seconds
    while time.monotonic() < deadline:
        try:
            status, _ = call(base_url, "GET", "/healthz")
            if status == 200:
                return
        except (urllib.error.URLError, ConnectionError):
            pass
        time.sleep(0.2)
    raise RuntimeError(f"service at {base_url} never became healthy")


def wait_for_job(base_url: str, job_id: int, timeout_seconds: float = 300.0) -> dict:
    deadline = time.monotonic() + timeout_seconds
    while time.monotonic() < deadline:
        status, record = call(base_url, "GET", f"/jobs/{job_id}")
        assert status == 200, (status, record)
        if record["done"]:
            return record
        time.sleep(0.1)
    raise RuntimeError(f"job {job_id} did not finish within {timeout_seconds}s")


def check_kind_parity(base_url: str) -> None:
    """HTTP-submitted jobs must return the in-process engine's exact wire."""
    # Submit sequentially (each waits for the previous) so the service
    # engine sees the same job order — and therefore the same warm-pool
    # evolution — as the in-process twin below.
    http_wires = []
    for spec in SMOKE_JOBS:
        status, submitted = call(base_url, "POST", "/jobs", {"problem": dict(spec)})
        assert status == 202, (status, submitted)
        record = wait_for_job(base_url, submitted["job_id"])
        status, result = call(base_url, "GET", f"/jobs/{submitted['job_id']}/result")
        assert status == 200, (status, result)
        http_wires.append((record["state"], result_wire_canonical(result)))

    engine = SciductionEngine(EngineConfig(workers=1))
    for spec in SMOKE_JOBS:
        engine.run(dict(spec))
    local_wires = [
        (job.state.value, result_wire_canonical(job.result_wire()))
        for job in engine.jobs
    ]
    for index, (http, local) in enumerate(zip(http_wires, local_wires)):
        kind = SMOKE_JOBS[index]["kind"]
        assert http == local, (
            f"{kind}: HTTP wire differs from in-process wire\n"
            f"HTTP:  {json.dumps(http, sort_keys=True)[:2000]}\n"
            f"local: {json.dumps(local, sort_keys=True)[:2000]}"
        )
        print(f"  [ok] {kind}: HTTP result byte-identical to in-process run")


def check_cancellation(base_url: str) -> None:
    """A job queued behind a slow one must be cancellable over HTTP."""
    slow = {"kind": "deobfuscation", "task": "multiply45", "width": 8, "seed": 0}
    status, blocker = call(
        base_url, "POST", "/jobs", {"problem": slow, "timeout": 60.0}
    )
    assert status == 202, (status, blocker)
    status, target = call(
        base_url,
        "POST",
        "/jobs",
        {"problem": {"kind": "deobfuscation", "task": "multiply45", "width": 4}},
    )
    assert status == 202, (status, target)
    status, outcome = call(base_url, "DELETE", f"/jobs/{target['job_id']}")
    assert status == 200 and outcome.get("cancelled") is True, (status, outcome)
    status, record = call(base_url, "GET", f"/jobs/{target['job_id']}")
    assert record["state"] == "cancelled", record
    status, result = call(base_url, "GET", f"/jobs/{target['job_id']}/result")
    assert status == 200 and result["details"]["outcome"] == "cancelled", result
    print("  [ok] queued job cancelled over HTTP with structured result")
    # Cancelling it again must be a 409, unknown ids a 404.
    status, _ = call(base_url, "DELETE", f"/jobs/{target['job_id']}")
    assert status == 409, status
    status, _ = call(base_url, "DELETE", "/jobs/999999")
    assert status == 404, status
    # Let the blocker finish so shutdown is clean.
    record = wait_for_job(base_url, blocker["job_id"])
    assert record["state"] in {"completed", "timed-out"}, record
    print(f"  [ok] blocker resolved as {record['state']}")


def check_stats_and_errors(base_url: str) -> None:
    status, kinds = call(base_url, "GET", "/problems")
    assert status == 200 and set(kinds["kinds"]) >= {
        "deobfuscation",
        "timing-analysis",
        "switching-logic",
    }, kinds
    status, stats = call(base_url, "GET", "/stats")
    assert status == 200, stats
    for key in ("queue", "engine", "config"):
        assert key in stats, stats
    assert stats["queue"].get("completed", 0) >= len(SMOKE_JOBS), stats["queue"]
    status, error = call(base_url, "POST", "/jobs", {"problem": {"kind": "nope"}})
    assert status == 400, (status, error)
    status, error = call(base_url, "GET", "/jobs/424242")
    assert status == 404, (status, error)
    print("  [ok] /stats, /problems and error responses")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--base-url",
        required=True,
        help="base URL of a running repro.service instance",
    )
    arguments = parser.parse_args(argv)
    base_url = arguments.base_url.rstrip("/")
    wait_until_healthy(base_url)
    print(f"service smoke against {base_url}")
    check_kind_parity(base_url)
    check_cancellation(base_url)
    check_stats_and_errors(base_url)
    print("service smoke passed.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
