"""Experiment E10 — paper Figure 7: behaviour under an invalid hypothesis.

Figure 7 maps out what can happen when the component library (the
structure hypothesis) is insufficient: either the gathered I/O pairs show
infeasibility — the synthesizer reports it — or a program consistent with
the seen examples is produced that is *not* equivalent to the oracle.  The
benchmark runs the multiply-by-45 oracle against a library missing the
shift-by-3 component and records which branch of Figure 7 was taken,
asserting that the sound outcome ("correct program under an invalid
hypothesis") is impossible.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.core import UnrealizableError
from repro.ogis import (
    OgisSynthesizer,
    ProgramIOOracle,
    insufficient_multiply45_library,
    multiply45_obfuscated,
    multiply45_reference,
)

WIDTH = 8


def _invalid_hypothesis_run():
    oracle = ProgramIOOracle(
        lambda values: multiply45_obfuscated(values, WIDTH), 1, 1, WIDTH
    )
    synthesizer = OgisSynthesizer(
        insufficient_multiply45_library(), oracle, width=WIDTH, seed=1
    )
    try:
        program = synthesizer.synthesize()
    except UnrealizableError:
        return "infeasibility-reported", None, synthesizer
    equivalent = program.equivalent_to(
        lambda values: multiply45_reference(values, WIDTH), width=WIDTH
    )
    outcome = "correct-program" if equivalent else "incorrect-program"
    return outcome, program, synthesizer


def test_fig7_insufficient_library(benchmark):
    outcome, program, synthesizer = run_once(benchmark, _invalid_hypothesis_run)
    rows = [
        ["library", "{shl2, add, add} (shl3 withheld)"],
        ["outcome", outcome],
        ["oracle queries", str(synthesizer.trace.oracle_queries)],
    ]
    if program is not None:
        rows.append(["synthesized (not equivalent)", program.pretty().replace("\n", " ")])
    print_table("Figure 7 — invalid structure hypothesis", ["quantity", "value"], rows)

    # The two paper-predicted outcomes are the only possible ones: the
    # library cannot express multiplication by 45, so a "correct program"
    # is impossible.
    assert outcome in {"infeasibility-reported", "incorrect-program"}
    benchmark.extra_info["outcome"] = outcome
