"""Benchmark — the query-shrinking perf suite across the whole SMT stack.

Successor of ``bench_incremental_smt.py`` (which pinned the PR-1
incremental-vs-one-shot comparison): this harness tracks the *multi-layer*
performance pass — word-level simplification, hash-consed terms,
polarity-aware (Plaisted–Greenbaum) CNF, and the upgraded CDCL hot path —
from this PR onward.  It runs three workloads

* **deobfuscation** — the Figure 8 OGIS loops (candidate-program and
  distinguishing-input queries on one persistent solver),
* **gametime**    — per-path feasibility sweeps over CFGs (Figure 6 /
  Section 3), with a full model audit of every feasible path,
* **hybrid**      — a bounded-reachability unrolling of a discretized
  two-mode hybrid automaton (Section 5 flavour: mode switching plus a
  per-step disturbance input), checked depth by depth in push/pop scopes,

under a grid of ablation configs that disable each layer independently
(``simplify_terms`` / ``polarity_aware`` / ``gc_dead_clauses``), plus a
**batch-throughput** workload that pushes a service-like job stream
through :class:`repro.api.SciductionEngine` three ways — pooled
persistent solver sessions, a fresh solver per job, and pooled under the
``workers=2`` parallel executor — and writes a machine-readable
``BENCH_perf.json`` — wall time, SAT variables and clauses,
propagations/sec, GC counters, and the exact flag set of every run — so
the perf trajectory is comparable across PRs.  Each batch mode runs in
its own subprocess: the pooled engine freezes its sessions out of the
cyclic GC and shares global caches, so in-process timing comparisons
would contaminate each other.

Hard checks (both under pytest and as a standalone CLI, where any failure
exits non-zero):

* every workload's verdicts are identical across all configs;
* every SAT model still satisfies the original (un-simplified) formulas;
* the fully-enabled config generates at least 25% fewer SAT clauses than
  the all-off baseline (the PR-1 behaviour) on the deobfuscation workload;
* the batch's verdicts are identical pooled vs fresh, and pooled
  sessions generate strictly fewer SAT variables *and* clauses;
* ``run_batch(workers=2)`` returns byte-identical ordered results to the
  sequential pooled run (wire forms compared after dropping wall-clock
  fields);
* pooled wall time is at most per-job-fresh wall time on the batch
  stream (enforced on the full 8-job stream; the quick stream records
  the ratio without gating, it is too short to time reliably in CI);
* intra-job parallelism is result-invisible: the single-big-job timing
  sweep is byte-identical under ``intra_job_workers=2`` vs sequential,
  and the deobfuscation corpus is byte-identical with
  ``speculative_ogis`` on vs off — in both cases with the engine's
  ``intra_job`` telemetry proving the lanes actually ran.

Run standalone::

    python benchmarks/bench_perf_suite.py --quick --output BENCH_perf.json

or under pytest (uses the quick workloads)::

    python -m pytest benchmarks/bench_perf_suite.py -q
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:  # standalone execution support
    sys.path.insert(0, str(_ROOT / "src"))

from repro.cfg import build_cfg, enumerate_paths, modular_exponentiation
from repro.cfg.programs import bounded_linear_search
from repro.cfg.ssa import PathConstraintBuilder
from repro.ogis import (
    OgisSynthesizer,
    ProgramIOOracle,
    interchange_library,
    interchange_obfuscated,
    interchange_reference,
    multiply45_library,
    multiply45_obfuscated,
    multiply45_reference,
)
from repro.smt import SmtResult, SmtSolver
from repro.smt.terms import FALSE, TRUE, bool_ite, bool_var, bv_const, bv_ite, bv_var

#: Ablation grid: every layer can be switched off independently;
#: ``baseline`` is the PR-1 behaviour (no word-level simplification,
#: classic full Tseitin, no scope garbage collection).
CONFIGS = {
    "full": dict(simplify_terms=True, polarity_aware=True, gc_dead_clauses=2000),
    "no_simplify": dict(simplify_terms=False, polarity_aware=True, gc_dead_clauses=2000),
    "no_polarity": dict(simplify_terms=True, polarity_aware=False, gc_dead_clauses=2000),
    "no_gc": dict(simplify_terms=True, polarity_aware=True, gc_dead_clauses=None),
    "baseline": dict(simplify_terms=False, polarity_aware=False, gc_dead_clauses=None),
}

#: (task name, library factory, obfuscated fn, reference fn, n_in, n_out, width, seed)
DEOBFUSCATION_TASKS = (
    ("interchange w8", interchange_library, interchange_obfuscated, interchange_reference, 2, 2, 8, 1),
    ("multiply45 w8", multiply45_library, multiply45_obfuscated, multiply45_reference, 1, 1, 8, 1),
    ("multiply45 w5", multiply45_library, multiply45_obfuscated, multiply45_reference, 1, 1, 5, 0),
    ("multiply45 w4", multiply45_library, multiply45_obfuscated, multiply45_reference, 1, 1, 4, 0),
    ("multiply45 w4b", multiply45_library, multiply45_obfuscated, multiply45_reference, 1, 1, 4, 1),
)
DEOBFUSCATION_QUICK = DEOBFUSCATION_TASKS[2:]


def _run_deobfuscation(options: dict, quick: bool) -> dict:
    tasks = DEOBFUSCATION_QUICK if quick else DEOBFUSCATION_TASKS
    verdicts = []
    start = time.perf_counter()
    variables = clauses = propagations = 0
    for name, library, obfuscated, reference, n_in, n_out, width, seed in tasks:
        oracle = ProgramIOOracle(
            lambda values, fn=obfuscated, w=width: fn(values, w), n_in, n_out, width
        )
        synthesizer = OgisSynthesizer(
            library(), oracle, width=width, seed=seed, solver_options=options
        )
        program = synthesizer.synthesize()
        # The synthesized program is the model audit: it was decoded from
        # SAT model values and must implement the reference semantics.
        verdicts.append(
            bool(
                program.equivalent_to(
                    lambda values, fn=reference, w=width: fn(values, w), width=width
                )
            )
        )
        statistics = synthesizer.encoder.smt_statistics()
        variables += statistics.variables_generated
        clauses += statistics.clauses_generated
        propagations += synthesizer.encoder.sat_statistics().propagations
    seconds = time.perf_counter() - start
    return {
        "tasks": [task[0] for task in tasks],
        "verdicts": verdicts,
        "models_ok": all(verdicts),
        "seconds": seconds,
        "sat_variables": variables,
        "sat_clauses": clauses,
        "propagations": propagations,
        "propagations_per_sec": propagations / seconds if seconds else 0.0,
    }


def _run_gametime(options: dict, quick: bool) -> dict:
    programs = [("linear_search(4)", bounded_linear_search(4, 16))]
    if not quick:
        programs.append(("modexp(8)", modular_exponentiation(8, 16)))
    verdicts = []
    models_ok = True
    variables = clauses = propagations = gc_removed = gc_runs = 0
    start = time.perf_counter()
    for _, program in programs:
        cfg = build_cfg(program)
        builder = PathConstraintBuilder(cfg, solver_options=options)
        solver = builder.solver
        for path in enumerate_paths(cfg):
            encoding = builder.encode(path)
            solver.push()
            try:
                solver.add(*encoding.constraints)
                verdict = solver.check()
                verdicts.append(verdict is SmtResult.SAT)
                if verdict is SmtResult.SAT:
                    # Model audit: the satisfying assignment must satisfy
                    # the *original* (pre-simplification) path formula.
                    models_ok &= solver.model().evaluate(encoding.formula()) is True
            finally:
                solver.pop()
        statistics = solver.statistics
        variables += statistics.variables_generated
        clauses += statistics.clauses_generated
        sat_statistics = solver.sat_statistics()
        propagations += sat_statistics.propagations
        gc_removed += sat_statistics.gc_removed_clauses
        gc_runs += sat_statistics.gc_runs
    seconds = time.perf_counter() - start
    return {
        "programs": [name for name, _ in programs],
        "verdicts": verdicts,
        "feasible": sum(verdicts),
        "models_ok": models_ok,
        "seconds": seconds,
        "sat_variables": variables,
        "sat_clauses": clauses,
        "propagations": propagations,
        "propagations_per_sec": propagations / seconds if seconds else 0.0,
        "gc_removed_clauses": gc_removed,
        "gc_runs": gc_runs,
    }


def _hybrid_step(width, temp, mode, disturbance):
    """One discretized step of a two-mode thermal automaton.

    Heating (mode = true) adds 3 plus a bounded disturbance, cooling
    subtracts 2; the mode switches outside the [30, 80] comfort band.
    """
    heated = temp + bv_const(3, width) + disturbance
    cooled = temp - bv_const(2, width)
    next_temp = bv_ite(mode, heated, cooled)
    next_mode = bool_ite(
        next_temp.uge(bv_const(80, width)),
        FALSE,  # too hot: switch to cooling
        bool_ite(next_temp.ule(bv_const(30, width)), TRUE, mode),
    )
    return next_temp, next_mode


def _run_hybrid(options: dict, quick: bool) -> dict:
    """Bounded reachability on the unrolled automaton, one scope per depth."""
    width = 8
    depth = 10 if quick else 24
    solver = SmtSolver(**options)
    asserted = []

    def assert_(formula):
        asserted.append(formula)
        solver.add(formula)

    temp = bv_var("t_0", width)
    mode = bool_var("m_0")
    assert_(temp.eq(bv_const(50, width)))
    assert_(mode.iff(TRUE))  # start heating
    verdicts = []
    models_ok = True
    start = time.perf_counter()
    for step in range(1, depth + 1):
        disturbance = bv_var(f"d_{step}", width)
        assert_(disturbance.ule(bv_const(3, width)))
        next_temp, next_mode = _hybrid_step(width, temp, mode, disturbance)
        fresh_temp = bv_var(f"t_{step}", width)
        fresh_mode = bool_var(f"m_{step}")
        assert_(fresh_temp.eq(next_temp))
        assert_(fresh_mode.iff(next_mode))
        temp, mode = fresh_temp, fresh_mode
        # Per-depth target query in its own scope: "can the system be
        # exactly at 77 while cooling?".
        target = temp.eq(bv_const(77, width)) & ~mode
        solver.push()
        try:
            solver.add(target)
            verdict = solver.check()
            verdicts.append(verdict is SmtResult.SAT)
            if verdict is SmtResult.SAT:
                model = solver.model()
                for formula in asserted + [target]:
                    models_ok &= model.evaluate(formula) is True
        finally:
            solver.pop()
        # Degenerate boundary-guard queries, the kind a hyperbox guard
        # search emits when it reaches the edge of the domain: trivially
        # true at the word level, a full comparator chain at the bit level.
        verdicts.append(solver.check(temp.uge(bv_const(0, width))) is SmtResult.SAT)
        verdicts.append(
            solver.check(temp.ule(bv_const((1 << width) - 1, width))) is SmtResult.SAT
        )
    seconds = time.perf_counter() - start
    statistics = solver.statistics
    sat_statistics = solver.sat_statistics()
    return {
        "depth": depth,
        "verdicts": verdicts,
        "reachable_depths": [i + 1 for i, v in enumerate(verdicts) if v],
        "models_ok": models_ok,
        "seconds": seconds,
        "sat_variables": statistics.variables_generated,
        "sat_clauses": statistics.clauses_generated,
        "propagations": sat_statistics.propagations,
        "propagations_per_sec": (
            sat_statistics.propagations / seconds if seconds else 0.0
        ),
        "gc_removed_clauses": sat_statistics.gc_removed_clauses,
        "gc_runs": sat_statistics.gc_runs,
    }


WORKLOADS = {
    "deobfuscation": _run_deobfuscation,
    "gametime": _run_gametime,
    "hybrid": _run_hybrid,
}


# ---------------------------------------------------------------------------
# Batch throughput: pooled solver sessions vs per-job fresh solvers
# ---------------------------------------------------------------------------

#: A service-like job stream with repeated problem shapes (the situation
#: the engine's SolverPool exists for).  Each entry is a problem-spec
#: wire dictionary, so this doubles as a test of the declarative API.
BATCH_JOBS = (
    {"kind": "deobfuscation", "task": "multiply45", "width": 4, "seed": 0},
    {"kind": "deobfuscation", "task": "multiply45", "width": 4, "seed": 1},
    {"kind": "timing-analysis", "program": "bounded_linear_search",
     "program_args": {"length": 4, "word_width": 16}, "bound": 250},
    {"kind": "deobfuscation", "task": "multiply45", "width": 5, "seed": 0},
    {"kind": "deobfuscation", "task": "multiply45", "width": 4, "seed": 0},
    {"kind": "deobfuscation", "task": "multiply45", "width": 4, "seed": 1},
    {"kind": "timing-analysis", "program": "bounded_linear_search",
     "program_args": {"length": 4, "word_width": 16}, "bound": 250},
    {"kind": "deobfuscation", "task": "multiply45", "width": 5, "seed": 0},
)
# The quick stream keeps the repeated timing-analysis jobs (indices 2 and
# 6): the per-CFG base-scope hard check needs a second same-shape timing
# job to observe the memoized feasibility sweep.
BATCH_JOBS_QUICK = BATCH_JOBS[:3] + BATCH_JOBS[5:8]


def _run_engine_batch(reuse_sessions: bool, quick: bool, workers: int = 1) -> dict:
    """Run the job stream through one SciductionEngine and sum its SMT work.

    The ``reuse_sessions=False`` baseline is the *pre-pool* behaviour — a
    fresh solver per job and no cross-job caching of any kind — so the
    engine-level shared check memo (which would happily answer the fresh
    solvers' repeated checks too) is disabled along with the pool.
    """
    from repro.api import EngineConfig, SciductionEngine, result_wire_canonical

    jobs = BATCH_JOBS_QUICK if quick else BATCH_JOBS
    engine = SciductionEngine(
        EngineConfig(
            reuse_sessions=reuse_sessions,
            shared_check_memo=reuse_sessions,
            workers=workers,
        )
    )
    start = time.perf_counter()
    results = engine.run_batch([dict(job) for job in jobs])
    seconds = time.perf_counter() - start
    variables = clauses = conflicts = propagations = 0
    verdicts = []
    for result in results:
        verdicts.append((result.success, result.verdict))
        smt = result.details["engine"].get("smt_job_statistics")
        sat = result.details["engine"].get("sat_job_statistics")
        if smt is not None:
            variables += smt["variables_generated"]
            clauses += smt["clauses_generated"]
        if sat is not None:
            conflicts += sat["conflicts"]
            propagations += sat["propagations"]
    record = {
        "jobs": len(jobs),
        "workers": workers,
        "verdicts": verdicts,
        "all_verdicts_true": all(
            success and verdict for success, verdict in verdicts
        ),
        "seconds": seconds,
        "sat_variables": variables,
        "sat_clauses": clauses,
        "conflicts": conflicts,
        "propagations": propagations,
        # Exact wire forms (minus wall-clock fields) for the byte-parity
        # check between execution modes.
        "result_wires": [
            result_wire_canonical(job.result_wire()) for job in engine.jobs
        ],
    }
    if workers == 1:
        record["sessions_created"] = engine.pool.statistics.solvers_created
        record["sessions_reused"] = engine.pool.statistics.reused_sessions
        record["routing_hits"] = engine.pool.statistics.routing_hits
        # Per-CFG base scopes (PR 5): the *second* timing-analysis job of
        # the stream lands on the session its twin warmed up, finds the
        # sealed base scope, and answers its whole feasibility sweep from
        # the check memo.  Recorded here, asserted as a hard check.
        timing_jobs = [
            job
            for job in engine.jobs
            if job.problem.to_dict().get("kind") == "timing-analysis"
        ]
        if len(timing_jobs) >= 2:
            second = timing_jobs[1].result.details["engine"]
            record["timing_second_job_session_reused"] = second["session_reused"]
            record["timing_second_job_memo_hits"] = second[
                "smt_job_statistics"
            ]["check_memo_hits"]
    engine.close()
    return record


def _run_engine_batch_isolated(
    reuse_sessions: bool, quick: bool, workers: int = 1, repeats: int = 1
) -> dict:
    """Run ``_run_engine_batch`` in a fresh subprocess, best-of-``repeats``.

    Isolation matters for the wall-time comparison: a pooled engine
    freezes its warm sessions out of the cyclic GC (``gc.freeze``) and
    fills process-global caches (hash-consed terms), so running the
    competing modes in one process would leak those effects into each
    other's timings.
    """
    spec = json.dumps(
        {"reuse_sessions": reuse_sessions, "quick": quick, "workers": workers}
    )
    best: dict | None = None
    for _ in range(repeats):
        process = subprocess.run(
            [sys.executable, str(Path(__file__).resolve()), "--batch-child", spec],
            capture_output=True,
            text=True,
            cwd=str(_ROOT),
        )
        if process.returncode != 0:
            raise RuntimeError(
                f"batch child failed:\n{process.stderr[-2000:]}"
            )
        record = json.loads(process.stdout.strip().splitlines()[-1])
        if best is None or record["seconds"] < best["seconds"]:
            best = record
    assert best is not None
    return best


def _batch_child_main(spec_json: str) -> int:
    """Child-process entry point for one isolated batch measurement."""
    spec = json.loads(spec_json)
    record = _run_engine_batch(
        reuse_sessions=spec["reuse_sessions"],
        quick=spec["quick"],
        workers=spec["workers"],
    )
    print(json.dumps(record))
    return 0


# ---------------------------------------------------------------------------
# Scheduler throughput: work stealing + cross-worker check memo
# ---------------------------------------------------------------------------

#: A deliberately *skewed* 12-job stream: shape A (deobfuscation w5) has a
#: few slow jobs, shapes B/C (timing analysis) have several fast ones, and
#: shape D (deobfuscation w4) lands on the slow worker's plan where it sits
#: un-started — exactly the situation work stealing exists for.  The static
#: PR-4 plan puts W1 = [A×4, D×3] and W2 = [B×3, C×2]; W2 drains its fast
#: jobs and steals the whole D queue while W1 is still grinding through A.
SKEWED_JOBS = (
    {"kind": "deobfuscation", "task": "multiply45", "width": 5, "seed": 0},
    {"kind": "deobfuscation", "task": "multiply45", "width": 5, "seed": 1},
    {"kind": "deobfuscation", "task": "multiply45", "width": 5, "seed": 0},
    {"kind": "deobfuscation", "task": "multiply45", "width": 5, "seed": 1},
    {"kind": "timing-analysis", "program": "bounded_linear_search",
     "program_args": {"length": 3, "word_width": 16}, "bound": 250},
    {"kind": "timing-analysis", "program": "bounded_linear_search",
     "program_args": {"length": 3, "word_width": 16}, "bound": 250},
    {"kind": "timing-analysis", "program": "bounded_linear_search",
     "program_args": {"length": 3, "word_width": 16}, "bound": 250},
    {"kind": "timing-analysis", "program": "absolute_difference",
     "program_args": {"word_width": 16}, "bound": 250},
    {"kind": "timing-analysis", "program": "absolute_difference",
     "program_args": {"word_width": 16}, "bound": 250},
    {"kind": "deobfuscation", "task": "multiply45", "width": 4, "seed": 0},
    {"kind": "deobfuscation", "task": "multiply45", "width": 4, "seed": 1},
    {"kind": "deobfuscation", "task": "multiply45", "width": 4, "seed": 0},
)


def _run_sched_child() -> dict:
    """Drive the skewed stream through sequential + work-stealing engines.

    Three measurements on one long-lived parallel engine (the service
    situation):

    1. batch 1 — skewed 12-job stream, ``workers=2``: results must be
       byte-identical to the sequential engine's (work stealing moves
       whole shape queues only, so every shape's session history is
       preserved) and the steal counter must be positive;
    2. batch 2 — the *same* stream resubmitted: the per-batch plan
       rotation lands the shapes on the other worker, whose fresh
       sessions answer the repeated checks from the parent's shared
       check memo — cross-worker memo hits, recorded in the engine
       statistics (verdicts must match batch 1);
    3. the sequential twin runs both batches too, so the comparison
       engine sees the same warm-session evolution.
    """
    from repro.api import EngineConfig, SciductionEngine, result_wire_canonical

    jobs = [dict(job) for job in SKEWED_JOBS]

    def canonical(engine):
        return [
            result_wire_canonical(job.result_wire()) for job in engine.jobs
        ]

    sequential = SciductionEngine(EngineConfig(workers=1))
    parallel = SciductionEngine(EngineConfig(workers=2))
    start = time.perf_counter()
    sequential_results = sequential.run_batch([dict(job) for job in jobs])
    sequential_seconds = time.perf_counter() - start
    start = time.perf_counter()
    parallel_results = parallel.run_batch([dict(job) for job in jobs])
    parallel_seconds = time.perf_counter() - start
    batch1_identical = canonical(parallel) == canonical(sequential)
    scheduler_stats = parallel.statistics()["scheduler"]

    second_sequential = sequential.run_batch([dict(job) for job in jobs])
    second_parallel = parallel.run_batch([dict(job) for job in jobs])
    statistics = parallel.statistics()
    parallel.close()
    sequential.close()
    return {
        "jobs": len(jobs),
        "sequential_seconds": sequential_seconds,
        "parallel_seconds": parallel_seconds,
        "batch1_results_byte_identical": batch1_identical,
        "steals": scheduler_stats["steals"],
        "stolen_jobs": scheduler_stats["stolen_jobs"],
        "batches": statistics["scheduler"]["batches"],
        "cross_worker_memo_hits": statistics["shared_memo"].get(
            "cross_worker_hits", 0
        ),
        "shared_memo_entries": statistics["shared_memo"].get("entries", 0),
        "second_batch_verdicts_match": (
            [(r.success, r.verdict) for r in second_parallel]
            == [(r.success, r.verdict) for r in second_sequential]
        ),
        "verdicts": [(r.success, r.verdict) for r in parallel_results],
        "verdicts_match_sequential": (
            [(r.success, r.verdict) for r in parallel_results]
            == [(r.success, r.verdict) for r in sequential_results]
        ),
    }


def run_scheduler_throughput() -> dict:
    """Run :func:`_run_sched_child` in an isolated subprocess.

    Isolation mirrors the batch measurements: the engines freeze warm
    sessions out of the cyclic GC and fill process-global caches, which
    must not leak into the other workloads' timings.
    """
    process = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--sched-child"],
        capture_output=True,
        text=True,
        cwd=str(_ROOT),
    )
    if process.returncode != 0:
        raise RuntimeError(f"sched child failed:\n{process.stderr[-2000:]}")
    return json.loads(process.stdout.strip().splitlines()[-1])


# ---------------------------------------------------------------------------
# Intra-job parallelism: parallel feasibility sweeps + speculative OGIS
# ---------------------------------------------------------------------------

#: Single-big-job sweep workload: timing-analysis jobs in distribution
#: mode, whose per-path feasibility sweep fans across replica sessions
#: when ``intra_job_workers`` exceeds one.
INTRA_SWEEP_JOBS = (
    {"kind": "timing-analysis", "program": "conditional_cascade",
     "bound": 300, "distribution": True},
    {"kind": "timing-analysis", "program": "saturating_add", "seed": 3,
     "bound": 250, "distribution": True},
)
INTRA_SWEEP_JOBS_QUICK = INTRA_SWEEP_JOBS[:1]

#: Deobfuscation corpus for the speculative-OGIS comparison; the w8
#: tasks iterate enough for the speculative lane to actually run.
INTRA_SPECULATION_JOBS = (
    {"kind": "deobfuscation", "task": "multiply45", "width": 8, "seed": 0},
    {"kind": "deobfuscation", "task": "multiply45", "width": 8, "seed": 1},
    {"kind": "deobfuscation", "task": "interchange", "width": 8, "seed": 7},
)
INTRA_SPECULATION_JOBS_QUICK = INTRA_SPECULATION_JOBS[:2]


def _run_intra_engine(
    workload: str, intra_job_workers: int, speculative: bool, quick: bool
) -> dict:
    """One engine run of an intra-job workload; wires + lane telemetry."""
    from repro.api import EngineConfig, SciductionEngine, result_wire_canonical

    if workload == "sweep":
        jobs = INTRA_SWEEP_JOBS_QUICK if quick else INTRA_SWEEP_JOBS
    else:
        jobs = INTRA_SPECULATION_JOBS_QUICK if quick else INTRA_SPECULATION_JOBS
    engine = SciductionEngine(
        EngineConfig(
            intra_job_workers=intra_job_workers,
            speculative_ogis=speculative,
        )
    )
    start = time.perf_counter()
    results = engine.run_batch([dict(job) for job in jobs])
    seconds = time.perf_counter() - start
    record = {
        "workload": workload,
        "jobs": len(jobs),
        "intra_job_workers": intra_job_workers,
        "speculative_ogis": speculative,
        "seconds": seconds,
        "all_verdicts_true": all(r.success and r.verdict for r in results),
        "intra_statistics": engine.statistics()["intra_job"],
        "result_wires": [
            result_wire_canonical(job.result_wire()) for job in engine.jobs
        ],
    }
    engine.close()
    return record


def _run_intra_isolated(
    workload: str, intra_job_workers: int, speculative: bool, quick: bool
) -> dict:
    """Run ``_run_intra_engine`` in a fresh subprocess.

    Isolation is mandatory here, not just a timing nicety: replica
    sessions share the process-global intern-scope stack, so two engine
    runs interleaved in one process would corrupt its LIFO discipline.
    """
    spec = json.dumps(
        {
            "workload": workload,
            "intra_job_workers": intra_job_workers,
            "speculative_ogis": speculative,
            "quick": quick,
        }
    )
    process = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--intra-child", spec],
        capture_output=True,
        text=True,
        cwd=str(_ROOT),
    )
    if process.returncode != 0:
        raise RuntimeError(f"intra child failed:\n{process.stderr[-2000:]}")
    return json.loads(process.stdout.strip().splitlines()[-1])


def _intra_child_main(spec_json: str) -> int:
    """Child-process entry point for one isolated intra-job measurement."""
    spec = json.loads(spec_json)
    record = _run_intra_engine(
        workload=spec["workload"],
        intra_job_workers=spec["intra_job_workers"],
        speculative=spec["speculative_ogis"],
        quick=spec["quick"],
    )
    print(json.dumps(record))
    return 0


def run_intra(quick: bool = False) -> dict:
    """Intra-job parity: sweeps under 2 lanes and speculative OGIS.

    Four isolated engine runs — the sweep workload sequentially and under
    ``intra_job_workers=2``, the deobfuscation corpus with speculation off
    and on — whose canonical result wires (results, certificates, per-job
    statistics deltas; only wall-clock fields dropped) must be
    byte-identical pairwise.  Wall ratios are recorded for context only:
    the lanes are Python threads, so the GIL bounds any real speedup.
    """
    sweep_sequential = _run_intra_isolated("sweep", 1, False, quick)
    sweep_parallel = _run_intra_isolated("sweep", 2, False, quick)
    speculation_off = _run_intra_isolated("speculation", 1, False, quick)
    speculation_on = _run_intra_isolated("speculation", 1, True, quick)
    sweep_sequential_wires = sweep_sequential.pop("result_wires")
    sweep_parallel_wires = sweep_parallel.pop("result_wires")
    speculation_off_wires = speculation_off.pop("result_wires")
    speculation_on_wires = speculation_on.pop("result_wires")
    on_intra = speculation_on["intra_statistics"]
    return {
        "sweep_sequential": sweep_sequential,
        "sweep_parallel": sweep_parallel,
        "speculation_off": speculation_off,
        "speculation_on": speculation_on,
        "sweep_results_byte_identical": (
            sweep_parallel_wires == sweep_sequential_wires
        ),
        "speculation_results_byte_identical": (
            speculation_on_wires == speculation_off_wires
        ),
        "wall_time_ratio_sweep_parallel_vs_sequential": (
            sweep_parallel["seconds"] / sweep_sequential["seconds"]
            if sweep_sequential["seconds"]
            else 0.0
        ),
        "wall_time_ratio_speculation_on_vs_off": (
            speculation_on["seconds"] / speculation_off["seconds"]
            if speculation_off["seconds"]
            else 0.0
        ),
        "speculation_rounds": (
            on_intra["speculation_wins"] + on_intra["speculation_losses"]
        ),
    }


def run_batch_throughput(quick: bool = False) -> dict:
    """Pooled vs per-job-fresh vs parallel engine runs over one job stream.

    The pooled engine leases persistent incremental solver sessions
    routed by problem shape, so repeated shapes hit warm bit-blast caches
    and sealed base scopes; the fresh engine rebuilds a solver per job
    (the pre-pool behaviour); the parallel engine is the pooled engine
    under ``EngineConfig(workers=2)``.  Verdicts must be identical across
    all three, the SAT work (variables, clauses) and the wall time must
    not exceed fresh when pooled, and the parallel run's results must be
    byte-identical to the sequential pooled run's.
    """
    repeats = 1 if quick else 2
    pooled = _run_engine_batch_isolated(True, quick, repeats=repeats)
    fresh = _run_engine_batch_isolated(False, quick, repeats=repeats)
    parallel = _run_engine_batch_isolated(True, quick, workers=2)
    pooled_wires = pooled.pop("result_wires")
    fresh_wires = fresh.pop("result_wires")
    parallel_wires = parallel.pop("result_wires")
    variables_saved = (
        1.0 - pooled["sat_variables"] / fresh["sat_variables"]
        if fresh["sat_variables"]
        else 0.0
    )
    clauses_saved = (
        1.0 - pooled["sat_clauses"] / fresh["sat_clauses"]
        if fresh["sat_clauses"]
        else 0.0
    )
    return {
        "pooled": pooled,
        "fresh": fresh,
        "parallel": parallel,
        "variables_reduction_vs_fresh": variables_saved,
        "clauses_reduction_vs_fresh": clauses_saved,
        "wall_time_ratio_pooled_vs_fresh": (
            pooled["seconds"] / fresh["seconds"] if fresh["seconds"] else 0.0
        ),
        "wall_time_ratio_parallel_vs_pooled": (
            parallel["seconds"] / pooled["seconds"] if pooled["seconds"] else 0.0
        ),
        "parallel_results_byte_identical": parallel_wires == pooled_wires,
        "conflicts_pooled_vs_fresh": (
            pooled["conflicts"],
            fresh["conflicts"],
        ),
    }


def run_suite(quick: bool = False, configs: dict | None = None) -> dict:
    """Run every workload under every ablation config and cross-check."""
    configs = configs or CONFIGS
    results: dict = {"suite": "smt-perf", "quick": quick, "configs": {}}
    for config_name, flags in configs.items():
        workloads = {
            workload_name: runner(dict(flags), quick)
            for workload_name, runner in WORKLOADS.items()
        }
        results["configs"][config_name] = {"flags": flags, "workloads": workloads}

    reference = results["configs"]["full"]["workloads"]
    verdicts_identical = all(
        record["workloads"][name]["verdicts"] == reference[name]["verdicts"]
        for record in results["configs"].values()
        for name in WORKLOADS
    )
    models_ok = all(
        record["workloads"][name]["models_ok"]
        for record in results["configs"].values()
        for name in WORKLOADS
    )
    full_clauses = reference["deobfuscation"]["sat_clauses"]
    baseline_clauses = results["configs"]["baseline"]["workloads"]["deobfuscation"][
        "sat_clauses"
    ]
    reduction = 1.0 - full_clauses / baseline_clauses if baseline_clauses else 0.0
    results["comparisons"] = {
        "deobfuscation_clauses_full": full_clauses,
        "deobfuscation_clauses_baseline": baseline_clauses,
        "deobfuscation_clause_reduction_vs_baseline": reduction,
    }
    batch = run_batch_throughput(quick=quick)
    results["batch"] = batch
    scheduler = run_scheduler_throughput()
    results["scheduler"] = scheduler
    intra = run_intra(quick=quick)
    results["intra"] = intra
    results["checks"] = {
        "verdicts_identical_across_configs": verdicts_identical,
        "models_satisfy_original_formulas": models_ok,
        "clause_reduction_target_met": reduction >= 0.25,
        "batch_verdicts_identical_pooled_vs_fresh": (
            batch["pooled"]["verdicts"] == batch["fresh"]["verdicts"]
        ),
        "batch_pooling_beats_fresh_on_sat_work": (
            batch["pooled"]["sat_variables"] < batch["fresh"]["sat_variables"]
            and batch["pooled"]["sat_clauses"] < batch["fresh"]["sat_clauses"]
        ),
        "batch_parallel_results_byte_identical": (
            batch["parallel_results_byte_identical"]
        ),
        # The quick stream is seconds long and CI machines are noisy, so
        # the wall-time bar is only enforced on the full 8-job stream; the
        # ratio itself is recorded in both modes.
        "batch_pooled_wall_time_le_fresh": (
            True if quick else batch["wall_time_ratio_pooled_vs_fresh"] <= 1.0
        ),
        # Per-CFG base scopes: the stream's second timing-analysis job
        # must land on its twin's warm session and answer its path
        # feasibility sweep from the check memo.
        "batch_timing_base_scope_reuse": (
            batch["pooled"].get("timing_second_job_session_reused") is True
            and batch["pooled"].get("timing_second_job_memo_hits", 0) > 0
        ),
        # Work stealing on the skewed 12-job stream: byte-identical to
        # sequential with the steal counter positive...
        "sched_skewed_parallel_byte_identical": (
            scheduler["batch1_results_byte_identical"]
        ),
        "sched_steal_counter_positive": scheduler["steals"] > 0,
        # ...and the rotated second batch answers moved shapes from the
        # shared cross-worker check memo.
        "sched_cross_worker_memo_hit": scheduler["cross_worker_memo_hits"] > 0,
        "sched_second_batch_verdicts_match": (
            scheduler["second_batch_verdicts_match"]
        ),
        # Intra-job parallelism: the sweep fan-out under two lanes and
        # the speculative OGIS lane must both be result-invisible —
        # byte-identical wires (results, certificates, per-job stat
        # deltas) — while the engine telemetry proves they actually ran.
        "intra_sweep_results_byte_identical": (
            intra["sweep_results_byte_identical"]
        ),
        "intra_sweep_lanes_active": (
            intra["sweep_parallel"]["intra_statistics"]["sweep_tasks"] > 0
            and intra["sweep_parallel"]["intra_statistics"]["replica_leases"] > 0
        ),
        "intra_speculation_results_byte_identical": (
            intra["speculation_results_byte_identical"]
        ),
        "intra_speculation_lane_active": intra["speculation_rounds"] > 0,
    }
    return results


def write_report(results: dict, output: Path) -> None:
    output.write_text(json.dumps(results, indent=2, sort_keys=False) + "\n")


def _print_summary(results: dict) -> None:
    print(f"\nSMT perf suite ({'quick' if results['quick'] else 'full'} workloads)")
    header = f"  {'config':<12}{'workload':<16}{'clauses':>9}{'vars':>8}{'props/s':>12}{'secs':>8}"
    print(header)
    print("  " + "-" * (len(header) - 2))
    for config_name, record in results["configs"].items():
        for workload_name, data in record["workloads"].items():
            print(
                f"  {config_name:<12}{workload_name:<16}"
                f"{data['sat_clauses']:>9}{data['sat_variables']:>8}"
                f"{data['propagations_per_sec']:>12.0f}{data['seconds']:>8.2f}"
            )
    comparisons = results["comparisons"]
    print(
        "  deobfuscation clause reduction vs baseline: "
        f"{comparisons['deobfuscation_clause_reduction_vs_baseline']:.1%}"
    )
    batch = results["batch"]
    print(
        f"  batch throughput ({batch['pooled']['jobs']} jobs): pooled "
        f"{batch['pooled']['sat_clauses']} clauses / "
        f"{batch['pooled']['sat_variables']} vars vs fresh "
        f"{batch['fresh']['sat_clauses']} clauses / "
        f"{batch['fresh']['sat_variables']} vars "
        f"({batch['clauses_reduction_vs_fresh']:.1%} fewer clauses, "
        f"{batch['variables_reduction_vs_fresh']:.1%} fewer vars)"
    )
    print(
        f"  batch wall time: pooled {batch['pooled']['seconds']:.2f}s vs "
        f"fresh {batch['fresh']['seconds']:.2f}s "
        f"(ratio {batch['wall_time_ratio_pooled_vs_fresh']:.3f}); "
        f"parallel workers=2 {batch['parallel']['seconds']:.2f}s "
        f"(byte-identical results: "
        f"{batch['parallel_results_byte_identical']})"
    )
    scheduler = results["scheduler"]
    print(
        f"  skewed stream ({scheduler['jobs']} jobs): steals "
        f"{scheduler['steals']} ({scheduler['stolen_jobs']} jobs), "
        f"cross-worker memo hits {scheduler['cross_worker_memo_hits']}, "
        f"parallel {scheduler['parallel_seconds']:.2f}s vs sequential "
        f"{scheduler['sequential_seconds']:.2f}s"
    )
    intra = results["intra"]
    print(
        f"  intra-job sweep ({intra['sweep_parallel']['jobs']} jobs): "
        f"2 lanes {intra['sweep_parallel']['seconds']:.2f}s vs sequential "
        f"{intra['sweep_sequential']['seconds']:.2f}s, "
        f"{intra['sweep_parallel']['intra_statistics']['sweep_tasks']} sweep tasks "
        f"(byte-identical: {intra['sweep_results_byte_identical']})"
    )
    print(
        f"  speculative OGIS ({intra['speculation_on']['jobs']} jobs): "
        f"{intra['speculation_on']['intra_statistics']['speculation_wins']} wins / "
        f"{intra['speculation_on']['intra_statistics']['speculation_losses']} losses "
        f"over {intra['speculation_rounds']} rounds "
        f"(byte-identical: {intra['speculation_results_byte_identical']})"
    )
    for check, passed in results["checks"].items():
        print(f"  [{'ok' if passed else 'FAIL'}] {check}")


def test_perf_suite(benchmark, tmp_path):
    """Pytest entry point (quick workloads; committed BENCH_perf.json is
    produced by the CLI run, so the report lands in a scratch dir here)."""
    from conftest import run_once

    results = run_once(benchmark, run_suite, quick=True)
    _print_summary(results)
    write_report(results, tmp_path / "BENCH_perf.json")
    assert results["checks"]["verdicts_identical_across_configs"]
    assert results["checks"]["models_satisfy_original_formulas"]
    assert results["checks"]["clause_reduction_target_met"], results["comparisons"]
    assert results["checks"]["batch_verdicts_identical_pooled_vs_fresh"]
    assert results["checks"]["batch_pooling_beats_fresh_on_sat_work"], results["batch"]
    assert results["checks"]["batch_parallel_results_byte_identical"], (
        results["batch"]["parallel"]
    )
    assert results["checks"]["batch_timing_base_scope_reuse"], results["batch"]["pooled"]
    assert results["checks"]["sched_skewed_parallel_byte_identical"], (
        results["scheduler"]
    )
    assert results["checks"]["sched_steal_counter_positive"], results["scheduler"]
    assert results["checks"]["sched_cross_worker_memo_hit"], results["scheduler"]
    assert results["checks"]["sched_second_batch_verdicts_match"], (
        results["scheduler"]
    )
    assert results["checks"]["intra_sweep_results_byte_identical"], (
        results["intra"]["sweep_parallel"]
    )
    assert results["checks"]["intra_sweep_lanes_active"], results["intra"]
    assert results["checks"]["intra_speculation_results_byte_identical"], (
        results["intra"]["speculation_on"]
    )
    assert results["checks"]["intra_speculation_lane_active"], results["intra"]
    # The pooled-vs-fresh wall-time bar is enforced on the full stream
    # only; here we assert the ratio is measured and recorded.
    assert isinstance(
        results["batch"]["wall_time_ratio_pooled_vs_fresh"], float
    )
    benchmark.extra_info.update(results["comparisons"])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small task subset (CI smoke job)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=_ROOT / "BENCH_perf.json",
        help="where to write the machine-readable report",
    )
    parser.add_argument(
        "--batch-child",
        metavar="SPEC_JSON",
        default=None,
        help="internal: run one isolated batch measurement and print JSON",
    )
    parser.add_argument(
        "--sched-child",
        action="store_true",
        help="internal: run the isolated scheduler workload and print JSON",
    )
    parser.add_argument(
        "--intra-child",
        metavar="SPEC_JSON",
        default=None,
        help="internal: run one isolated intra-job measurement and print JSON",
    )
    arguments = parser.parse_args(argv)
    if arguments.batch_child is not None:
        return _batch_child_main(arguments.batch_child)
    if arguments.sched_child:
        print(json.dumps(_run_sched_child()))
        return 0
    if arguments.intra_child is not None:
        return _intra_child_main(arguments.intra_child)
    results = run_suite(quick=arguments.quick)
    write_report(results, arguments.output)
    _print_summary(results)
    return 0 if all(results["checks"].values()) else 1


if __name__ == "__main__":
    raise SystemExit(main())
