"""Experiment E1/E2 — paper Figure 6 and the Section 3.3 WCET claim.

GameTime analyses modular exponentiation with an 8-bit exponent: 256
program paths, 9 feasible basis paths.  Only the basis paths are measured;
the (w, π) model then predicts the execution time of every path.  The
benchmark regenerates the predicted-vs-measured distribution (Figure 6 as
a histogram table) and checks the WCET claim: the predicted worst-case
path is the true worst case and its test case sets every exponent bit
(the analogue of "the 8-bit exponent is 255").
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.cfg import modular_exponentiation
from repro.gametime import ExhaustiveEstimator, GameTime, RandomTestingEstimator

EXPONENT_BITS = 8


def _figure6_experiment():
    task = modular_exponentiation(exponent_bits=EXPONENT_BITS, word_width=16)
    analysis = GameTime(task, trials=None, seed=0)
    analysis.prepare()
    report = analysis.predict_distribution(measure=True)
    estimate = analysis.estimate_wcet()
    truth = ExhaustiveEstimator(task).estimate()
    budget = analysis.timing_oracle.query_count
    random_baseline = RandomTestingEstimator(task, seed=1).estimate(budget=budget)
    return analysis, report, estimate, truth, random_baseline


def test_fig6_distribution_and_wcet(benchmark):
    analysis, report, estimate, truth, random_baseline = run_once(
        benchmark, _figure6_experiment
    )

    # --- Figure 6: predicted vs measured distribution ---------------------
    rows = [
        [f"{start}", str(predicted), str(measured)]
        for start, predicted, measured in report.histogram(bin_width=10)
        if predicted or measured
    ]
    print_table(
        "Figure 6 — execution-time distribution of modexp "
        f"({2 ** EXPONENT_BITS} paths from {analysis.num_basis_paths} basis paths)",
        ["cycles (bin start)", "predicted paths", "measured paths"],
        rows,
    )
    print_table(
        "Figure 6 / Section 3.3 — WCET",
        ["quantity", "value"],
        [
            ["paths", str(analysis.cfg.count_paths())],
            ["basis paths measured", str(analysis.num_basis_paths)],
            ["measurements used", str(analysis.timing_oracle.query_count)],
            ["mean |pred - meas| (cycles)", f"{report.mean_absolute_error:.3f}"],
            ["max |pred - meas| (cycles)", f"{report.max_absolute_error:.3f}"],
            ["predicted WCET (cycles)", f"{estimate.predicted_cycles:.1f}"],
            ["measured WCET on witness", str(estimate.measured_cycles)],
            ["exhaustive true WCET", str(truth.estimated_wcet)],
            ["WCET witness exponent", str(estimate.test_case["exponent"])],
            ["random testing, equal budget", str(random_baseline.estimated_wcet)],
        ],
    )

    # --- reproduction checks ------------------------------------------------
    assert analysis.num_basis_paths == EXPONENT_BITS + 1 == 9
    assert len(report.predictions) == 2 ** EXPONENT_BITS
    # "GameTime predicts the distribution perfectly" on the deterministic
    # platform: predictions match measurements path by path.
    assert report.max_absolute_error < 1.0
    # The WCET claim: predicted worst case equals the exhaustive ground
    # truth and its witness sets all exponent bits (255 in the paper).
    assert estimate.measured_cycles == truth.estimated_wcet
    assert estimate.test_case["exponent"] == 2 ** EXPONENT_BITS - 1

    benchmark.extra_info.update(
        {
            "paths": analysis.cfg.count_paths(),
            "basis_paths": analysis.num_basis_paths,
            "max_abs_error_cycles": report.max_absolute_error,
            "wcet_cycles": estimate.measured_cycles,
            "wcet_exponent": estimate.test_case["exponent"],
            "random_testing_wcet": random_baseline.estimated_wcet,
        }
    )
