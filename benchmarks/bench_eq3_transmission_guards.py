"""Experiment E5 — paper Eq. (3): transmission guards for the safety property.

Synthesizes the switching logic of the 3-gear automatic transmission at
the paper's two-decimal precision (ω grid step 0.01) and compares every
guard interval against the values printed in Eq. (3).  The reproduction
target is agreement of every endpoint to within a couple of grid steps.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.hybrid import PAPER_EQ3_GUARDS, make_transmission_synthesizer

OMEGA_STEP = 0.01
TOLERANCE = 0.05  # a few grid steps


def _synthesize_eq3():
    setup = make_transmission_synthesizer(
        dwell_time=0.0,
        omega_step=OMEGA_STEP,
        integration_step=0.02,
        horizon=80.0,
    )
    report = setup.synthesizer.synthesize()
    return setup, report


def test_eq3_guards(benchmark):
    setup, report = run_once(benchmark, _synthesize_eq3)
    rows = []
    worst_deviation = 0.0
    for name in sorted(PAPER_EQ3_GUARDS):
        expected_low, expected_high = PAPER_EQ3_GUARDS[name]
        interval = report.switching_logic[name].interval("omega")
        deviation = max(abs(interval.low - expected_low), abs(interval.high - expected_high))
        worst_deviation = max(worst_deviation, deviation)
        rows.append(
            [
                name,
                f"[{interval.low:.2f}, {interval.high:.2f}]",
                f"[{expected_low:.2f}, {expected_high:.2f}]",
                f"{deviation:.3f}",
            ]
        )
    g1nd = report.switching_logic["g1ND"]
    rows.append(["g1ND", g1nd.describe(), "theta = 1700 and omega = 0", "frozen"])
    print_table(
        "Eq. (3) — synthesized transmission guards (omega intervals)",
        ["guard", "synthesized", "paper", "max deviation"],
        rows,
    )
    print(f"  fixpoint iterations: {report.iterations}, "
          f"simulation (labeling) queries: {report.labeling_queries}")

    for name, (expected_low, expected_high) in PAPER_EQ3_GUARDS.items():
        interval = report.switching_logic[name].interval("omega")
        assert abs(interval.low - expected_low) <= TOLERANCE, name
        assert abs(interval.high - expected_high) <= TOLERANCE, name
    assert report.iterations <= 4
    benchmark.extra_info.update(
        {
            "iterations": report.iterations,
            "labeling_queries": report.labeling_queries,
            "worst_endpoint_deviation": worst_deviation,
        }
    )
