"""Experiment E6 — paper Eq. (4): guards with a 5-second dwell requirement.

Re-runs the transmission synthesis with a minimum dwell time of 5 seconds
in each of the six gear modes and prints the resulting guards next to the
intervals of Eq. (4).  The quantitative values of Eq. (4) depend on the
exact dwell-time algorithm of the companion ICCPS'10 paper (not fully
specified in the DAC paper), so the reproduction target here is the
qualitative shape: relative to the Eq. (3) guards, the dwell requirement
leaves every guard no wider, strictly tightens the majority of them, and
keeps the closed-loop system safe — deviations per guard are reported in
EXPERIMENTS.md.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.hybrid import (
    PAPER_EQ3_GUARDS,
    PAPER_EQ4_GUARDS,
    make_transmission_synthesizer,
)

OMEGA_STEP = 0.02


def _synthesize_both():
    plain = make_transmission_synthesizer(
        dwell_time=0.0, omega_step=OMEGA_STEP, integration_step=0.02, horizon=80.0
    ).synthesizer.synthesize()
    dwell = make_transmission_synthesizer(
        dwell_time=5.0, omega_step=OMEGA_STEP, integration_step=0.02, horizon=80.0
    ).synthesizer.synthesize()
    return plain, dwell


def test_eq4_dwell_time_guards(benchmark):
    plain, dwell = run_once(benchmark, _synthesize_both)
    rows = []
    tightened = 0
    for name in sorted(PAPER_EQ3_GUARDS):
        eq3_interval = plain.switching_logic[name].interval("omega")
        eq4_interval = dwell.switching_logic[name].interval("omega")
        paper_low, paper_high = PAPER_EQ4_GUARDS[name]
        if eq4_interval.width < eq3_interval.width - 1e-9:
            tightened += 1
        rows.append(
            [
                name,
                f"[{eq3_interval.low:.2f}, {eq3_interval.high:.2f}]",
                f"[{eq4_interval.low:.2f}, {eq4_interval.high:.2f}]",
                f"[{paper_low:.2f}, {paper_high:.2f}]",
            ]
        )
    print_table(
        "Eq. (4) — guards with a 5 s dwell time per gear mode",
        ["guard", "no dwell (Eq. 3 run)", "with dwell (this run)", "paper Eq. 4"],
        rows,
    )
    print(f"  guards strictly tightened by the dwell requirement: {tightened} / {len(rows)}")

    for name in PAPER_EQ3_GUARDS:
        eq3_width = plain.switching_logic[name].interval("omega").width
        eq4_width = dwell.switching_logic[name].interval("omega").width
        assert eq4_width <= eq3_width + 1e-9, name
    assert tightened >= 4
    assert not dwell.empty_guards
    benchmark.extra_info.update(
        {
            "guards_tightened": tightened,
            "iterations": dwell.iterations,
            "labeling_queries": dwell.labeling_queries,
        }
    )
