"""Experiment E13 — ablation: guard-grid precision vs. quality and cost.

The structure hypothesis of Section 5 requires guard vertices to lie on a
finite-precision grid.  This ablation sweeps the grid step for the
transmission synthesis and reports (a) how far the synthesized g12U guard
endpoints are from the analytic gear-2 safety boundary and (b) how many
simulation queries the synthesis needs: the error shrinks with the step
while the query count grows only logarithmically (binary search), which is
the scaling argument for hyperbox learning over exhaustive sweeps.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.hybrid import make_transmission_synthesizer, safe_speed_range

GRID_STEPS = (0.5, 0.1, 0.02)


def _sweep_grid_precision():
    expected_low, expected_high = safe_speed_range(2)
    rows = []
    for step in GRID_STEPS:
        setup = make_transmission_synthesizer(
            dwell_time=0.0, omega_step=step, integration_step=0.02, horizon=60.0
        )
        report = setup.synthesizer.synthesize()
        interval = report.switching_logic["g12U"].interval("omega")
        error = max(abs(interval.low - expected_low), abs(interval.high - expected_high))
        rows.append(
            {
                "step": step,
                "low": interval.low,
                "high": interval.high,
                "error": error,
                "queries": report.labeling_queries,
                "iterations": report.iterations,
            }
        )
    return expected_low, expected_high, rows


def test_grid_precision_ablation(benchmark):
    expected_low, expected_high, rows = run_once(benchmark, _sweep_grid_precision)
    print_table(
        "Ablation — grid precision vs. guard quality (guard g12U; analytic "
        f"boundary [{expected_low:.3f}, {expected_high:.3f}])",
        ["grid step", "synthesized g12U", "endpoint error", "simulation queries", "iterations"],
        [
            [
                f"{row['step']:.2f}",
                f"[{row['low']:.2f}, {row['high']:.2f}]",
                f"{row['error']:.3f}",
                str(row["queries"]),
                str(row["iterations"]),
            ]
            for row in rows
        ],
    )
    # Finer grids give strictly more accurate endpoints…
    errors = [row["error"] for row in rows]
    assert errors[-1] <= errors[0]
    assert errors[-1] <= rows[-1]["step"] + 1e-6
    # …while the query count grows far slower than the 1/step grid size.
    ratio_queries = rows[-1]["queries"] / rows[0]["queries"]
    ratio_grid = GRID_STEPS[0] / GRID_STEPS[-1]
    assert ratio_queries < ratio_grid
    benchmark.extra_info["rows"] = rows
