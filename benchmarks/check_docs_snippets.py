#!/usr/bin/env python3
"""Docs-as-tests: extract and execute the ``python`` snippets in docs/.

Documentation code that nobody runs rots silently — imports drift, API
names move, configs gain required fields.  This checker keeps the docs
honest the same way ``examples-smoke`` keeps ``examples/`` honest:

* every fenced code block in ``docs/*.md`` whose info string starts
  with ``python`` is executed in a **fresh subprocess** with
  ``PYTHONPATH=src`` from the repository root;
* a block whose info string also contains ``no-run`` (e.g.
  ```` ```python no-run ````) is an illustrative fragment — shown,
  counted, and skipped;
* any other fence language (``console``, plain ```` ``` ````) is
  ignored: shell transcripts and wire-format listings are not Python.

Each snippet runs in isolation, so docs never depend on each other's
state, and a snippet that leaks resources cannot poison the next one.
Failures print the snippet's location (file + starting line) and its
stderr, and the checker exits non-zero — the ``docs-snippets`` CI job
fails with it.

Usage::

    python benchmarks/check_docs_snippets.py            # all of docs/
    python benchmarks/check_docs_snippets.py docs/ARCHITECTURE.md
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent

#: Opening fence: three-plus backticks, an info string we capture.
_FENCE_OPEN = re.compile(r"^(?P<ticks>```+)(?P<info>[^`]*)$")


@dataclass(frozen=True)
class Snippet:
    """One fenced code block lifted from a markdown file."""

    path: Path
    line: int  # 1-based line of the opening fence
    info: str  # the fence info string, stripped
    source: str

    @property
    def label(self) -> str:
        try:
            shown = self.path.relative_to(_ROOT)
        except ValueError:  # e.g. a tmp-dir file under test
            shown = self.path
        return f"{shown}:{self.line}"

    @property
    def runnable(self) -> bool:
        words = self.info.split()
        return bool(words) and words[0] == "python" and "no-run" not in words


def extract_snippets(path: Path) -> list[Snippet]:
    """All fenced code blocks in ``path``, language-tagged or not."""
    snippets: list[Snippet] = []
    fence: str | None = None
    info = ""
    start = 0
    body: list[str] = []
    for number, raw in enumerate(path.read_text().splitlines(), start=1):
        if fence is None:
            match = _FENCE_OPEN.match(raw.strip())
            if match is not None:
                fence = match.group("ticks")
                info = match.group("info").strip()
                start = number
                body = []
        elif raw.strip() == fence:
            snippets.append(
                Snippet(path=path, line=start, info=info, source="\n".join(body))
            )
            fence = None
        else:
            body.append(raw)
    if fence is not None:
        raise ValueError(f"{path}: unterminated code fence opened at line {start}")
    return snippets


def run_snippet(snippet: Snippet, timeout: float) -> tuple[bool, str]:
    """Execute one snippet in a fresh interpreter; (ok, tail-of-output)."""
    environment = dict(os.environ)
    src = str(_ROOT / "src")
    existing = environment.get("PYTHONPATH")
    environment["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    try:
        process = subprocess.run(
            [sys.executable, "-c", snippet.source],
            capture_output=True,
            text=True,
            cwd=str(_ROOT),
            env=environment,
            timeout=timeout,
        )
    except subprocess.TimeoutExpired:
        return False, f"timed out after {timeout:.0f}s"
    if process.returncode != 0:
        return False, (process.stderr or process.stdout)[-2000:]
    return True, process.stdout[-500:]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="markdown files to check (default: every docs/*.md)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="per-snippet wall-clock limit in seconds",
    )
    arguments = parser.parse_args(argv)
    files = arguments.files or sorted((_ROOT / "docs").glob("*.md"))
    executed = skipped = ignored = 0
    failures: list[str] = []
    for path in files:
        for snippet in extract_snippets(path):
            words = snippet.info.split()
            if not words or words[0] != "python":
                ignored += 1
                continue
            if not snippet.runnable:
                skipped += 1
                print(f"  skip {snippet.label} (marked no-run)")
                continue
            ok, output = run_snippet(snippet, arguments.timeout)
            executed += 1
            if ok:
                print(f"  ok   {snippet.label}")
            else:
                failures.append(snippet.label)
                print(f"  FAIL {snippet.label}\n{output}")
    print(
        f"docs snippets: {executed} executed, {skipped} skipped (no-run), "
        f"{ignored} non-python fences ignored, {len(failures)} failed"
    )
    if not executed and not failures:
        # A docs overhaul that leaves zero runnable snippets should be
        # loud, not silently green.
        print("warning: no runnable python snippets found", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
