"""Tests for structure hypotheses (repro.core.hypothesis)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    FiniteHypothesis,
    GridSpec,
    HypothesisValidityEvidence,
    PredicateHypothesis,
    ProductHypothesis,
    StructureHypothesisError,
)


class TestFiniteHypothesis:
    def test_membership(self):
        hyp = FiniteHypothesis([1, 2, 3], name="small-ints")
        assert hyp.contains(2)
        assert not hyp.contains(7)

    def test_enumeration_matches_members(self):
        hyp = FiniteHypothesis(["a", "b"])
        assert sorted(hyp.enumerate()) == ["a", "b"]

    def test_empty_is_rejected(self):
        with pytest.raises(StructureHypothesisError):
            FiniteHypothesis([])

    def test_is_strict_restriction(self):
        assert FiniteHypothesis([1]).is_strict_restriction() is True

    def test_describe_mentions_size(self):
        assert "2 artifacts" in FiniteHypothesis([1, 2]).describe()


class TestPredicateHypothesis:
    def test_membership_uses_predicate(self):
        hyp = PredicateHypothesis(lambda x: x % 2 == 0, name="even")
        assert hyp.contains(4)
        assert not hyp.contains(5)

    def test_enumerate_not_supported(self):
        hyp = PredicateHypothesis(lambda x: True)
        with pytest.raises(NotImplementedError):
            list(hyp.enumerate())

    def test_validity_statement_mentions_name(self):
        hyp = PredicateHypothesis(lambda x: True, name="anything")
        assert "anything" in hyp.validity_statement()


class TestProductHypothesis:
    def test_membership_componentwise(self):
        product = ProductHypothesis(
            [FiniteHypothesis([1, 2]), FiniteHypothesis(["x", "y"])]
        )
        assert product.contains((1, "y"))
        assert not product.contains((3, "y"))
        assert not product.contains((1,))

    def test_enumeration_is_cartesian_product(self):
        product = ProductHypothesis(
            [FiniteHypothesis([1, 2]), FiniteHypothesis(["x"])]
        )
        assert sorted(product.enumerate()) == [(1, "x"), (2, "x")]

    def test_requires_factors(self):
        with pytest.raises(StructureHypothesisError):
            ProductHypothesis([])


class TestGridSpec:
    def test_num_points(self):
        grid = GridSpec(0.0, 1.0, 0.25)
        assert grid.num_points == 5

    def test_snap_clamps_and_rounds(self):
        grid = GridSpec(0.0, 10.0, 0.5)
        assert grid.snap(3.26) == pytest.approx(3.5)
        assert grid.snap(-4.0) == 0.0
        assert grid.snap(99.0) == 10.0

    def test_points_are_monotone(self):
        grid = GridSpec(0.0, 2.0, 0.5)
        points = list(grid.points())
        assert points == sorted(points)
        assert points[0] == 0.0
        assert points[-1] == 2.0

    def test_contains(self):
        grid = GridSpec(0.0, 1.0, 0.1)
        assert grid.contains(0.3)
        assert not grid.contains(0.35)
        assert not grid.contains(1.2)

    def test_invalid_step_rejected(self):
        with pytest.raises(StructureHypothesisError):
            GridSpec(0.0, 1.0, 0.0)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(StructureHypothesisError):
            GridSpec(2.0, 1.0, 0.1)

    @given(st.floats(min_value=-100, max_value=100, allow_nan=False))
    def test_snap_always_on_grid(self, value):
        grid = GridSpec(-10.0, 10.0, 0.25)
        snapped = grid.snap(value)
        assert grid.contains(snapped, tol=1e-9)
        assert -10.0 <= snapped <= 10.0


class TestHypothesisValidityEvidence:
    def test_summary_states(self):
        evidence = HypothesisValidityEvidence("h")
        assert "ASSUMED" in evidence.summary()
        evidence.proved = True
        assert "PROVED" in evidence.summary()
        evidence.counterexample = object()
        assert evidence.refuted
        assert "REFUTED" in evidence.summary()

    def test_checked_instances_reported(self):
        evidence = HypothesisValidityEvidence("h", checked_instances=3)
        assert "3 instance" in evidence.summary()

    def test_notes_accumulate(self):
        evidence = HypothesisValidityEvidence("h")
        evidence.add_note("first")
        evidence.add_note("second")
        assert evidence.notes == ["first", "second"]
