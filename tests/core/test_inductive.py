"""Tests for inductive engines (repro.core.inductive)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    CallableConsistency,
    FiniteHypothesis,
    FunctionLabelingOracle,
    GridSpec,
    BinarySearchIntervalLearner,
    InductionError,
    Interval,
    UnrealizableError,
    VersionSpaceEngine,
)


class TestInterval:
    def test_contains_and_width(self):
        interval = Interval(1.0, 3.0)
        assert interval.contains(2.0)
        assert not interval.contains(3.5)
        assert interval.width == pytest.approx(2.0)

    def test_empty_interval(self):
        empty = Interval(2.0, 1.0)
        assert empty.empty
        assert empty.width == 0.0
        assert not empty.contains(1.5)


class TestVersionSpace:
    def _make(self, candidates):
        hypothesis = FiniteHypothesis(candidates, name="thresholds")
        consistency = CallableConsistency(
            lambda artifact, example, label: (example >= artifact) == label
        )
        return VersionSpaceEngine(hypothesis, consistency)

    def test_survivors_shrink_with_examples(self):
        engine = self._make([0, 1, 2, 3, 4, 5])
        engine.observe(3, True)   # threshold <= 3
        engine.observe(1, False)  # threshold > 1
        assert set(engine.survivors()) == {2, 3}

    def test_infer_returns_a_survivor(self):
        engine = self._make([0, 1, 2, 3])
        engine.observe(2, True)
        assert engine.infer() in engine.survivors()

    def test_unrealizable_when_no_survivor(self):
        engine = self._make([5])
        engine.observe(1, True)  # would require threshold <= 1
        with pytest.raises(UnrealizableError):
            engine.infer()

    def test_statistics_track_examples(self):
        engine = self._make([0, 1])
        engine.observe_many([(0, True), (1, True)])
        assert engine.statistics.examples_consumed == 2

    def test_requires_enumerable_hypothesis(self):
        from repro.core import PredicateHypothesis

        with pytest.raises(InductionError):
            VersionSpaceEngine(
                PredicateHypothesis(lambda a: True),
                CallableConsistency(lambda a, e, l: True),
            )


def _interval_oracle(low, high):
    """Membership oracle for the target interval [low, high]."""
    return FunctionLabelingOracle(lambda value: low <= value <= high)


class TestBinarySearchIntervalLearner:
    def test_learns_exact_interval(self):
        grid = GridSpec(0.0, 10.0, 0.5)
        learner = BinarySearchIntervalLearner(grid, _interval_oracle(2.0, 7.5))
        interval = learner.learn(5.0)
        assert interval.low == pytest.approx(2.0)
        assert interval.high == pytest.approx(7.5)

    def test_interval_touching_edges(self):
        grid = GridSpec(0.0, 10.0, 1.0)
        learner = BinarySearchIntervalLearner(grid, _interval_oracle(0.0, 10.0))
        interval = learner.learn(4.0)
        assert (interval.low, interval.high) == (0.0, 10.0)

    def test_singleton_interval(self):
        grid = GridSpec(0.0, 10.0, 1.0)
        learner = BinarySearchIntervalLearner(grid, _interval_oracle(6.0, 6.0))
        interval = learner.learn(6.0)
        assert (interval.low, interval.high) == (6.0, 6.0)

    def test_negative_seed_raises(self):
        grid = GridSpec(0.0, 10.0, 1.0)
        learner = BinarySearchIntervalLearner(grid, _interval_oracle(2.0, 3.0))
        with pytest.raises(InductionError):
            learner.learn(8.0)

    def test_finds_local_interval_when_set_not_convex(self):
        # Positive set is [0, 1] ∪ [5, 8]; seeded in the right-hand block the
        # learner must return that block, not jump across the gap.
        grid = GridSpec(0.0, 10.0, 0.5)
        oracle = FunctionLabelingOracle(lambda v: v <= 1.0 or 5.0 <= v <= 8.0)
        learner = BinarySearchIntervalLearner(grid, oracle)
        interval = learner.learn(6.0)
        assert interval.low == pytest.approx(5.0)
        assert interval.high == pytest.approx(8.0)

    def test_query_count_logarithmic(self):
        grid = GridSpec(0.0, 1000.0, 0.01)  # 100001 grid points
        oracle = _interval_oracle(100.0, 900.0)
        learner = BinarySearchIntervalLearner(grid, oracle)
        learner.learn(500.0)
        # Galloping + binary search should need far fewer queries than the
        # grid size; allow a generous bound.
        assert oracle.query_count < 100

    @given(
        low_index=st.integers(min_value=0, max_value=40),
        width_=st.integers(min_value=0, max_value=40),
        seed_offset=st.integers(min_value=0, max_value=40),
    )
    def test_recovers_random_intervals(self, low_index, width_, seed_offset):
        grid = GridSpec(0.0, 20.0, 0.5)
        low = low_index * 0.5
        high = min(low + width_ * 0.5, 20.0)
        seed = min(low + (seed_offset % (width_ + 1)) * 0.5, high)
        learner = BinarySearchIntervalLearner(grid, _interval_oracle(low, high))
        interval = learner.learn(seed)
        assert interval.low == pytest.approx(low)
        assert interval.high == pytest.approx(high)
