"""Tests for oracle interfaces (repro.core.oracle)."""

import pytest

from repro.core import (
    BudgetExceededError,
    CheckResult,
    FunctionCounterexampleOracle,
    FunctionIOOracle,
    FunctionLabelingOracle,
)


class TestIOOracle:
    def test_query_returns_function_value(self):
        oracle = FunctionIOOracle(lambda x: x * 2)
        assert oracle.query(21) == 42

    def test_query_count_increments(self):
        oracle = FunctionIOOracle(lambda x: x)
        oracle.query(1)
        oracle.query(2)
        assert oracle.query_count == 2

    def test_budget_enforced(self):
        oracle = FunctionIOOracle(lambda x: x, max_queries=2)
        oracle.query(1)
        oracle.query(2)
        with pytest.raises(BudgetExceededError):
            oracle.query(3)

    def test_reset_count(self):
        oracle = FunctionIOOracle(lambda x: x, max_queries=1)
        oracle.query(1)
        oracle.reset_count()
        assert oracle.query_count == 0
        oracle.query(2)  # budget applies afresh


class TestLabelingOracle:
    def test_label(self):
        oracle = FunctionLabelingOracle(lambda x: x > 0)
        assert oracle.label(5) is True
        assert oracle.label(-5) is False
        assert oracle.query_count == 2


class TestCounterexampleOracle:
    def test_correct_artifact(self):
        oracle = FunctionCounterexampleOracle(lambda artifact: None)
        result = oracle.check("anything")
        assert result.correct
        assert result.counterexample is None

    def test_incorrect_artifact_returns_counterexample(self):
        oracle = FunctionCounterexampleOracle(lambda artifact: ("bad", artifact))
        result = oracle.check(7)
        assert not result.correct
        assert result.counterexample == ("bad", 7)

    def test_check_result_dataclass(self):
        result = CheckResult(correct=False, counterexample=3)
        assert result.counterexample == 3
