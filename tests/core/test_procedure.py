"""Tests for the sciduction procedure driver and deductive engine adapters."""

import pytest

from repro.core import (
    CallableEngine,
    DeductiveQuery,
    PredicateHypothesis,
    QueryKind,
    SciductionProcedure,
    SciductionResult,
)


class _ToyProcedure(SciductionProcedure[int]):
    """Synthesizes the number 42 (for exercising the base-class plumbing)."""

    name = "toy"

    def __init__(self):
        super().__init__(
            hypothesis=PredicateHypothesis(lambda x: x % 2 == 0, name="even-numbers"),
            inductive=None,
            deductive=CallableEngine(lambda payload: payload == 42, name="is-42"),
        )

    def soundness_argument(self) -> str:
        return "returns a constant that the deductive engine validated"

    def _run(self, **kwargs):
        answer = self.deductive.decide(42)
        return SciductionResult(success=bool(answer.verdict), artifact=42, iterations=1)


class TestSciductionProcedure:
    def test_run_attaches_certificate_and_timing(self):
        result = _ToyProcedure().run()
        assert result.success
        assert result.artifact == 42
        assert result.elapsed >= 0.0
        assert result.certificate is not None
        assert "even-numbers" in result.certificate.statement()
        assert "toy" in result.certificate.statement()

    def test_describe_lists_h_i_d(self):
        description = _ToyProcedure().describe()
        assert description["H"] == "even-numbers"
        assert description["D"] == "is-42"

    def test_deductive_queries_counted(self):
        result = _ToyProcedure().run()
        assert result.deductive_queries == 1

    def test_certificate_summary_contains_argument(self):
        certificate = _ToyProcedure().certificate()
        assert "constant" in certificate.summary()


class TestCallableEngine:
    def test_boolean_result(self):
        engine = CallableEngine(lambda payload: payload > 0)
        answer = engine.decide(5)
        assert answer.decided and answer.verdict is True

    def test_tuple_result_carries_witness(self):
        engine = CallableEngine(lambda payload: (True, payload * 2))
        answer = engine.decide(4)
        assert answer.witness == 8

    def test_statistics_recorded_per_kind(self):
        engine = CallableEngine(lambda payload: True)
        engine.answer(DeductiveQuery(QueryKind.GENERATE_EXAMPLE, None))
        engine.decide(1)
        assert engine.statistics.queries == 2
        assert engine.statistics.per_kind[QueryKind.GENERATE_EXAMPLE.value] == 1
        assert engine.statistics.per_kind[QueryKind.DECIDE.value] == 1
