"""Tests for the generic counterexample-guided loop (repro.core.cegis)."""

import pytest

from repro.core import (
    BudgetExceededError,
    CegisLoop,
    FunctionCounterexampleOracle,
    UnrealizableError,
)


def _threshold_generator(candidates):
    """Candidate generator: smallest threshold consistent with examples.

    Examples are (value, label) pairs meaning 'value >= threshold is label'.
    """

    def generate(examples):
        for threshold in candidates:
            if all((value >= threshold) == label for value, label in examples):
                return threshold
        raise UnrealizableError("no consistent threshold")

    return generate


class TestCegisLoop:
    def test_converges_to_target(self):
        target = 4

        def check(candidate):
            # Verifier: find a value where candidate and target disagree.
            for value in range(0, 10):
                if (value >= candidate) != (value >= target):
                    return (value, value >= target)
            return None

        loop = CegisLoop(
            generate=_threshold_generator(range(0, 10)),
            verifier=FunctionCounterexampleOracle(check),
        )
        outcome = loop.run()
        assert outcome.success
        assert outcome.artifact == target
        assert outcome.realizable
        assert outcome.iterations >= 1

    def test_unrealizable_reported(self):
        loop = CegisLoop(
            generate=_threshold_generator([100]),
            verifier=FunctionCounterexampleOracle(lambda c: (0, True)),
            seed_examples=[(0, True), (200, False)],
        )
        outcome = loop.run()
        assert not outcome.success
        assert not outcome.realizable

    def test_budget_exceeded_raises(self):
        # Verifier always returns a fresh counterexample consistent with
        # everything, so the loop cannot converge.
        counter = iter(range(1000))

        loop = CegisLoop(
            generate=lambda examples: 0,
            verifier=FunctionCounterexampleOracle(lambda c: (next(counter), True)),
            max_iterations=5,
        )
        with pytest.raises(BudgetExceededError):
            loop.run()

    def test_examples_accumulate(self):
        target = 7

        def check(candidate):
            for value in range(0, 12):
                if (value >= candidate) != (value >= target):
                    return (value, value >= target)
            return None

        loop = CegisLoop(
            generate=_threshold_generator(range(0, 12)),
            verifier=FunctionCounterexampleOracle(check),
        )
        outcome = loop.run()
        assert len(outcome.examples) == outcome.iterations - 1
        assert len(outcome.candidates) == outcome.iterations
