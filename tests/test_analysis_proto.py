"""PROTO01: frame construction, dispatch, and cross-module coverage.

Runs the checker against a toy two-op vocabulary so the tests stay
decoupled from the real cluster registry; the repo gate
(``test_repo_is_lint_clean``) is what holds the shipping modules to
:data:`repro.cluster.protocol.PROTOCOL_OPS`.
"""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.proto import check_op_coverage, check_protocol_usage
from repro.cluster.protocol import OpSpec

TOY_REGISTRY = {
    "job": OpSpec("job", ("payload",), ("boss",), ("worker",)),
    "done": OpSpec("done", ("job_id",), ("worker",), ("boss",)),
}
TOY_CONSTANTS = {"OP_JOB": "job", "OP_DONE": "done"}


def _check(source: str, module: str):
    tree = ast.parse(textwrap.dedent(source))
    return check_protocol_usage(
        tree, "probe.py", module, TOY_REGISTRY, TOY_CONSTANTS
    )


# -- frame-construction sites -----------------------------------------------


def test_declared_frame_with_constant_op_is_clean():
    findings, _ = _check('frame = {"op": OP_JOB, "payload": work}\n', "boss")
    assert findings == []


def test_unknown_op_fails():
    findings, _ = _check('frame = {"op": "bogus"}\n', "boss")
    assert [f.rule for f in findings] == ["PROTO01"]
    assert "not declared" in findings[0].message


def test_missing_required_field_fails():
    findings, _ = _check('frame = {"op": "job"}\n', "boss")
    assert len(findings) == 1
    assert "missing required field(s) ['payload']" in findings[0].message


def test_splat_tolerates_missing_fields():
    findings, _ = _check('frame = {"op": "job", **extra}\n', "boss")
    assert findings == []


def test_undeclared_sender_fails():
    findings, _ = _check(
        'frame = {"op": OP_JOB, "payload": work}\n', "worker"
    )
    assert len(findings) == 1
    assert "declares senders" in findings[0].message


def test_non_literal_op_fails():
    findings, _ = _check('frame = {"op": pick_an_op()}\n', "boss")
    assert len(findings) == 1
    assert "statically checkable" in findings[0].message


# -- dispatch sites ---------------------------------------------------------


def test_dispatch_on_declared_ops_is_recorded():
    source = """
    op = frame.get("op")
    if op == OP_JOB:
        pass
    elif op in ("done",):
        pass
    """
    findings, handled = _check(source, "worker")
    assert findings == []
    assert handled == {"job", "done"}


def test_dispatch_on_undeclared_op_fails():
    source = """
    if frame.get("op") == "bogus":
        pass
    """
    findings, handled = _check(source, "worker")
    assert [f.rule for f in findings] == ["PROTO01"]
    assert handled == set()


def test_dispatch_against_unresolvable_comparator_is_skipped():
    source = """
    op = frame.get("op")
    if op is None:
        pass
    if op == fallback:
        pass
    """
    findings, handled = _check(source, "worker")
    assert findings == []
    assert handled == set()


def test_reassigned_name_stops_being_an_op():
    source = """
    op = frame.get("op")
    op = other_thing
    if op == "bogus":
        pass
    """
    findings, _ = _check(source, "worker")
    assert findings == []


# -- cross-module coverage --------------------------------------------------


def test_coverage_clean_when_receivers_handle_their_ops():
    handled = {"worker": {"job"}, "boss": {"done"}}
    assert check_op_coverage(handled, {}, TOY_REGISTRY) == []


def test_unhandled_declared_op_fails():
    handled = {"worker": set(), "boss": {"done"}}
    findings = check_op_coverage(
        handled, {"worker": "cluster/worker.py"}, TOY_REGISTRY
    )
    assert len(findings) == 1
    assert findings[0].path == "cluster/worker.py"
    assert "never dispatches" in findings[0].message


def test_dispatch_outside_declared_receivers_fails():
    handled = {"worker": {"job", "done"}, "boss": {"done"}}
    findings = check_op_coverage(handled, {}, TOY_REGISTRY)
    assert len(findings) == 1
    assert "does not declare it a receiver" in findings[0].message
