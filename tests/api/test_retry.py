"""Per-job retry budget: crash supervision, fault chains, backoff.

``EngineConfig.job_retry_limit`` bounds how many times a job may be
retried after a worker-process crash (parallel path) before it reaches a
terminal ``failed`` state; the terminal record carries the full fault
chain, one entry per consumed attempt, so a persistent fault is
distinguishable from a transient one.  ``retry_backoff`` spaces the
attempts exponentially.  The ``engine.crash``/``engine.slow`` fault
sites prove in-process execution faults fold into job outcomes instead
of propagating.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.api import (
    EngineConfig,
    JobState,
    ProblemSpec,
    SciductionEngine,
    register_problem_type,
)
from repro.core.exceptions import ReproError
from repro.core.procedure import SciductionResult
from repro.testing import faults

DEOB = {"kind": "deobfuscation", "task": "multiply45", "width": 4, "seed": 0}


@register_problem_type
@dataclass
class _CrashyProblem(ProblemSpec):
    """Worker-killing stunt problem for retry-budget tests.

    ``crash-always`` kills the worker process on every attempt;
    ``crash-once`` kills it only until the marker file exists (so the
    retried attempt, in a replacement worker, succeeds); ``echo``
    returns immediately.
    """

    kind: ClassVar[str] = "test-retry-stunt"
    needs_solver: ClassVar[bool] = False

    mode: str = "echo"
    marker: str = ""

    def run(self, context=None) -> SciductionResult:
        if self.mode == "crash-always":
            os._exit(13)
        elif self.mode == "crash-once" and not os.path.exists(self.marker):
            with open(self.marker, "w") as handle:
                handle.write("attempted")
            os._exit(13)
        return SciductionResult(success=True, verdict=True, details={})


class TestConfigKnobs:
    def test_validation(self):
        with pytest.raises(ReproError):
            EngineConfig(job_retry_limit=-1)
        with pytest.raises(ReproError):
            EngineConfig(retry_backoff=-0.1)

    def test_wire_round_trip(self):
        config = EngineConfig(job_retry_limit=3, retry_backoff=0.5)
        rebuilt = EngineConfig.from_dict(config.to_dict())
        assert rebuilt.job_retry_limit == 3
        assert rebuilt.retry_backoff == 0.5


class TestCrashRetryBudget:
    def test_exhausted_budget_reports_the_fault_chain(self):
        engine = SciductionEngine(EngineConfig(workers=2, job_retry_limit=1))
        doomed = engine.submit(_CrashyProblem(mode="crash-always"))
        # A companion job keeps the batch on the multi-process path
        # (single-job batches run in-process, where a crash stunt would
        # take the test runner down with it).
        survivor = engine.submit(_CrashyProblem(mode="echo"))
        results = engine.run_batch()
        assert survivor.state is JobState.COMPLETED
        assert doomed.state is JobState.FAILED
        assert "retry budget of 1 exhausted" in (doomed.error or "")
        chain = results[0].details["fault_chain"]
        assert chain == [
            "worker process crashed (attempt 1)",
            "worker process crashed (attempt 2)",
        ]

    def test_zero_budget_disables_retries(self):
        engine = SciductionEngine(EngineConfig(workers=2, job_retry_limit=0))
        doomed = engine.submit(_CrashyProblem(mode="crash-always"))
        engine.submit(_CrashyProblem(mode="echo"))  # keep the batch parallel
        results = engine.run_batch()
        assert doomed.state is JobState.FAILED
        assert "retry budget of 0 exhausted" in (doomed.error or "")
        assert results[0].details["fault_chain"] == [
            "worker process crashed (attempt 1)",
        ]

    def test_recovery_within_budget_leaves_no_fault_chain(self, tmp_path):
        engine = SciductionEngine(EngineConfig(workers=2, job_retry_limit=1))
        flaky = engine.submit(
            _CrashyProblem(mode="crash-once", marker=str(tmp_path / "attempt"))
        )
        engine.submit(_CrashyProblem(mode="echo"))  # keep the batch parallel
        results = engine.run_batch()
        assert flaky.state is JobState.COMPLETED
        # A successful job never advertises the crashes it survived in
        # its result (the journal/service layer is where supervision
        # history lives); the attempt marker proves the crash happened.
        assert "fault_chain" not in results[0].details
        assert (tmp_path / "attempt").exists()

    def test_backoff_spaces_the_attempts(self):
        engine = SciductionEngine(
            EngineConfig(workers=2, job_retry_limit=1, retry_backoff=0.2)
        )
        doomed = engine.submit(_CrashyProblem(mode="crash-always"))
        engine.submit(_CrashyProblem(mode="echo"))  # keep the batch parallel
        start = time.monotonic()
        engine.run_batch()
        elapsed = time.monotonic() - start
        assert doomed.state is JobState.FAILED
        # One retry at backoff * 2**0: the batch cannot finish faster
        # than the injected pause.
        assert elapsed >= 0.2


class TestEngineFaultSites:
    @pytest.mark.sequential_only
    def test_engine_crash_fault_folds_into_failed_result(self):
        engine = SciductionEngine(EngineConfig(workers=1))
        with faults.injected({"engine.crash": faults.Fault("raise", "EIO")}):
            job = engine.submit(dict(DEOB))
            results = engine.run_batch()
        assert job.state is JobState.FAILED
        assert "engine.crash" in (job.error or "")
        assert results[0].details["outcome"] == "failed"

    @pytest.mark.sequential_only
    def test_engine_slow_fault_only_delays(self):
        engine = SciductionEngine(EngineConfig(workers=1))
        with faults.injected({"engine.slow": faults.Fault("sleep", "0.05")}):
            job = engine.submit(dict(DEOB))
            engine.run_batch()
        assert job.state is JobState.COMPLETED
        assert job.elapsed >= 0.05
