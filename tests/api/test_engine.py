"""SciductionEngine: batch lifecycle, verdict parity, budgets, determinism."""

import json

import pytest

from repro.api import (
    DeobfuscationProblem,
    EngineConfig,
    JobState,
    SciductionEngine,
    SwitchingLogicProblem,
    TimingAnalysisProblem,
    result_from_dict,
    result_to_dict,
)

#: Small, fast instances of all three problem types.
DEOB = DeobfuscationProblem(task="multiply45", width=4, seed=0)
TIMING = TimingAnalysisProblem(
    program="bounded_linear_search",
    program_args={"length": 3, "word_width": 16},
    bound=250,
    seed=0,
)
SWITCHING = SwitchingLogicProblem(
    system="transmission", omega_step=0.5, integration_step=0.05, horizon=40.0
)


def _verdict_tuple(result):
    return (result.success, result.verdict)


class TestBatchLifecycle:
    def test_all_three_problem_types_run_through_one_batch(self):
        engine = SciductionEngine(EngineConfig())
        results = engine.run_batch([DEOB, TIMING, SWITCHING])
        assert [result.success for result in results] == [True, True, True]
        assert all(result.certificate is not None for result in results)
        assert all("hid" in result.details for result in results)
        # SMT-backed jobs report per-job solver work; the simulation-backed
        # job does not draw on the pool at all.
        assert "smt_job_statistics" in results[0].details["engine"]
        assert results[2].details["engine"]["pooled"] is False

    @pytest.mark.sequential_only  # artifact objects stay in-process
    def test_verdicts_match_direct_entry_points(self):
        engine = SciductionEngine(EngineConfig())
        deob_result, timing_result, switching_result = engine.run_batch(
            [DEOB, TIMING, SWITCHING]
        )

        # Direct OGIS entry point.
        from repro.ogis import (
            OgisSynthesizer, ProgramIOOracle, multiply45_library,
            multiply45_obfuscated, multiply45_reference,
        )

        oracle = ProgramIOOracle(
            lambda values: multiply45_obfuscated(values, 4), 1, 1, 4
        )
        direct = OgisSynthesizer(multiply45_library(), oracle, width=4, seed=0)
        program = direct.synthesize()
        assert deob_result.verdict == bool(
            program.equivalent_to(lambda values: multiply45_reference(values, 4), width=4)
        )
        # The engine may find a syntactically different (but equally
        # valid) program — scoped pooled sessions perturb SAT decision
        # order — so parity is semantic, not syntactic.
        assert deob_result.artifact.equivalent_to(
            lambda values: multiply45_reference(values, 4), width=4
        )

        # Direct GameTime entry point.
        from repro.cfg import bounded_linear_search
        from repro.gametime import GameTime

        analysis = GameTime(bounded_linear_search(3, 16), seed=0)
        answer = analysis.answer_timing_query(bound=250)
        assert timing_result.verdict == answer.within_bound
        assert (
            timing_result.details["wcet_measured"]
            == answer.witness.measured_cycles
        )

        # Direct switching-logic entry point.
        from repro.hybrid import make_transmission_synthesizer

        setup = make_transmission_synthesizer(
            dwell_time=0.0, omega_step=0.5, integration_step=0.05, horizon=40.0
        )
        report = setup.synthesizer.synthesize()
        assert switching_result.success == all(
            not box.is_empty for box in report.switching_logic.values()
        )
        assert {
            name: box.describe() for name, box in report.switching_logic.items()
        } == {
            name: box.describe() for name, box in switching_result.artifact.items()
        }

    def test_wire_format_submission(self):
        engine = SciductionEngine()
        result = engine.run(DEOB.to_dict())
        assert result.success and result.verdict is True

    def test_results_in_submission_order_with_labels(self):
        engine = SciductionEngine()
        engine.submit(DEOB, label="first")
        engine.submit(TIMING, label="second")
        results = engine.run_batch()
        assert results[0].details["engine"]["label"] == "first"
        assert results[1].details["engine"]["label"] == "second"


class TestBudgetsTimeoutsCancellation:
    def test_conflict_budget_exhaustion_is_structured(self):
        engine = SciductionEngine()
        job = engine.submit(
            DeobfuscationProblem(task="interchange", width=8, seed=1),
            max_conflicts=0,
        )
        (result,) = engine.run_batch()
        assert job.state is JobState.BUDGET_EXHAUSTED
        assert result.success is False
        assert result.details["outcome"] == "budget-exhausted"
        assert "budget" in (job.error or "")

    def test_budget_does_not_leak_into_next_job(self):
        engine = SciductionEngine()
        engine.submit(DeobfuscationProblem(task="multiply45", width=4, seed=0),
                      max_conflicts=0)
        unbudgeted = engine.submit(
            DeobfuscationProblem(task="multiply45", width=4, seed=0)
        )
        engine.run_batch()
        assert unbudgeted.state is JobState.COMPLETED
        assert unbudgeted.result.verdict is True

    def test_timeout_preempts_the_job(self):
        engine = SciductionEngine()
        job = engine.submit(
            DeobfuscationProblem(task="interchange", width=8, seed=1),
            timeout=0.0,
        )
        (result,) = engine.run_batch()
        assert job.state is JobState.TIMED_OUT
        assert result.details["outcome"] == "timed-out"

    def test_cancelled_jobs_never_run(self):
        engine = SciductionEngine()
        keep = engine.submit(DEOB)
        cancelled = engine.submit(DEOB)
        assert engine.cancel(cancelled)
        results = engine.run_batch()
        assert len(results) == 1
        assert keep.state is JobState.COMPLETED
        assert cancelled.state is JobState.CANCELLED
        assert cancelled.result.details["outcome"] == "cancelled"
        # A finished job cannot be cancelled.
        assert not engine.cancel(keep)

    def test_failed_jobs_are_reported_not_raised(self):
        engine = SciductionEngine()
        result = engine.run(
            TimingAnalysisProblem(program="nonexistent-program")
        )
        assert result.success is False
        assert result.details["outcome"] == "failed"
        assert engine.jobs[-1].state is JobState.FAILED

    def test_deadline_preempts_simulation_backed_job(self):
        """Wall-clock deadlines must reach the reachability oracle.

        Switching-logic jobs have no SAT loop to poll the clock in; the
        deadline hook on the simulation oracle is what preempts them.
        """
        engine = SciductionEngine()
        job = engine.submit(
            SwitchingLogicProblem(
                system="transmission",
                omega_step=0.5,
                integration_step=0.05,
                horizon=40.0,
            ),
            timeout=0.0,
        )
        (result,) = engine.run_batch()
        assert job.state is JobState.TIMED_OUT
        assert result.success is False
        assert result.details["outcome"] == "timed-out"
        assert "deadline" in (job.error or "")

    def test_budget_exhausted_ogis_job_is_resumable(self):
        """Partial examples survive budget exhaustion and seed a resume.

        multiply45/w4/seed0 needs two OGIS iterations; a one-iteration
        budget must surface the learned example set in the result payload,
        and resubmitting with it must finish without re-learning.
        """
        engine = SciductionEngine()
        job = engine.submit(
            DeobfuscationProblem(
                task="multiply45", width=4, seed=0, max_iterations=1
            )
        )
        (result,) = engine.run_batch()
        assert job.state is JobState.BUDGET_EXHAUSTED
        partial = result.details["partial"]
        assert partial["iterations"] == 1
        assert len(partial["examples"]) == 2  # seed example + 1 learned

        resumed = engine.run(
            DeobfuscationProblem(
                task="multiply45",
                width=4,
                seed=0,
                max_iterations=1,  # the same budget now suffices
                examples=partial["examples"],
            )
        )
        assert resumed.success and resumed.verdict is True
        # No random seeding phase: the resumed run starts from the
        # surfaced evidence and needs no further oracle queries to
        # reconstruct it.
        assert resumed.oracle_queries < 2


class TestSchedulingDeterminism:
    PROBLEMS = [
        DeobfuscationProblem(task="multiply45", width=4, seed=0),
        TimingAnalysisProblem(
            program="bounded_linear_search",
            program_args={"length": 3, "word_width": 16},
            bound=250,
        ),
        DeobfuscationProblem(task="multiply45", width=5, seed=0),
    ]

    def _verdicts(self, config, order):
        engine = SciductionEngine(config)
        problems = [self.PROBLEMS[index] for index in order]
        results = engine.run_batch(problems)
        by_problem = {}
        for index, result in zip(order, results):
            by_problem[index] = _verdict_tuple(result)
        return by_problem

    def test_batch_verdicts_independent_of_pool_scheduling(self):
        baseline = self._verdicts(
            EngineConfig(reuse_sessions=False), order=[0, 1, 2]
        )
        for config in (
            EngineConfig(pool_size=1),
            EngineConfig(pool_size=2),
        ):
            for order in ([0, 1, 2], [2, 1, 0], [1, 2, 0]):
                assert self._verdicts(config, order) == baseline


class TestResultSerialization:
    def test_result_json_roundtrip(self):
        engine = SciductionEngine()
        result = engine.run(DEOB)
        wire = result_to_dict(result)
        parsed = json.loads(json.dumps(wire))
        rebuilt = result_from_dict(parsed)
        assert result_to_dict(rebuilt)["success"] == wire["success"]
        assert rebuilt.verdict == result.verdict
        assert rebuilt.iterations == result.iterations
        assert rebuilt.certificate.statement() == result.certificate.statement()
        assert rebuilt.details["engine"]["job_id"] == (
            result.details["engine"]["job_id"]
        )
        # The artifact itself does not cross the wire; its repr does.
        assert rebuilt.artifact is None
        assert rebuilt.details["artifact_repr"] == repr(result.artifact)

    def test_batch_report_is_json_serializable(self):
        engine = SciductionEngine()
        engine.run_batch([DEOB, SWITCHING])
        report = engine.batch_report()
        assert len(report) == 2
        json.dumps(report)  # must not raise
        assert report[0]["problem"]["kind"] == "deobfuscation"


class TestSharedStateLockDiscipline:
    """Regression tests for races the lock-discipline lint (now LOCK02) surfaced.

    ``submit`` used to append to ``_jobs`` without ``_state_lock`` while
    ``prune`` (called from the service's runner thread) swapped the list
    under it — an append landing between prune's copy and its swap was
    silently dropped, losing the job handle.
    """

    def test_concurrent_submit_and_prune_loses_no_handles(self):
        import threading

        engine = SciductionEngine(EngineConfig())
        per_thread, threads = 200, 4
        start = threading.Barrier(threads + 2)  # submitters + pruner + main
        done = threading.Event()

        def submitter():
            start.wait()
            for _ in range(per_thread):
                engine.submit(DEOB)

        def pruner():
            start.wait()
            while not done.is_set():
                engine.prune()  # nothing is finished; must keep all

        workers = [threading.Thread(target=submitter) for _ in range(threads)]
        chaos = threading.Thread(target=pruner)
        for worker in workers:
            worker.start()
        chaos.start()
        start.wait()
        for worker in workers:
            worker.join()
        done.set()
        chaos.join()
        assert len(engine.jobs) == per_thread * threads

    def test_worker_statistics_snapshot_is_consistent(self):
        # statistics() is served to HTTP threads while batches complete;
        # the workers map must be read under the state lock.
        engine = SciductionEngine(EngineConfig(workers=2))
        try:
            engine.run_batch([DEOB, TIMING])
            stats = engine.statistics()
            assert set(stats) == {
                "pool", "scheduler", "workers", "shared_memo", "intra_job",
            }
            json.dumps(stats)  # must stay JSON-ready
        finally:
            engine.close()
