"""Problem-spec declarations: JSON round-trips and registry dispatch."""

import json

from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.api import (
    DeobfuscationProblem,
    ProblemSpec,
    SwitchingLogicProblem,
    TimingAnalysisProblem,
    deobfuscation_task_names,
    problem_from_dict,
    problem_types,
    register_problem_type,
    timing_program_names,
)
from repro.core.exceptions import ReproError


class TestSpecRoundTrips:
    SPECS = [
        DeobfuscationProblem(task="interchange", width=6, seed=3,
                             max_iterations=11, initial_examples=2),
        TimingAnalysisProblem(program="bounded_linear_search",
                              program_args={"length": 3, "word_width": 16},
                              bound=250, trials=9, seed=4),
        SwitchingLogicProblem(system="transmission", dwell_time=5.0,
                              omega_step=0.25, horizon=40.0,
                              validate_corners=True),
    ]

    @pytest.mark.parametrize("spec", SPECS, ids=lambda spec: spec.kind)
    def test_roundtrip_through_registry(self, spec):
        data = spec.to_dict()
        assert data["kind"] == spec.kind
        rebuilt = problem_from_dict(data)
        assert type(rebuilt) is type(spec)
        assert rebuilt == spec
        # The wire form is genuinely JSON-serializable.
        import json

        assert problem_from_dict(json.loads(json.dumps(data))) == spec

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown problem kind"):
            problem_from_dict({"kind": "alchemy"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ReproError, match="unknown fields"):
            problem_from_dict({"kind": "deobfuscation", "task": "multiply45",
                               "librarry": []})

    def test_builtin_kinds_registered(self):
        kinds = problem_types()
        assert {"deobfuscation", "timing-analysis", "switching-logic"} <= set(kinds)

    def test_name_catalogues(self):
        assert "multiply45" in deobfuscation_task_names()
        assert "multiply45_insufficient" in deobfuscation_task_names()
        assert "modular_exponentiation" in timing_program_names()


class TestRegistryExtension:
    def test_new_problem_type_plugs_in_without_touching_the_engine(self):
        @register_problem_type
        @dataclass
        class NullProblem(ProblemSpec):
            kind: ClassVar[str] = "test-null"
            needs_solver: ClassVar[bool] = False
            marker: int = 7

        try:
            rebuilt = problem_from_dict({"kind": "test-null", "marker": 9})
            assert isinstance(rebuilt, NullProblem) and rebuilt.marker == 9
        finally:
            problem_types_registry = __import__(
                "repro.api.problems", fromlist=["_PROBLEM_TYPES"]
            )._PROBLEM_TYPES
            problem_types_registry.pop("test-null", None)

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ReproError, match="already registered"):
            @register_problem_type
            @dataclass
            class Impostor(ProblemSpec):
                kind: ClassVar[str] = "deobfuscation"

    def test_abstract_kind_rejected(self):
        with pytest.raises(ReproError, match="concrete 'kind'"):
            @register_problem_type
            @dataclass
            class Nameless(ProblemSpec):
                pass

    def test_unknown_task_names_fail_loudly(self):
        with pytest.raises(ReproError, match="unknown deobfuscation task"):
            DeobfuscationProblem(task="nonexistent").build()
        with pytest.raises(ReproError, match="unknown timing-analysis program"):
            TimingAnalysisProblem(program="nonexistent").build()
        with pytest.raises(ReproError, match="unknown switching-logic system"):
            SwitchingLogicProblem(system="nonexistent").build()


class TestShapeKeys:
    def test_shape_keys_encode_kind_and_width(self):
        assert DeobfuscationProblem(width=4).shape_key() == "deobfuscation/w4"
        assert DeobfuscationProblem(width=8).shape_key() == "deobfuscation/w8"
        timing = TimingAnalysisProblem(
            program="bounded_linear_search", program_args={"word_width": 16}
        )
        assert timing.shape_key() == "timing-analysis/bounded_linear_search/w16"
        assert SwitchingLogicProblem().shape_key() == "switching-logic"

    def test_same_shape_means_same_key_different_seeds(self):
        a = DeobfuscationProblem(task="multiply45", width=4, seed=0)
        b = DeobfuscationProblem(task="multiply45", width=4, seed=7)
        assert a.shape_key() == b.shape_key()


class TestResumableExamples:
    def test_examples_survive_the_wire(self):
        spec = DeobfuscationProblem(
            task="multiply45",
            width=4,
            examples=[[[3], [7]], [[5], [1]]],
        )
        rebuilt = problem_from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert rebuilt.examples == [[[3], [7]], [[5], [1]]]

    def test_examples_seed_the_synthesizer_trace(self):
        spec = DeobfuscationProblem(
            task="multiply45", width=4, examples=[[[3], [7]]]
        )
        procedure = spec.build()
        assert [
            (list(example.inputs), list(example.outputs))
            for example in procedure.trace.examples
        ] == [([3], [7])]
