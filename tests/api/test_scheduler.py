"""Work-stealing scheduler: plan determinism, stealing rules, engine parity.

The plan and the dispatch loop are tested directly with fake transports
(deterministic, no processes); the engine-level tests then drive real
worker processes over a skewed stream and assert the three service-grade
properties: byte-identical results, a positive steal counter, and
cross-worker shared-memo hits once a long-lived engine re-plans a
repeated stream.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.api import (
    DeobfuscationProblem,
    EngineConfig,
    JobState,
    ProblemSpec,
    SciductionEngine,
    TimingAnalysisProblem,
    register_problem_type,
    result_wire_canonical,
)
from repro.api.scheduler import ShapePlan, SchedulerStatistics, WorkStealingScheduler
from repro.core.procedure import SciductionResult


def _items(*shapes: str):
    """(shape, job) pairs with the job being its index (tests only)."""
    return [(shape, index) for index, shape in enumerate(shapes)]


class TestShapePlan:
    def test_least_loaded_assignment_is_deterministic(self):
        plan = ShapePlan(_items("a", "a", "a", "b", "c"), workers=2)
        assert plan.owner == {"a": 0, "b": 1, "c": 1}

    def test_rotation_moves_the_first_shape(self):
        rotated = ShapePlan(_items("a", "a", "a", "b", "c"), workers=2, rotation=1)
        assert rotated.owner["a"] == 1
        assert rotated.owner["b"] == 0

    def test_own_shapes_served_in_submission_order(self):
        plan = ShapePlan(_items("a", "b", "a", "b"), workers=1)
        order = [plan.next_job(0) for _ in range(4)]
        assert order == [0, 1, 2, 3]

    def test_per_shape_fifo_survives_a_steal(self):
        # Worker 0 owns both shapes; worker 1 steals the un-started one.
        plan = ShapePlan(_items("a", "a", "b", "b"), workers=1)
        plan.worker_shapes.append([])  # grow to two workers manually
        plan.workers = 2
        first = plan.next_job(0)
        assert first == 0  # shape a started on worker 0
        stolen_first = plan.next_job(1)
        assert stolen_first == 2  # whole shape-b queue moved, FIFO kept
        assert plan.owner["b"] == 1
        assert plan.steals == 1 and plan.stolen_jobs == 2
        assert plan.next_job(1) == 3

    def test_started_shapes_are_never_stolen(self):
        plan = ShapePlan(_items("a", "a"), workers=2)
        assert plan.next_job(0) == 0  # shape a started
        assert plan.next_job(1) is None  # nothing stealable
        assert plan.steals == 0

    def test_steal_prefers_the_largest_queue(self):
        items = _items("a", "b", "b", "c", "c", "c")
        plan = ShapePlan(items, workers=2)
        # a→w0(1), b→w1(2), c→w0(4): worker 1 finishes b, steals c (3 jobs
        # beats nothing else; a is w0's but smaller anyway).
        assert plan.owner == {"a": 0, "b": 1, "c": 0}
        assert plan.next_job(0) == 0  # start shape a on w0
        assert plan.next_job(1) == 1  # b
        assert plan.next_job(1) == 2  # b
        assert plan.next_job(1) == 3  # stole c
        assert plan.owner["c"] == 1
        assert plan.stolen_jobs == 3


class _FakeTransport:
    """Synchronous transport: jobs resolve immediately via a callback."""

    def __init__(self, outcome):
        self.outcome = outcome
        self.submitted: list[tuple[int, object]] = []
        self.retired: list[int] = []

    def submit(self, worker: int, job) -> Future:
        self.submitted.append((worker, job))
        future: Future = Future()
        result = self.outcome(worker, job)
        if isinstance(result, Exception):
            future.set_exception(result)
        else:
            future.set_result(result)
        return future

    def retire(self, worker: int) -> None:
        self.retired.append(worker)


class TestWorkStealingSchedulerLoop:
    def test_dispatch_completes_every_job(self):
        completed = []
        transport = _FakeTransport(lambda worker, job: {"job": job})
        scheduler = WorkStealingScheduler(
            transport=transport,
            claim=lambda job: True,
            complete=lambda job, kind, value: completed.append((job, kind)),
            retry_crash=lambda job: False,
        )
        scheduler.run_batch(_items("a", "b", "a", "c"), workers=2)
        assert sorted(job for job, kind in completed) == [0, 1, 2, 3]
        assert all(kind == "payload" for _, kind in completed)
        assert scheduler.statistics.dispatched == 4

    def test_cancelled_jobs_are_skipped_not_dispatched(self):
        completed = []
        transport = _FakeTransport(lambda worker, job: {"job": job})
        scheduler = WorkStealingScheduler(
            transport=transport,
            claim=lambda job: job != 1,  # job 1 was cancelled while queued
            complete=lambda job, kind, value: completed.append(job),
            retry_crash=lambda job: False,
        )
        scheduler.run_batch(_items("a", "a", "a"), workers=1)
        assert completed == [0, 2]
        assert scheduler.statistics.dispatched == 2

    def test_crash_retries_once_then_fails(self):
        outcomes = []
        attempts: dict[object, int] = {}

        def outcome(worker, job):
            attempts[job] = attempts.get(job, 0) + 1
            if job == 0:
                return BrokenProcessPool("worker died")
            return {"job": job}

        transport = _FakeTransport(outcome)
        retried = set()

        def retry_crash(job):
            if job in retried:
                return False
            retried.add(job)
            return True

        scheduler = WorkStealingScheduler(
            transport=transport,
            claim=lambda job: True,
            complete=lambda job, kind, value: outcomes.append((job, kind)),
            retry_crash=retry_crash,
        )
        scheduler.run_batch(_items("a", "a"), workers=1)
        assert attempts[0] == 2  # original + one retry
        assert (0, "crashed") in outcomes
        assert (1, "payload") in outcomes
        assert scheduler.statistics.crashed_workers == 2
        assert transport.retired == [0, 0]


# ---------------------------------------------------------------------------
# Engine-level: real worker processes
# ---------------------------------------------------------------------------


@register_problem_type
@dataclass
class _SchedStunt(ProblemSpec):
    """Deterministic sleep/echo jobs with an explicit shape key."""

    kind: ClassVar[str] = "sched-stunt"
    needs_solver: ClassVar[bool] = False

    shape: str = "a"
    seconds: float = 0.0
    payload: str = ""

    def shape_key(self) -> str:
        return f"{self.kind}/{self.shape}"

    def run(self, context=None) -> SciductionResult:
        if self.seconds:
            time.sleep(self.seconds)
        return SciductionResult(
            success=True, verdict=True, details={"payload": self.payload}
        )


def _canonical_wires(engine: SciductionEngine) -> list[dict]:
    return [result_wire_canonical(job.result_wire()) for job in engine.jobs]


#: Skewed by duration, balanced by count: the plan gives worker 0 the slow
#: shape plus the un-started "cold" shape, worker 1 a pile of quick jobs.
#: slow→w0(3), quick→w1(4), cold→w0(5): worker 1 drains and steals "cold".
_SKEWED_STUNTS = (
    [("slow", 0.6)] * 3
    + [("quick", 0.01)] * 4
    + [("cold", 0.01)] * 2
)


def _skewed_batch() -> list[_SchedStunt]:
    return [
        _SchedStunt(shape=shape, seconds=seconds, payload=f"{shape}-{index}")
        for index, (shape, seconds) in enumerate(_SKEWED_STUNTS)
    ]


class TestEngineWorkStealing:
    @pytest.mark.sequential_only
    def test_skewed_stream_steals_and_stays_byte_identical(self):
        sequential = SciductionEngine(EngineConfig(workers=1))
        sequential.run_batch(list(_skewed_batch()))
        with SciductionEngine(EngineConfig(workers=2)) as parallel:
            results = parallel.run_batch(list(_skewed_batch()))
            assert _canonical_wires(parallel) == _canonical_wires(sequential)
            assert [r.details["payload"] for r in results] == [
                f"{shape}-{index}"
                for index, (shape, _) in enumerate(_SKEWED_STUNTS)
            ]
            statistics = parallel.statistics()["scheduler"]
            assert statistics["steals"] >= 1, statistics
            assert statistics["stolen_jobs"] >= 2, statistics

    @pytest.mark.sequential_only
    def test_skewed_solver_stream_parity_matrix(self):
        """Real solver jobs: parity must hold whether or not steals fire."""
        problems = [
            DeobfuscationProblem(task="multiply45", width=5, seed=0),
            DeobfuscationProblem(task="multiply45", width=5, seed=1),
            TimingAnalysisProblem(
                program="bounded_linear_search",
                program_args={"length": 3, "word_width": 16},
                bound=250,
            ),
            TimingAnalysisProblem(
                program="bounded_linear_search",
                program_args={"length": 3, "word_width": 16},
                bound=250,
            ),
            DeobfuscationProblem(task="multiply45", width=4, seed=0),
            DeobfuscationProblem(task="multiply45", width=4, seed=1),
        ]
        sequential = SciductionEngine(EngineConfig(workers=1))
        sequential.run_batch(list(problems))
        for workers in (2, 3):
            with SciductionEngine(EngineConfig(workers=workers)) as parallel:
                parallel.run_batch(list(problems))
                assert _canonical_wires(parallel) == _canonical_wires(sequential), (
                    f"workers={workers}"
                )

    def test_repeated_stream_on_long_lived_engine_hits_memo_cross_worker(self):
        problems = [
            DeobfuscationProblem(task="multiply45", width=4, seed=0),
            DeobfuscationProblem(task="multiply45", width=4, seed=1),
            DeobfuscationProblem(task="multiply45", width=5, seed=0),
        ]
        with SciductionEngine(EngineConfig(workers=2)) as engine:
            first = engine.run_batch(list(problems))
            second = engine.run_batch(list(problems))
            assert [(r.success, r.verdict) for r in first] == [
                (r.success, r.verdict) for r in second
            ]
            statistics = engine.statistics()
            # The per-batch rotation moved the shapes to the other worker,
            # whose fresh sessions answered the repeated checks from the
            # parent's shared memo: a verdict decided on worker A
            # short-circuited the same check on worker B.
            assert statistics["scheduler"]["batches"] == 2
            assert statistics["shared_memo"]["cross_worker_hits"] > 0, statistics
            # Worker pool counters made it back to the parent.
            assert statistics["workers"], statistics

    def test_closed_fleet_refuses_submissions(self):
        """close() must never silently resurrect worker processes."""
        engine = SciductionEngine(EngineConfig(workers=2))
        fleet = engine._worker_fleet()
        engine.close()
        with pytest.raises(Exception, match="closed"):
            fleet.submit(0, {})
        # A later batch on the engine builds a fresh, tracked fleet.
        results = engine.run_batch(
            [_SchedStunt(shape="a", payload="x"), _SchedStunt(shape="b", payload="y")]
        )
        assert [r.success for r in results] == [True, True]
        engine.close()

    def test_cancel_while_skewed_batch_runs(self):
        import threading

        with SciductionEngine(EngineConfig(workers=2)) as engine:
            blocker = engine.submit(_SchedStunt(shape="slow", seconds=1.0))
            target = engine.submit(_SchedStunt(shape="slow", payload="never"))
            results: list = []
            runner = threading.Thread(
                target=lambda: results.extend(engine.run_batch())
            )
            runner.start()
            try:
                deadline = time.monotonic() + 10.0
                while blocker._future is None and time.monotonic() < deadline:
                    time.sleep(0.01)
                assert engine.cancel(target)
            finally:
                runner.join(timeout=30.0)
            assert target.state is JobState.CANCELLED
            assert blocker.state is JobState.COMPLETED
            assert results[1].details["outcome"] == "cancelled"
