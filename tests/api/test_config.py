"""Tests for the unified EngineConfig surface."""

import pytest

from repro.api import EngineConfig


class TestEngineConfig:
    def test_json_roundtrip(self):
        config = EngineConfig(
            simplify_terms=False,
            gc_dead_clauses=None,
            adaptive_restarts=True,
            max_conflicts=123,
            pool_size=3,
            reuse_sessions=False,
            intern_table_limit=10,
        )
        assert EngineConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown EngineConfig fields"):
            EngineConfig.from_dict({"simplify_terms": True, "turbo": 11})

    def test_solver_options_cover_all_smt_knobs(self):
        from repro.smt.solver import SmtSolver

        options = EngineConfig().solver_options()
        # Every option must be a real SmtSolver kwarg (constructing with
        # them all is the proof).
        SmtSolver(**options)
        assert options["restart_strategy"] == "luby"
        assert EngineConfig(adaptive_restarts=True).solver_options()[
            "restart_strategy"
        ] == "glucose"

    def test_from_legacy_matches_scattered_kwargs(self):
        config = EngineConfig.from_legacy(
            reencode_each_check=True,
            solver_options={
                "simplify_terms": False,
                "polarity_aware": False,
                "gc_dead_clauses": None,
            },
        )
        assert config.reencode_each_check is True
        assert config.simplify_terms is False
        assert config.polarity_aware is False
        assert config.gc_dead_clauses is None
        assert config.solver_options()["reencode_each_check"] is True

    def test_config_is_immutable(self):
        with pytest.raises(Exception):
            EngineConfig().pool_size = 5
