"""Parallel engine: parity with sequential, crash retry, cancellation.

``run_batch`` under ``EngineConfig(workers=N)`` fans jobs out over
worker processes with shape affinity; everything observable — verdicts,
certificates, per-job statistics, the full wire form of every result —
must be byte-identical to the sequential run, and worker crashes and
cancellations must degrade as gracefully as the pool's poisoned-session
retry does in-process.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.api import (
    DeobfuscationProblem,
    EngineConfig,
    JobState,
    ProblemSpec,
    SciductionEngine,
    SwitchingLogicProblem,
    TimingAnalysisProblem,
    register_problem_type,
    result_wire_canonical,
)
from repro.core.procedure import SciductionResult

#: Small instances of all three paper applications (the problem matrix).
MATRIX = [
    DeobfuscationProblem(task="multiply45", width=4, seed=0),
    TimingAnalysisProblem(
        program="bounded_linear_search",
        program_args={"length": 3, "word_width": 16},
        bound=250,
        seed=0,
    ),
    SwitchingLogicProblem(
        system="transmission", omega_step=0.5, integration_step=0.05, horizon=40.0
    ),
    DeobfuscationProblem(task="multiply45", width=5, seed=0),
    DeobfuscationProblem(task="multiply45", width=4, seed=1),
]


@register_problem_type
@dataclass
class _StuntProblem(ProblemSpec):
    """Test-only problem for exercising worker failure modes.

    ``mode`` selects the stunt: ``echo`` returns immediately, ``sleep``
    blocks for ``seconds``, ``crash-once`` kills the worker process on
    the first attempt (a marker file records the attempt) and succeeds on
    retry, ``crash-always`` kills the worker on every attempt.
    """

    kind: ClassVar[str] = "test-stunt"
    needs_solver: ClassVar[bool] = False

    mode: str = "echo"
    seconds: float = 0.0
    marker: str = ""
    payload: str = ""

    def run(self, context=None) -> SciductionResult:
        if self.mode == "sleep":
            time.sleep(self.seconds)
        elif self.mode == "crash-always":
            os._exit(13)
        elif self.mode == "crash-once":
            if not os.path.exists(self.marker):
                with open(self.marker, "w") as handle:
                    handle.write("attempted")
                os._exit(13)
        return SciductionResult(
            success=True, verdict=True, details={"payload": self.payload}
        )


def _canonical_wires(engine: SciductionEngine) -> list[dict]:
    return [result_wire_canonical(job.result_wire()) for job in engine.jobs]


class TestParallelParity:
    @pytest.mark.sequential_only
    def test_worker_results_byte_identical_to_sequential(self):
        sequential = SciductionEngine(EngineConfig(workers=1))
        sequential.run_batch(list(MATRIX))
        parallel = SciductionEngine(EngineConfig(workers=2))
        parallel.run_batch(list(MATRIX))

        assert _canonical_wires(parallel) == _canonical_wires(sequential)
        # Certificates survive the wire round trip intact.
        for seq_job, par_job in zip(sequential.jobs, parallel.jobs):
            assert seq_job.state == par_job.state
            assert (
                par_job.result.certificate.statement()
                == seq_job.result.certificate.statement()
            )

    @pytest.mark.sequential_only
    def test_three_workers_match_too(self):
        sequential = SciductionEngine(EngineConfig(workers=1))
        sequential.run_batch(list(MATRIX))
        parallel = SciductionEngine(EngineConfig(workers=3))
        parallel.run_batch(list(MATRIX))
        assert _canonical_wires(parallel) == _canonical_wires(sequential)

    def test_results_come_back_in_submission_order(self):
        engine = SciductionEngine(EngineConfig(workers=2))
        jobs = [
            _StuntProblem(mode="echo", payload=f"job-{index}")
            for index in range(5)
        ]
        results = engine.run_batch(jobs)
        assert [r.details["payload"] for r in results] == [
            f"job-{index}" for index in range(5)
        ]

    @pytest.mark.sequential_only
    def test_statistics_deltas_are_taken_in_the_worker(self):
        """Per-job solver statistics must be worker-side lease deltas.

        Two identical jobs share one warm session (same shape, same
        bucket); if statistics were snapshotted in the parent — or
        reported as pool-lifetime totals — the second job's counters
        would include the first job's work.  They must match the
        sequential engine's per-job deltas exactly.
        """
        problems = [
            DeobfuscationProblem(task="multiply45", width=4, seed=0),
            DeobfuscationProblem(task="multiply45", width=4, seed=0),
        ]

        def job_stats(engine):
            engine.run_batch(list(problems))
            return [
                job.result.details["engine"]["smt_job_statistics"]
                for job in engine.jobs
            ]

        sequential = job_stats(SciductionEngine(EngineConfig(workers=1)))
        parallel = job_stats(SciductionEngine(EngineConfig(workers=2)))
        assert parallel == sequential
        # The warm second job re-uses the sealed skeleton, so its encoding
        # work is strictly smaller — pool-lifetime totals would only grow.
        assert (
            parallel[1]["clauses_generated"] < parallel[0]["clauses_generated"]
        )


class TestWorkerCrashRetirement:
    def test_crashed_worker_is_replaced_and_job_retried(self, tmp_path):
        engine = SciductionEngine(EngineConfig(workers=2))
        crash = engine.submit(
            _StuntProblem(mode="crash-once", marker=str(tmp_path / "attempt"))
        )
        follow_up = engine.submit(_StuntProblem(mode="echo", payload="after"))
        results = engine.run_batch()
        assert crash.state is JobState.COMPLETED
        assert follow_up.state is JobState.COMPLETED
        assert [r.success for r in results] == [True, True]
        assert (tmp_path / "attempt").exists()

    def test_repeated_crash_fails_job_but_not_the_bucket(self):
        engine = SciductionEngine(EngineConfig(workers=2))
        doomed = engine.submit(_StuntProblem(mode="crash-always"))
        # Same kind => same shape => same bucket: must survive the crash.
        survivor = engine.submit(_StuntProblem(mode="echo", payload="alive"))
        results = engine.run_batch()
        assert doomed.state is JobState.FAILED
        assert "crashed" in (doomed.error or "")
        assert results[0].details["outcome"] == "failed"
        assert survivor.state is JobState.COMPLETED
        assert results[1].details["payload"] == "alive"


class TestParallelCancellation:
    def test_queued_job_cancelled_while_batch_in_flight(self):
        """Jobs queued behind an in-flight job stay cancellable.

        The scheduler dispatches one job per worker at a time and keeps
        the rest queued in the parent process (state PENDING, no
        future), so anything the workers have not reached yet can still
        be cancelled mid-batch.
        """
        engine = SciductionEngine(EngineConfig(workers=2))
        blocker = engine.submit(_StuntProblem(mode="sleep", seconds=1.5))
        filler = engine.submit(_StuntProblem(mode="sleep", seconds=0.1))
        # Same shape as the blocker: queued behind it on the same worker.
        target = engine.submit(_StuntProblem(mode="echo", payload="never"))

        batch_results = []
        runner = threading.Thread(
            target=lambda: batch_results.extend(engine.run_batch())
        )
        runner.start()
        try:
            deadline = time.monotonic() + 10.0
            while blocker._future is None and time.monotonic() < deadline:
                time.sleep(0.01)
            assert blocker._future is not None, "batch never started"
            assert target.state is JobState.PENDING
            assert target._future is None, "queued job must not be dispatched"
            assert engine.cancel(target), "queued job should be cancellable"
        finally:
            runner.join(timeout=30.0)
        assert not runner.is_alive()
        assert blocker.state is JobState.COMPLETED
        assert filler.state is JobState.COMPLETED
        assert target.state is JobState.CANCELLED
        assert len(batch_results) == 3
        assert batch_results[2].details["outcome"] == "cancelled"

    def test_cancel_before_batch_skips_submission(self):
        engine = SciductionEngine(EngineConfig(workers=2))
        keep = engine.submit(_StuntProblem(mode="echo", payload="kept"))
        cancelled = engine.submit(_StuntProblem(mode="echo"))
        assert engine.cancel(cancelled)
        results = engine.run_batch()
        assert len(results) == 1
        assert keep.state is JobState.COMPLETED
        assert cancelled.state is JobState.CANCELLED
        assert cancelled._future is None


class TestParallelBudgets:
    def test_timeout_preempts_across_the_process_boundary(self):
        engine = SciductionEngine(EngineConfig(workers=2))
        slow = engine.submit(
            DeobfuscationProblem(task="interchange", width=8, seed=1),
            timeout=0.0,
        )
        quick = engine.submit(DeobfuscationProblem(task="multiply45", width=4))
        engine.run_batch()
        assert slow.state is JobState.TIMED_OUT
        assert slow.result.details["outcome"] == "timed-out"
        assert quick.state is JobState.COMPLETED

    def test_conflict_budget_travels_with_the_job(self):
        engine = SciductionEngine(EngineConfig(workers=2))
        budgeted = engine.submit(
            DeobfuscationProblem(task="interchange", width=8, seed=1),
            max_conflicts=0,
        )
        unbudgeted = engine.submit(
            DeobfuscationProblem(task="multiply45", width=4, seed=0)
        )
        engine.run_batch()
        assert budgeted.state is JobState.BUDGET_EXHAUSTED
        assert unbudgeted.state is JobState.COMPLETED
        assert unbudgeted.result.verdict is True
