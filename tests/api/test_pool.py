"""SolverPool: session reuse, scoped resets, per-job accounting, intern GC."""

import pytest

from repro.api import EngineConfig, SolverPool
from repro.core.exceptions import SolverError
from repro.smt.solver import SmtResult
from repro.smt.terms import bv_const, bv_var, intern_table_size


def _fresh_pool(**overrides) -> SolverPool:
    return SolverPool(EngineConfig(**overrides))


class TestLeaseLifecycle:
    def test_sessions_are_reused_across_leases(self):
        pool = _fresh_pool()
        lease_a = pool.acquire()
        solver_a = lease_a.session()
        pool.release(lease_a)
        lease_b = pool.acquire()
        assert lease_b.solver is solver_a
        assert lease_b.reused and not lease_a.reused
        pool.release(lease_b)
        assert pool.statistics.reused_sessions == 1
        assert pool.statistics.solvers_created == 1

    def test_reuse_disabled_hands_out_fresh_solvers(self):
        pool = _fresh_pool(reuse_sessions=False)
        lease_a = pool.acquire()
        solver_a = lease_a.solver
        pool.release(lease_a)
        lease_b = pool.acquire()
        assert lease_b.solver is not solver_a
        pool.release(lease_b)
        assert pool.statistics.solvers_created == 2

    def test_release_retires_previous_jobs_assertions(self):
        pool = _fresh_pool()
        x = bv_var("pool_reset_x", 8)

        lease_a = pool.acquire()
        session = lease_a.session()
        session.add(x.eq(bv_const(1, 8)))
        assert session.check() is SmtResult.SAT
        pool.release(lease_a)

        # Job B sees fresh-solver semantics: job A's x == 1 must be gone,
        # so x == 2 is satisfiable on the very same warm solver.
        lease_b = pool.acquire()
        session = lease_b.session()
        session.add(x.eq(bv_const(2, 8)))
        assert session.check() is SmtResult.SAT
        assert session.model_value("pool_reset_x") == 2
        pool.release(lease_b)

    def test_session_callable_again_resets_midjob(self):
        # Encoders call the session factory again when rebuilding their
        # skeleton; the second call must retire everything so far.
        pool = _fresh_pool()
        lease = pool.acquire()
        x = bv_var("pool_midjob_x", 8)
        session = lease.session()
        session.add(x.eq(bv_const(1, 8)), x.eq(bv_const(2, 8)))
        assert session.check() is SmtResult.UNSAT
        session = lease.session()
        session.add(x.eq(bv_const(2, 8)))
        assert session.check() is SmtResult.SAT
        pool.release(lease)

    def test_leases_must_release_lifo(self):
        pool = _fresh_pool(pool_size=2)
        lease_a = pool.acquire()
        lease_b = pool.acquire()
        with pytest.raises(SolverError, match="LIFO"):
            pool.release(lease_a)
        pool.release(lease_b)
        pool.release(lease_a)

    def test_released_lease_cannot_reopen_a_session(self):
        pool = _fresh_pool()
        lease = pool.acquire()
        lease.session()
        pool.release(lease)
        with pytest.raises(SolverError, match="already released"):
            lease.session()

    def test_retire_discards_the_session(self):
        pool = _fresh_pool()
        lease_a = pool.acquire()
        solver_a = lease_a.solver
        pool.retire(lease_a)
        lease_b = pool.acquire()
        assert lease_b.solver is not solver_a
        pool.release(lease_b)
        assert pool.statistics.solvers_retired == 1


class TestPerJobAccounting:
    def test_statistics_are_deltas_not_pool_lifetime(self):
        pool = _fresh_pool()
        x = bv_var("pool_stats_x", 8)

        lease_a = pool.acquire()
        session = lease_a.session()
        session.add((x * bv_const(3, 8)).eq(bv_const(5, 8)))
        session.check()
        first_job = lease_a.smt_statistics()
        pool.release(lease_a)
        assert first_job.checks == 1
        assert first_job.clauses_generated > 0

        lease_b = pool.acquire()
        session = lease_b.session()
        session.check()
        second_job = lease_b.smt_statistics()
        sat_second = lease_b.sat_statistics()
        pool.release(lease_b)
        # Job B did one trivial check; its delta must not include job A's
        # encoding work even though the pooled solver's lifetime counters do.
        assert second_job.checks == 1
        assert second_job.clauses_generated < first_job.clauses_generated
        assert sat_second.conflicts >= 0
        assert lease_b.solver.statistics.checks == 2  # lifetime view differs


class TestInternScopeCleanup:
    def test_entries_evicted_once_table_exceeds_limit(self):
        pool = _fresh_pool(intern_table_limit=0)
        lease = pool.acquire()
        solver = lease.session()
        base = intern_table_size()
        y = bv_var("intern_gc_y", 8)
        y + bv_const(17, 8)
        assert intern_table_size() > base
        pool.release(lease)
        assert intern_table_size() == base
        assert pool.statistics.intern_entries_evicted >= 2
        # Over the limit, the session is recycled along with its terms —
        # the solver's bit-blast caches would otherwise keep the evicted
        # terms alive (and re-blast their replacements into duplicates).
        assert pool.statistics.solvers_retired == 1
        follow_up = pool.acquire()
        assert follow_up.solver is not solver
        pool.release(follow_up)

    def test_entries_kept_below_limit(self):
        pool = _fresh_pool(intern_table_limit=10_000_000)
        lease = pool.acquire()
        lease.session()
        base = intern_table_size()
        z = bv_var("intern_keep_z", 8)
        z + bv_const(23, 8)
        grown = intern_table_size()
        pool.release(lease)
        assert grown > base
        assert intern_table_size() == grown
        assert pool.statistics.intern_entries_evicted == 0

    def test_retire_always_evicts_job_terms(self):
        pool = _fresh_pool(intern_table_limit=10_000_000)
        lease = pool.acquire()
        lease.session()
        base = intern_table_size()
        w = bv_var("intern_retire_w", 8)
        w + bv_const(29, 8)
        pool.retire(lease)
        assert intern_table_size() == base
