"""SolverPool: shape routing, session reuse, scoped resets, accounting."""

import pytest

from repro.api import EngineConfig, SciductionEngine, SolverPool
from repro.api.problems import DeobfuscationProblem
from repro.core.exceptions import SolverError
from repro.smt.solver import SmtResult
from repro.smt.terms import bv_const, bv_var, intern_table_size


def _fresh_pool(**overrides) -> SolverPool:
    return SolverPool(EngineConfig(**overrides))


class TestLeaseLifecycle:
    def test_sessions_are_reused_across_leases(self):
        pool = _fresh_pool()
        lease_a = pool.acquire()
        solver_a = lease_a.session()
        pool.release(lease_a)
        lease_b = pool.acquire()
        assert lease_b.solver is solver_a
        assert lease_b.reused and not lease_a.reused
        pool.release(lease_b)
        assert pool.statistics.reused_sessions == 1
        assert pool.statistics.solvers_created == 1

    def test_reuse_disabled_hands_out_fresh_solvers(self):
        pool = _fresh_pool(reuse_sessions=False)
        lease_a = pool.acquire()
        solver_a = lease_a.solver
        pool.release(lease_a)
        lease_b = pool.acquire()
        assert lease_b.solver is not solver_a
        pool.release(lease_b)
        assert pool.statistics.solvers_created == 2

    def test_release_retires_previous_jobs_assertions(self):
        pool = _fresh_pool()
        x = bv_var("pool_reset_x", 8)

        lease_a = pool.acquire()
        session = lease_a.session()
        session.add(x.eq(bv_const(1, 8)))
        assert session.check() is SmtResult.SAT
        pool.release(lease_a)

        # Job B sees fresh-solver semantics: job A's x == 1 must be gone,
        # so x == 2 is satisfiable on the very same warm solver.
        lease_b = pool.acquire()
        session = lease_b.session()
        session.add(x.eq(bv_const(2, 8)))
        assert session.check() is SmtResult.SAT
        assert session.model_value("pool_reset_x") == 2
        pool.release(lease_b)

    def test_session_callable_again_resets_midjob(self):
        # Encoders call the session factory again when rebuilding their
        # skeleton; the second call must retire everything so far.
        pool = _fresh_pool()
        lease = pool.acquire()
        x = bv_var("pool_midjob_x", 8)
        session = lease.session()
        session.add(x.eq(bv_const(1, 8)), x.eq(bv_const(2, 8)))
        assert session.check() is SmtResult.UNSAT
        session = lease.session()
        session.add(x.eq(bv_const(2, 8)))
        assert session.check() is SmtResult.SAT
        pool.release(lease)

    def test_leases_must_release_lifo(self):
        pool = _fresh_pool(pool_size=2)
        lease_a = pool.acquire()
        lease_b = pool.acquire()
        with pytest.raises(SolverError, match="LIFO"):
            pool.release(lease_a)
        pool.release(lease_b)
        pool.release(lease_a)

    def test_released_lease_cannot_reopen_a_session(self):
        pool = _fresh_pool()
        lease = pool.acquire()
        lease.session()
        pool.release(lease)
        with pytest.raises(SolverError, match="already released"):
            lease.session()

    def test_retire_discards_the_session(self):
        pool = _fresh_pool()
        lease_a = pool.acquire()
        solver_a = lease_a.solver
        pool.retire(lease_a)
        lease_b = pool.acquire()
        assert lease_b.solver is not solver_a
        pool.release(lease_b)
        assert pool.statistics.solvers_retired == 1


class TestPerJobAccounting:
    def test_statistics_are_deltas_not_pool_lifetime(self):
        pool = _fresh_pool()
        x = bv_var("pool_stats_x", 8)

        lease_a = pool.acquire()
        session = lease_a.session()
        session.add((x * bv_const(3, 8)).eq(bv_const(5, 8)))
        session.check()
        first_job = lease_a.smt_statistics()
        pool.release(lease_a)
        assert first_job.checks == 1
        assert first_job.clauses_generated > 0

        lease_b = pool.acquire()
        session = lease_b.session()
        session.check()
        second_job = lease_b.smt_statistics()
        sat_second = lease_b.sat_statistics()
        pool.release(lease_b)
        # Job B did one trivial check; its delta must not include job A's
        # encoding work even though the pooled solver's lifetime counters do.
        assert second_job.checks == 1
        assert second_job.clauses_generated < first_job.clauses_generated
        assert sat_second.conflicts >= 0
        assert lease_b.solver.statistics.checks == 2  # lifetime view differs


class TestShapeRouting:
    def test_matching_shape_reuses_its_session(self):
        pool = _fresh_pool(pool_size=2)
        first = pool.acquire(shape="deob/w4")
        solver_w4 = first.solver
        pool.release(first)
        other = pool.acquire(shape="timing/w16")
        solver_timing = other.solver
        pool.release(other)
        assert solver_timing is not solver_w4

        again = pool.acquire(shape="deob/w4")
        assert again.solver is solver_w4
        pool.release(again)
        timing_again = pool.acquire(shape="timing/w16")
        assert timing_again.solver is solver_timing
        pool.release(timing_again)
        assert pool.statistics.routing_hits == 2
        assert pool.statistics.routing_misses == 2  # the two cold starts
        assert pool.statistics.solvers_created == 2

    def test_full_pool_retires_lru_session_for_a_new_shape(self):
        pool = _fresh_pool(pool_size=1)
        first = pool.acquire(shape="deob/w4")
        solver = first.solver
        pool.release(first)
        # A new shape never inherits a wrong-shape warm session (its
        # variable names would recur at another width and poison it);
        # the LRU session is retired and a fresh solver handed out.
        fresh = pool.acquire(shape="deob/w5")
        assert fresh.solver is not solver
        assert not fresh.reused
        pool.release(fresh)
        assert pool.statistics.routing_hits == 0
        assert pool.statistics.routing_misses == 2
        assert pool.statistics.solvers_retired == 1
        # The replacement session is keyed by the new shape.
        back = pool.acquire(shape="deob/w5")
        assert back.solver is fresh.solver
        pool.release(back)
        assert pool.statistics.routing_hits == 1

    def test_idle_sessions_beyond_pool_size_are_recycled(self):
        pool = _fresh_pool(pool_size=1)
        lease_a = pool.acquire(shape="a")
        lease_b = pool.acquire(shape="b")  # concurrent overflow lease
        pool.release(lease_b)
        pool.release(lease_a)
        assert pool.statistics.solvers_created == 2
        assert pool.statistics.solvers_retired == 1  # idle bound enforced

    @pytest.mark.sequential_only  # inspects the parent engine's own pool
    def test_engine_routes_jobs_by_problem_shape(self):
        from repro.api import SciductionEngine

        engine = SciductionEngine(EngineConfig())
        problems = [
            DeobfuscationProblem(task="multiply45", width=4, seed=0),
            DeobfuscationProblem(task="multiply45", width=5, seed=0),
            DeobfuscationProblem(task="multiply45", width=4, seed=1),
            DeobfuscationProblem(task="multiply45", width=5, seed=1),
        ]
        results = engine.run_batch(problems)
        assert all(result.success for result in results)
        # Jobs 3 and 4 land on the sessions warmed by jobs 1 and 2.
        assert engine.pool.statistics.routing_hits == 2
        assert engine.pool.statistics.solvers_created == 2


class TestBaseScopeProtocol:
    def test_sealed_base_survives_release_and_is_found_again(self):
        pool = _fresh_pool()
        lease = pool.acquire(shape="deob/w8")
        solver, ready = lease.base_session("fingerprint-a")
        assert not ready
        x = bv_var("base_scope_x", 8)
        solver.add(x.ult(bv_const(100, 8)))
        lease.seal_base()
        solver.add(x.eq(bv_const(7, 8)))  # job-scope assertion
        assert solver.check() is SmtResult.SAT
        pool.release(lease)

        lease2 = pool.acquire(shape="deob/w8")
        solver2, ready2 = lease2.base_session("fingerprint-a")
        assert ready2 and solver2 is solver
        # The base constraint is still active; the old job scope is gone.
        solver2.add(x.eq(bv_const(200, 8)))
        assert solver2.check() is SmtResult.UNSAT  # 200 violates x < 100
        pool.release(lease2)

    def test_fingerprint_mismatch_rebuilds_the_base(self):
        pool = _fresh_pool()
        lease = pool.acquire(shape="s")
        solver, ready = lease.base_session("fp-1")
        assert not ready
        y = bv_var("base_mismatch_y", 8)
        solver.add(y.eq(bv_const(1, 8)))
        lease.seal_base()
        pool.release(lease)

        lease2 = pool.acquire(shape="s")
        solver2, ready2 = lease2.base_session("fp-2")
        assert not ready2
        # fp-1's base constraint must be retired with its scope.
        solver2.add(y.eq(bv_const(2, 8)))
        lease2.seal_base()
        assert solver2.check() is SmtResult.SAT
        pool.release(lease2)

    def test_plain_session_clears_a_previous_tenants_base(self):
        pool = _fresh_pool()
        lease = pool.acquire(shape="s")
        solver, _ = lease.base_session("fp")
        z = bv_var("base_clear_z", 8)
        solver.add(z.eq(bv_const(5, 8)))
        lease.seal_base()
        pool.release(lease)

        lease2 = pool.acquire(shape="s")
        session = lease2.session()  # plain contract: fresh-solver semantics
        session.add(z.eq(bv_const(6, 8)))
        assert session.check() is SmtResult.SAT
        pool.release(lease2)
        # And the fingerprint is gone: the next base_session must rebuild.
        lease3 = pool.acquire(shape="s")
        _, ready = lease3.base_session("fp")
        assert not ready
        pool.release(lease3)

    def test_seal_requires_open_base(self):
        pool = _fresh_pool()
        lease = pool.acquire()
        lease.session()
        with pytest.raises(SolverError, match="seal_base"):
            lease.seal_base()
        pool.release(lease)

    def test_release_rolls_job_encoding_back_to_the_sealed_frontier(self):
        pool = _fresh_pool()
        lease = pool.acquire(shape="s")
        solver, _ = lease.base_session("fp")
        base_var = bv_var("frontier_base", 8)
        solver.add(base_var.ult(bv_const(100, 8)))
        lease.seal_base()
        frontier = lease._record.frontier
        assert frontier is not None
        job_var = bv_var("frontier_job", 8)
        solver.add(job_var.eq(bv_const(3, 8)))
        assert solver.check() is SmtResult.SAT
        assert solver.frontier() > frontier  # job grew the SAT store
        pool.release(lease)
        # The session is back at the sealed frontier: the job's variables
        # and gate definitions are gone, the base encoding is not.
        assert solver.frontier() == frontier


class TestInternScopeCleanup:
    def test_entries_evicted_once_table_exceeds_limit(self):
        pool = _fresh_pool(intern_table_limit=0)
        lease = pool.acquire()
        solver = lease.session()
        base = intern_table_size()
        y = bv_var("intern_gc_y", 8)
        y + bv_const(17, 8)
        assert intern_table_size() > base
        pool.release(lease)
        assert intern_table_size() == base
        assert pool.statistics.intern_entries_evicted >= 2
        # Over the limit, the session is recycled along with its terms —
        # the solver's bit-blast caches would otherwise keep the evicted
        # terms alive (and re-blast their replacements into duplicates).
        assert pool.statistics.solvers_retired == 1
        follow_up = pool.acquire()
        assert follow_up.solver is not solver
        pool.release(follow_up)

    def test_entries_kept_below_limit(self):
        pool = _fresh_pool(intern_table_limit=10_000_000)
        lease = pool.acquire()
        lease.session()
        base = intern_table_size()
        z = bv_var("intern_keep_z", 8)
        z + bv_const(23, 8)
        grown = intern_table_size()
        pool.release(lease)
        assert grown > base
        assert intern_table_size() == grown
        assert pool.statistics.intern_entries_evicted == 0

    def test_retire_always_evicts_job_terms(self):
        pool = _fresh_pool(intern_table_limit=10_000_000)
        lease = pool.acquire()
        lease.session()
        base = intern_table_size()
        w = bv_var("intern_retire_w", 8)
        w + bv_const(29, 8)
        pool.retire(lease)
        assert intern_table_size() == base
