"""Intra-job parallelism: sweeps, speculation, replica leases, parity.

The contract under test is ISSUE 10's tentpole: everything result-visible
— results, certificates, per-job statistics deltas — must be
byte-identical for every ``intra_job_workers`` setting and with
``speculative_ogis`` on or off, including when the speculative lane
crashes mid-flight (the ``ogis.speculate`` fault drill).  Intra-job
*activity* is visible only in engine-level telemetry
(``statistics()["intra_job"]``), which these tests also pin.
"""

from __future__ import annotations

import pytest

from repro.api import EngineConfig, SciductionEngine
from repro.api.intra import partition, resolve_lanes, run_lanes
from repro.api.pool import SolverPool
from repro.api.problems import DeobfuscationProblem, TimingAnalysisProblem
from repro.api.results import result_wire_canonical
from repro.cfg.builder import build_cfg
from repro.cfg.paths import enumerate_paths
from repro.cfg.programs import conditional_cascade, saturating_add
from repro.cfg.ssa import PathConstraintBuilder
from repro.core.exceptions import ReproError
from repro.testing import faults

#: Seeded differential corpus: small single-big-job timing sweeps plus
#: OGIS deobfuscation tasks that actually iterate (so speculation runs).
TIMING_CORPUS = [
    TimingAnalysisProblem(program="conditional_cascade", distribution=True),
    TimingAnalysisProblem(program="saturating_add", distribution=True, seed=3),
]
DEOB_CORPUS = [
    DeobfuscationProblem(task="multiply45", width=8, seed=seed) for seed in (0, 1)
] + [DeobfuscationProblem(task="interchange", width=8, seed=7)]


def run_corpus(config: EngineConfig, problems) -> tuple[list[dict], dict]:
    """Run ``problems`` on a fresh engine; canonical wires + statistics."""
    engine = SciductionEngine(config)
    try:
        engine.run_batch([problem for problem in problems])
        wires = [result_wire_canonical(job.result_wire()) for job in engine.jobs]
        return wires, engine.statistics()
    finally:
        engine.close()


class TestLaneHelpers:
    def test_resolve_lanes_caps_below_pool_size(self):
        assert resolve_lanes(1, 4) == 1
        assert resolve_lanes(2, 4) == 2
        assert resolve_lanes(16, 4) == 3  # pool_size - 1: never starve
        assert resolve_lanes(2, 1) == 1  # but never below one lane

    def test_partition_is_round_robin_and_drops_empty_lanes(self):
        assert partition(5, 2) == [[0, 2, 4], [1, 3]]
        assert partition(2, 4) == [[0], [1]]
        assert partition(0, 3) == []

    def test_run_lanes_raises_lowest_lane_error(self):
        def ok() -> None:
            pass

        def boom(tag: str):
            def worker() -> None:
                raise ReproError(tag)

            return worker

        with pytest.raises(ReproError, match="lane-one"):
            run_lanes([ok, boom("lane-one"), boom("lane-two")])


class TestSweepParity:
    @pytest.mark.parametrize("lanes", [2])
    def test_distribution_wires_are_lane_invariant(self, lanes):
        baseline, base_stats = run_corpus(
            EngineConfig(intra_job_workers=1), TIMING_CORPUS
        )
        swept, sweep_stats = run_corpus(
            EngineConfig(intra_job_workers=lanes), TIMING_CORPUS
        )
        assert swept == baseline
        # Both runs fan verdicts through replica sessions (that is what
        # keeps the per-job statistics lane-invariant), so activity shows
        # up at every lane count.
        for stats in (base_stats, sweep_stats):
            intra = stats["intra_job"]
            assert intra["sweep_tasks"] > 0
            assert 0 <= intra["sweep_feasible"] <= intra["sweep_tasks"]
            assert intra["replica_leases"] > 0

    def test_sweep_matches_sequential_feasibility_standalone(self):
        # Without a pool-backed factory the sweep degrades to the plain
        # loop — same witnesses, same order.
        for program in (conditional_cascade(), saturating_add()):
            cfg = build_cfg(program)
            sequential = PathConstraintBuilder(cfg)
            swept = PathConstraintBuilder(cfg)
            paths = list(enumerate_paths(cfg))
            expected = [sequential.feasibility(path) for path in paths]
            actual = swept.sweep(paths)
            assert [
                None if entry is None else entry.test_case for entry in actual
            ] == [None if entry is None else entry.test_case for entry in expected]

    def test_sweep_counters_ride_the_lease(self):
        engine = SciductionEngine(EngineConfig(intra_job_workers=2))
        try:
            engine.run(TIMING_CORPUS[0])
            intra = engine.statistics()["intra_job"]
            assert intra["sweep_tasks"] > 0
            assert intra["replicated_scope_seals"] > 0
        finally:
            engine.close()


class TestSpeculationParity:
    def test_deobfuscation_wires_match_with_speculation(self):
        baseline, _ = run_corpus(
            EngineConfig(speculative_ogis=False), DEOB_CORPUS
        )
        speculative, stats = run_corpus(
            EngineConfig(speculative_ogis=True), DEOB_CORPUS
        )
        assert speculative == baseline
        intra = stats["intra_job"]
        # The lane actually ran: every OGIS iteration before convergence
        # scores exactly one win or loss.
        assert intra["speculation_wins"] + intra["speculation_losses"] > 0
        assert intra["replica_leases"] > 0

    def test_crash_mid_speculation_is_invisible_in_results(self):
        baseline, _ = run_corpus(
            EngineConfig(speculative_ogis=False), DEOB_CORPUS
        )
        with faults.injected(
            {"ogis.speculate": faults.Fault("raise", "EIO")}
        ):
            drilled, stats = run_corpus(
                EngineConfig(speculative_ogis=True), DEOB_CORPUS
            )
        assert drilled == baseline
        intra = stats["intra_job"]
        # Each job's first speculative round died at the fault point and
        # disabled the lane for the rest of that job: losses only.
        assert intra["speculation_losses"] > 0
        assert intra["speculation_wins"] == 0

    @pytest.mark.sequential_only
    def test_lane_failure_disables_speculation_for_the_job(self):
        from repro.ogis import OgisSynthesizer, multiply45_library, multiply45_obfuscated, ProgramIOOracle

        pool = SolverPool(EngineConfig(speculative_ogis=True))
        lease = pool.acquire(shape="deobfuscation/w8")
        try:
            oracle = ProgramIOOracle(
                lambda values: multiply45_obfuscated(values, 8), 1, 1, 8
            )
            synthesizer = OgisSynthesizer(
                multiply45_library(),
                oracle,
                width=8,
                config=EngineConfig(speculative_ogis=True),
                solver_factory=lease,
            )
            with faults.injected(
                {"ogis.speculate": faults.Fault("raise", "EIO", "1")}
            ):
                synthesizer.synthesize()
            assert synthesizer._spec_disabled
            assert synthesizer.speculation_losses >= 1
            assert synthesizer.speculation_wins == 0
            assert lease.intra_counters.get("speculation_losses", 0) >= 1
        finally:
            pool.release(lease)
            pool.close()


class TestReplicaLeases:
    @pytest.mark.sequential_only
    def test_replica_lease_flags_and_lifo_release(self):
        config = EngineConfig()
        pool = SolverPool(config)
        primary = pool.acquire(shape="s")
        replica = primary.replica()
        assert replica.is_replica
        assert not primary.is_replica
        assert pool.statistics.replica_leases == 1
        # LIFO: the replica nests inside the primary and must go first.
        primary.release_replica(replica)
        pool.release(primary)
        assert replica.released and primary.released
        pool.close()

    @pytest.mark.sequential_only
    def test_replica_detaches_and_reattaches_shared_memo(self):
        config = EngineConfig()

        class _Backend:
            def lookup(self, key):
                return None

            def publish(self, key, verdict):
                pass

        backend = _Backend()
        pool = SolverPool(config, memo_backend=backend)
        primary = pool.acquire(shape="s")
        assert primary.solver._memo_backend is backend
        replica = primary.replica()
        assert replica.solver._memo_backend is None
        primary.release_replica(replica)
        # Back on the idle list, the session serves ordinary leases again.
        assert replica.solver._memo_backend is backend
        pool.release(primary)
        pool.close()

    @pytest.mark.sequential_only
    def test_replica_seal_counts_replicated_scope_seals(self):
        pool = SolverPool(EngineConfig())
        primary = pool.acquire(shape="cfg-shape")
        replica = primary.replica()
        _, ready = replica.base_session("cfg/fingerprint")
        assert not ready
        replica.seal_base()
        assert pool.statistics.replicated_scope_seals == 1
        primary.release_replica(replica)
        pool.release(primary)
        pool.close()

    def test_counters_fold_into_engine_statistics(self):
        engine = SciductionEngine(
            EngineConfig(intra_job_workers=2, speculative_ogis=True)
        )
        try:
            engine.run_batch([TIMING_CORPUS[0], DEOB_CORPUS[0]])
            intra = engine.statistics()["intra_job"]
            assert set(intra) == {
                "sweep_tasks",
                "sweep_feasible",
                "speculation_wins",
                "speculation_losses",
                "replica_leases",
                "replicated_scope_seals",
            }
            assert intra["sweep_tasks"] > 0
            assert intra["speculation_wins"] + intra["speculation_losses"] > 0
        finally:
            engine.close()
