"""API-suite fixtures: optional forced-parallel engine execution.

Setting ``REPRO_API_FORCE_WORKERS=N`` (N > 1) reruns the whole api test
suite with every :class:`~repro.api.SciductionEngine` built at
``workers=N`` unless the test's config asks for a specific worker count —
the CI matrix uses this to prove the parallel executor is a drop-in
replacement for the sequential path.

Tests that inspect in-process artifacts (which deliberately do not cross
the worker process boundary — results come back in wire form) are marked
``sequential_only`` and keep their explicit configuration.
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest

import repro.api.engine as engine_module
import repro.api.memo as memo_module
from repro.analysis import lockcheck
from repro.api.config import EngineConfig

_FORCED_WORKERS = int(os.environ.get("REPRO_API_FORCE_WORKERS", "0"))


@pytest.fixture(autouse=True)
def _lockcheck_instrumentation():
    """Run every api test under the lock-order/discipline detector.

    Engines and memo stores built during the test get instrumented
    locks: a lock-order cycle or a ``@holds`` method entered without its
    lock raises at the violation site, and any violation swallowed by
    application-level error folding still fails the test here.
    """
    with lockcheck.instrument(engine_module, memo_module) as registry:
        yield
    assert not registry.violations, "\n".join(registry.violations)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "sequential_only: test depends on in-process state (e.g. artifact "
        "objects) that does not cross the worker process boundary",
    )


@pytest.fixture(autouse=True)
def _force_parallel_workers(request, monkeypatch):
    if _FORCED_WORKERS <= 1 or request.node.get_closest_marker("sequential_only"):
        yield
        return
    original = engine_module.SciductionEngine.__init__

    def forced(self, config=None, pool=None):
        config = config or EngineConfig()
        if config.workers == 1:
            config = replace(config, workers=_FORCED_WORKERS)
        original(self, config, pool)

    monkeypatch.setattr(engine_module.SciductionEngine, "__init__", forced)
    yield
