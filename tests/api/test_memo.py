"""Shared cross-worker check memo: store semantics + solver integration.

The store itself (LRU bound, cross-worker hit accounting, first-writer
wins) is exercised directly; the solver integration is exercised by
running the same query on independent solvers that share one store — the
second solver must answer without touching its SAT core.  Worker-process
integration is covered end to end by ``test_scheduler.py`` (rotated
batches) and the bench suite's skewed-stream workload.
"""

from __future__ import annotations

import pytest

from repro.api.memo import MemoClient, SharedCheckMemo
from repro.smt.solver import SmtResult, SmtSolver
from repro.smt.terms import bv_const, bv_var
from repro.smt.wire import check_wire_key, term_digest


def _query_solver(store: SharedCheckMemo | None, client_id: str) -> SmtSolver:
    solver = SmtSolver(memoize_checks=True)
    if store is not None:
        solver.set_memo_backend(MemoClient(store, client_id))
    return solver


def _multiply_query(solver: SmtSolver, width: int = 8) -> SmtResult:
    x = bv_var("x", width)
    solver.add((x * bv_const(3, width)).eq(bv_const(15, width)))
    return solver.check()


class TestSharedCheckMemoStore:
    def test_lru_eviction_bound(self):
        store = SharedCheckMemo(capacity=4)
        for index in range(10):
            store.publish(f"key-{index}", "sat", [True], "w0")
        assert store.size() == 4
        statistics = store.statistics()
        assert statistics["evictions"] == 6
        assert statistics["publishes"] == 10
        # The four most recent keys survived, the old ones are gone.
        assert store.lookup("key-9", "w0") is not None
        assert store.lookup("key-5", "w0") is None

    def test_lookup_refreshes_recency(self):
        store = SharedCheckMemo(capacity=2)
        store.publish("a", "sat", None, "w0")
        store.publish("b", "sat", None, "w0")
        assert store.lookup("a", "w0") is not None  # refresh a
        store.publish("c", "sat", None, "w0")  # evicts b, not a
        assert store.lookup("a", "w0") is not None
        assert store.lookup("b", "w0") is None

    def test_cross_worker_hits_counted_per_publisher(self):
        store = SharedCheckMemo(capacity=8)
        store.publish("k", "unsat", None, "worker-0")
        assert store.lookup("k", "worker-0") == ("unsat", None)
        assert store.lookup("k", "worker-1") == ("unsat", None)
        statistics = store.statistics()
        assert statistics["hits"] == 2
        assert statistics["cross_worker_hits"] == 1

    def test_first_writer_wins(self):
        store = SharedCheckMemo(capacity=8)
        store.publish("k", "sat", [True], "w0")
        store.publish("k", "unsat", None, "w1")
        assert store.lookup("k", "w2") == ("sat", [True])
        assert store.statistics()["duplicate_publishes"] == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SharedCheckMemo(capacity=0)

    def test_broken_transport_degrades_to_noop(self):
        class _DeadProxy:
            def lookup(self, key, requester):
                raise ConnectionResetError("manager gone")

            def publish(self, *args):
                raise ConnectionResetError("manager gone")

        client = MemoClient(_DeadProxy(), "w0")
        assert client.lookup("k") is None
        assert client.broken is True
        client.publish("k", "sat", None)  # must not raise


class TestWireKeys:
    def test_digest_is_structural_not_identity(self):
        cache_a: dict = {}
        cache_b: dict = {}
        x = bv_var("x", 8)
        formula = (x + bv_const(1, 8)).eq(bv_const(5, 8))
        again = (bv_var("x", 8) + bv_const(1, 8)).eq(bv_const(5, 8))
        assert term_digest(formula, cache_a) == term_digest(again, cache_b)

    def test_width_changes_the_key(self):
        def key(width: int) -> str:
            x = bv_var("x", width)
            formula = x.eq(bv_const(1, width))
            return check_wire_key((formula,), (), 10, {})

        assert key(8) != key(16)

    def test_frontier_changes_the_key(self):
        x = bv_var("x", 8)
        formula = x.eq(bv_const(1, 8))
        assert check_wire_key((formula,), (), 10, {}) != check_wire_key(
            (formula,), (), 11, {}
        )


class TestSolverIntegration:
    def test_second_solver_answers_from_shared_memo_without_search(self):
        store = SharedCheckMemo(capacity=64)
        first = _query_solver(store, "worker-0")
        assert _multiply_query(first) is SmtResult.SAT
        witness = first.model()["x"]

        second = _query_solver(store, "worker-1")
        assert _multiply_query(second) is SmtResult.SAT
        assert second.statistics.shared_memo_hits == 1
        assert second.statistics.check_memo_hits == 1
        # The SAT search never ran: no decisions, no conflicts.
        assert second.sat_statistics().decisions == 0
        assert second.model()["x"] == witness
        assert store.statistics()["cross_worker_hits"] == 1

    def test_shared_hit_is_cached_locally(self):
        store = SharedCheckMemo(capacity=64)
        assert _multiply_query(_query_solver(store, "w0")) is SmtResult.SAT
        solver = _query_solver(store, "w1")
        x = bv_var("x", 8)
        query = (x * bv_const(3, 8)).eq(bv_const(15, 8))
        solver.add(query)
        lookups_before = store.statistics()["lookups"]
        assert solver.check() is SmtResult.SAT
        assert store.statistics()["lookups"] == lookups_before + 1
        # Read-through: the repeat answers locally, no second round trip.
        assert solver.check() is SmtResult.SAT
        assert store.statistics()["lookups"] == lookups_before + 1
        assert solver.statistics.check_memo_hits == 2
        assert solver.statistics.shared_memo_hits == 1

    def test_unknown_answers_are_never_published(self):
        store = SharedCheckMemo(capacity=64)
        solver = SmtSolver(max_conflicts=0, memoize_checks=True)
        solver.set_memo_backend(MemoClient(store, "w0"))
        x = bv_var("x", 8)
        # Hard enough to exhaust a zero-conflict budget.
        solver.add((x * x).eq(bv_const(49, 8)), x.ugt(bv_const(8, 8)))
        assert solver.check() is SmtResult.UNKNOWN
        assert store.statistics()["publishes"] == 0

    def test_epoch_invalidation_on_clear(self):
        store = SharedCheckMemo(capacity=64)
        solver = _query_solver(store, "w0")
        assert _multiply_query(solver) is SmtResult.SAT
        solver.clear_check_memo()
        # The local memo is gone, but the shared entry still matches the
        # identical epoch (same assertions, same frontier) — the check is
        # answered shared, not re-searched.
        assert solver.check() is SmtResult.SAT
        assert solver.statistics.shared_memo_hits == 1


class TestPoolWiring:
    def test_pool_installs_backend_on_new_sessions(self):
        from repro.api.config import EngineConfig
        from repro.api.pool import SolverPool

        store = SharedCheckMemo(capacity=64)
        pool = SolverPool(
            EngineConfig(), memo_backend=MemoClient(store, "local")
        )
        lease = pool.acquire(shape="s")
        assert lease.solver._memo_backend is not None
        pool.release(lease)

    def test_engine_reports_shared_memo_statistics(self):
        from repro.api import DeobfuscationProblem, EngineConfig, SciductionEngine

        engine = SciductionEngine(EngineConfig(workers=1))
        engine.run(DeobfuscationProblem(task="multiply45", width=4, seed=0))
        statistics = engine.statistics()
        assert statistics["shared_memo"]["publishes"] > 0
        assert "pool" in statistics and "scheduler" in statistics
