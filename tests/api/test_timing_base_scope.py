"""Per-CFG base scopes for timing analysis (the PR-4 open item).

:class:`~repro.cfg.ssa.PathConstraintBuilder` now rides the pooled
lease's ``base_session`` / ``seal_base`` protocol like the OGIS encoder:
a repeated timing-analysis job finds its CFG's fingerprinted base scope
still sealed, keeps the session's check-memo epoch alive, and answers
the whole path-feasibility sweep from the memo instead of re-running the
SAT search.
"""

from __future__ import annotations

import pytest

from repro.api import EngineConfig, SciductionEngine, TimingAnalysisProblem
from repro.api.pool import SolverPool
from repro.cfg import build_cfg
from repro.cfg.programs import absolute_difference, bounded_linear_search
from repro.cfg.ssa import PathConstraintBuilder

SPEC = dict(
    program="bounded_linear_search",
    program_args={"length": 4, "word_width": 16},
    bound=250,
)


class TestFingerprint:
    def test_same_cfg_same_fingerprint(self):
        cfg_a = build_cfg(bounded_linear_search(4, 16))
        cfg_b = build_cfg(bounded_linear_search(4, 16))
        assert (
            PathConstraintBuilder(cfg_a).fingerprint()
            == PathConstraintBuilder(cfg_b).fingerprint()
        )

    def test_structure_and_flags_change_the_fingerprint(self):
        cfg = build_cfg(bounded_linear_search(4, 16))
        base = PathConstraintBuilder(cfg).fingerprint()
        assert PathConstraintBuilder(
            build_cfg(bounded_linear_search(3, 16))
        ).fingerprint() != base
        assert PathConstraintBuilder(
            build_cfg(absolute_difference(16))
        ).fingerprint() != base
        assert (
            PathConstraintBuilder(cfg, slice_to_conditions=False).fingerprint()
            != base
        )


class TestBuilderBaseScope:
    def test_builder_seals_and_reuses_the_base_scope(self):
        pool = SolverPool(EngineConfig())
        cfg = build_cfg(bounded_linear_search(3, 16))

        lease = pool.acquire(shape="timing")
        first = PathConstraintBuilder(cfg, solver_factory=lease)
        assert first.base_scope_reused is False
        pool.release(lease)

        lease = pool.acquire(shape="timing")
        second = PathConstraintBuilder(cfg, solver_factory=lease)
        assert second.base_scope_reused is True
        pool.release(lease)

    def test_plain_callable_factory_still_works(self):
        from repro.smt.solver import SmtSolver

        cfg = build_cfg(bounded_linear_search(3, 16))
        builder = PathConstraintBuilder(cfg, solver_factory=lambda: SmtSolver())
        assert builder.base_scope_reused is False
        assert builder.solver is not None


class TestEngineTimingReuse:
    @pytest.mark.sequential_only
    def test_second_timing_job_answers_from_the_memo(self):
        engine = SciductionEngine(EngineConfig(workers=1))
        first = engine.run(TimingAnalysisProblem(**SPEC))
        second = engine.run(TimingAnalysisProblem(**SPEC))
        assert (first.success, first.verdict) == (second.success, second.verdict)
        first_stats = first.details["engine"]["smt_job_statistics"]
        second_stats = second.details["engine"]["smt_job_statistics"]
        assert second.details["engine"]["session_reused"] is True
        # Every feasibility check of the repeated sweep is memo-answered.
        assert second_stats["check_memo_hits"] == second_stats["checks"]
        assert second_stats["checks"] > 0
        assert first_stats["check_memo_hits"] == 0
        # ...so the repeated job does strictly less encoding work too.
        assert (
            second_stats["clauses_generated"] <= first_stats["clauses_generated"]
        )
        # And the routing layer actually sent it to the warm session.
        assert engine.pool.statistics.routing_hits >= 1

    @pytest.mark.sequential_only
    def test_epoch_invalidation_on_base_scope_reseal(self):
        """A different CFG on the same session re-seals the base scope and
        must not serve the old epoch's memoized answers.

        ``bounded_linear_search`` with a different length has the *same
        shape key* (same program name, same word width) but a different
        CFG — the warm session is reused, the fingerprint mismatches, the
        base scope is re-sealed, and the memo epoch is invalidated.
        """
        engine = SciductionEngine(EngineConfig(workers=1, pool_size=1))
        first = engine.run(TimingAnalysisProblem(**SPEC))
        other = engine.run(
            TimingAnalysisProblem(
                program="bounded_linear_search",
                program_args={"length": 3, "word_width": 16},
                bound=250,
            )
        )
        assert other.success
        assert other.details["engine"]["session_reused"] is True
        other_stats = other.details["engine"]["smt_job_statistics"]
        # New fingerprint ⇒ fresh epoch: no stale local answers, and the
        # shared store cannot match either (different assertions and
        # frontier), so every check ran for real.
        assert other_stats["check_memo_hits"] == 0
        again = engine.run(TimingAnalysisProblem(**SPEC))
        assert (first.success, first.verdict) == (again.success, again.verdict)
