"""Tests for the GameTime timing-analysis application (paper Section 3)."""

import numpy as np
import pytest

from repro.cfg import build_cfg, conditional_cascade, modular_exponentiation, saturating_add
from repro.cfg.basis import extract_basis_paths
from repro.cfg.paths import enumerate_paths
from repro.gametime import (
    ExhaustiveEstimator,
    GameTime,
    GameTimeLearner,
    RandomTestingEstimator,
    WeightPerturbationHypothesis,
    WeightPerturbationModel,
)
from repro.platform import MeasurementHarness, PerturbationModel, TimingOracle


@pytest.fixture(scope="module")
def modexp_gametime():
    """A prepared GameTime instance on a 5-bit modexp (32 paths, 6 basis)."""
    analysis = GameTime(modular_exponentiation(5, 16), trials=18, seed=7)
    analysis.prepare()
    return analysis


class TestModel:
    def test_prediction_is_linear_in_edges(self):
        weights = np.array([1.0, 2.0, 3.0])
        model = WeightPerturbationModel(edge_weights=weights)
        from repro.cfg.paths import Path

        path = Path(edges=(0, 2), nodes=(0, 1, 2))
        assert model.predict_path_time(path) == pytest.approx(4.0)
        assert model.predict_vector_time(np.array([1, 1, 1])) == pytest.approx(6.0)

    def test_hypothesis_membership(self):
        hypothesis = WeightPerturbationHypothesis(num_edges=3, mu_max=5.0, rho=1.0)
        inside = WeightPerturbationModel(
            edge_weights=np.zeros(3), mu_max=5.0, rho=1.0
        )
        wrong_size = WeightPerturbationModel(edge_weights=np.zeros(4), mu_max=5.0, rho=1.0)
        too_noisy = WeightPerturbationModel(edge_weights=np.zeros(3), mu_max=9.0, rho=1.0)
        assert hypothesis.contains(inside)
        assert not hypothesis.contains(wrong_size)
        assert not hypothesis.contains(too_noisy)
        assert hypothesis.is_strict_restriction() is True


class TestLearner:
    def test_learner_reproduces_basis_measurements(self):
        program = conditional_cascade(3)
        cfg = build_cfg(program)
        basis = extract_basis_paths(cfg)
        harness = MeasurementHarness.from_program(program)
        oracle = TimingOracle(harness)
        learner = GameTimeLearner(
            hypothesis=WeightPerturbationHypothesis(cfg.num_edges, mu_max=0.0),
            basis=basis.basis,
            num_edges=cfg.num_edges,
            timing_oracle=oracle,
            trials=12,
            seed=0,
        )
        model = learner.infer()
        for vector, measured in zip(model.basis_vectors, model.basis_times):
            assert model.predict_vector_time(vector) == pytest.approx(measured, abs=1e-6)

    def test_every_basis_path_measured_at_least_once(self):
        program = conditional_cascade(3)
        cfg = build_cfg(program)
        basis = extract_basis_paths(cfg)
        oracle = TimingOracle(MeasurementHarness.from_program(program))
        learner = GameTimeLearner(
            hypothesis=WeightPerturbationHypothesis(cfg.num_edges, mu_max=0.0),
            basis=basis.basis,
            num_edges=cfg.num_edges,
            timing_oracle=oracle,
            trials=len(basis.basis),
            seed=3,
        )
        learner.collect_measurements()
        assert all(samples for samples in learner.measurements.samples)


class TestEndToEnd:
    def test_basis_path_count_matches_formula(self, modexp_gametime):
        assert modexp_gametime.num_basis_paths == 6

    def test_distribution_prediction_is_exact_on_deterministic_platform(
        self, modexp_gametime
    ):
        report = modexp_gametime.predict_distribution(measure=True)
        assert len(report.predictions) == 32
        assert report.max_absolute_error < 1.0

    def test_wcet_estimate_matches_exhaustive_ground_truth(self, modexp_gametime):
        estimate = modexp_gametime.estimate_wcet()
        truth = ExhaustiveEstimator(modular_exponentiation(5, 16)).estimate()
        assert estimate.measured_cycles == truth.estimated_wcet
        # The worst case sets every exponent bit (the paper's 255 analogue).
        assert estimate.test_case["exponent"] == (1 << 5) - 1

    def test_timing_query_answers(self, modexp_gametime):
        estimate = modexp_gametime.estimate_wcet()
        yes = modexp_gametime.answer_timing_query(estimate.measured_cycles + 10)
        no = modexp_gametime.answer_timing_query(estimate.measured_cycles - 10)
        assert yes.within_bound
        assert not no.within_bound
        assert no.witness.measured_cycles > no.bound

    def test_run_returns_sciduction_result(self):
        analysis = GameTime(conditional_cascade(3), trials=10, seed=1)
        result = analysis.run(bound=10_000)
        assert result.success
        assert result.verdict is True
        assert result.oracle_queries >= 10
        assert result.certificate is not None
        assert "weight-perturbation" in result.certificate.statement()

    def test_histogram_rows_cover_all_paths(self, modexp_gametime):
        report = modexp_gametime.predict_distribution(measure=True)
        rows = report.histogram(bin_width=10)
        assert sum(predicted for _, predicted, _ in rows) == len(report.predictions)
        assert sum(measured for _, _, measured in rows) == len(report.predictions)

    def test_describe_table1_row(self, modexp_gametime):
        description = modexp_gametime.describe()
        assert "basis" in description["I"] or "learning" in description["I"]
        assert "SMT" in description["D"]

    def test_prediction_under_noise_within_perturbation_bound(self):
        analysis = GameTime(
            conditional_cascade(3),
            perturbation=PerturbationModel(mean=5.0, seed=2),
            trials=40,
            mu_max=5.0,
            seed=2,
        )
        analysis.prepare()
        report = analysis.predict_distribution(measure=True)
        # Mean prediction error should stay within a few multiples of mu_max.
        assert report.mean_absolute_error < 4 * 5.0

    def test_path_prediction_with_measurement(self, modexp_gametime):
        path = next(enumerate_paths(modexp_gametime.cfg))
        prediction = modexp_gametime.predict_path(path, measure=True)
        assert prediction.measured is not None
        assert prediction.error is not None
        assert prediction.error < 1.0


class TestBaselines:
    def test_random_testing_underestimates_with_equal_budget(self):
        program = modular_exponentiation(6, 16)
        gametime = GameTime(program, trials=21, seed=11)
        gametime.prepare()
        wcet = gametime.estimate_wcet().measured_cycles
        random_result = RandomTestingEstimator(program, seed=13).estimate(budget=21)
        assert random_result.estimated_wcet <= wcet

    def test_exhaustive_estimator_counts_paths(self):
        program = conditional_cascade(3)
        result = ExhaustiveEstimator(program).estimate()
        assert result.measurements == 8
        assert result.estimated_wcet > 0

    def test_random_estimator_budget_validation(self):
        with pytest.raises(Exception):
            RandomTestingEstimator(saturating_add()).estimate(budget=0)
