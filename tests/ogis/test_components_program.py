"""Tests for components, the loop-free program IR, and the obfuscated benchmarks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ReproError
from repro.ogis import (
    ComponentInstance,
    LoopFreeProgram,
    component_add,
    component_and,
    component_constant,
    component_is_zero,
    component_neg,
    component_not,
    component_or,
    component_select,
    component_shift_left,
    component_shift_right,
    component_sub,
    component_xor,
    interchange_library,
    interchange_obfuscated,
    interchange_reference,
    multiply45_library,
    multiply45_obfuscated,
    multiply45_reference,
    standard_library,
    turn_off_rightmost_one_obfuscated,
    turn_off_rightmost_one_reference,
    average_floor_obfuscated,
)
from repro.smt import Assignment, bv_var, evaluate


class TestComponents:
    @pytest.mark.parametrize(
        "component,args,expected",
        [
            (component_add(), (200, 100), (300) % 256),
            (component_sub(), (5, 9), (5 - 9) % 256),
            (component_xor(), (0b1100, 0b1010), 0b0110),
            (component_and(), (0b1100, 0b1010), 0b1000),
            (component_or(), (0b1100, 0b1010), 0b1110),
            (component_not(), (0,), 0xFF),
            (component_neg(), (1,), 0xFF),
            (component_shift_left(2), (3,), 12),
            (component_shift_right(2), (12,), 3),
            (component_constant(7), (), 7),
            (component_is_zero(), (0,), 1),
            (component_is_zero(), (9,), 0),
            (component_select(), (1, 5, 6), 5),
            (component_select(), (0, 5, 6), 6),
        ],
    )
    def test_concrete_semantics(self, component, args, expected):
        assert component.apply(args, width=8) == expected

    def test_concrete_and_symbolic_semantics_agree(self):
        width = 8
        for component in standard_library() + [
            component_shift_left(3), component_shift_right(1), component_is_zero(),
        ]:
            names = [f"v{i}" for i in range(component.arity)]
            terms = [bv_var(name, width) for name in names]
            symbolic = component.encode(terms, width)
            for seedling in range(0, 256, 37):
                values = [(seedling * (i + 3) + 11) % 256 for i in range(component.arity)]
                env = Assignment(bv_values=dict(zip(names, values)))
                assert evaluate(symbolic, env) == component.apply(values, width)

    def test_arity_checked(self):
        with pytest.raises(ReproError):
            component_add().apply((1,), 8)

    def test_render(self):
        assert component_xor().render(["a", "b"]) == "a ^ b"
        assert component_shift_left(2).render(["y"]) == "y << 2"


class TestLoopFreeProgram:
    def _xor_swap(self):
        xor = component_xor()
        return LoopFreeProgram(
            num_inputs=2,
            instances=[
                ComponentInstance(xor, (0, 1), 2),
                ComponentInstance(xor, (0, 2), 3),
                ComponentInstance(xor, (2, 3), 4),
            ],
            output_lines=(3, 4),
            width=8,
        )

    def test_run_swaps(self):
        program = self._xor_swap()
        assert program.run((3, 5)) == (5, 3)
        assert program.run((0xAB, 0xCD), width=16) == (0xCD, 0xAB)

    def test_pretty_printed_form(self):
        text = self._xor_swap().pretty("interchange")
        assert "interchange(in0, in1)" in text
        assert text.count("^") == 3
        assert "return" in text

    def test_equivalence_check(self):
        program = self._xor_swap()
        assert program.equivalent_to(lambda v: (v[1], v[0]), width=8)
        assert not program.equivalent_to(lambda v: (v[0], v[1]), width=8)

    def test_ssa_violation_rejected(self):
        xor = component_xor()
        with pytest.raises(ReproError):
            LoopFreeProgram(
                num_inputs=1,
                instances=[ComponentInstance(xor, (0, 2), 1), ComponentInstance(xor, (0, 0), 2)],
                output_lines=(2,),
            )

    def test_non_contiguous_output_lines_rejected(self):
        xor = component_xor()
        with pytest.raises(ReproError):
            LoopFreeProgram(
                num_inputs=1,
                instances=[ComponentInstance(xor, (0, 0), 3)],
                output_lines=(3,),
            )

    def test_wrong_input_arity_rejected(self):
        with pytest.raises(ReproError):
            self._xor_swap().run((1,))


class TestObfuscatedBenchmarks:
    @settings(max_examples=60, deadline=None)
    @given(src=st.integers(min_value=0, max_value=0xFFFF), dest=st.integers(min_value=0, max_value=0xFFFF))
    def test_interchange_is_a_swap(self, src, dest):
        assert interchange_obfuscated((src, dest), 16) == (dest, src)
        assert interchange_reference((src, dest), 16) == (dest, src)

    @settings(max_examples=60, deadline=None)
    @given(value=st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_multiply45_is_multiplication_by_45(self, value):
        assert multiply45_obfuscated((value,), 32) == ((45 * value) & 0xFFFFFFFF,)
        assert multiply45_reference((value,), 32) == ((45 * value) & 0xFFFFFFFF,)

    @settings(max_examples=60, deadline=None)
    @given(value=st.integers(min_value=0, max_value=255))
    def test_additional_benchmarks(self, value):
        assert turn_off_rightmost_one_obfuscated((value,), 8) == (
            turn_off_rightmost_one_reference((value,), 8)
        )
        assert turn_off_rightmost_one_reference((value,), 8) == (value & ((value - 1) % 256),)
        other = (value * 7 + 13) % 256
        assert average_floor_obfuscated((value, other), 8) == ((value + other) // 2 % 256,)

    def test_library_builders(self):
        assert [c.name for c in interchange_library()] == ["xor", "xor", "xor"]
        assert [c.name for c in multiply45_library()] == ["shl2", "add", "shl3", "add"]
        assert len(standard_library()) >= 8
