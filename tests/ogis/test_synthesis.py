"""Tests for the synthesis encoder, the OGIS loop, and the baselines.

To keep the SAT queries small these tests use narrow widths (4 bits) and
tiny libraries; the full-width Figure 8 reproductions live in the
benchmark suite.
"""

import pytest

from repro.core import UnrealizableError
from repro.ogis import (
    EnumerativeSynthesizer,
    IOExample,
    OgisSynthesizer,
    ProgramIOOracle,
    SynthesisEncoder,
    component_add,
    component_library_hypothesis,
    component_shift_left,
    component_sub,
    component_xor,
    enumerate_programs,
    oracle_from_task_program,
)
from repro.cfg import Program, assign, binop, block, const, var


def _oracle(function, n_in, n_out, width=4):
    return ProgramIOOracle(function, n_in, n_out, width)


class TestSynthesisEncoder:
    def test_synthesize_consistent_program(self):
        encoder = SynthesisEncoder([component_xor()], num_inputs=2, num_outputs=1, width=4)
        examples = [IOExample((3, 5), (6,)), IOExample((1, 1), (0,))]
        program = encoder.synthesize(examples)
        for example in examples:
            assert program.run(example.inputs, width=4) == example.outputs

    def test_unrealizable_examples_rejected(self):
        encoder = SynthesisEncoder([component_xor()], num_inputs=2, num_outputs=1, width=4)
        # xor of the inputs (in any wiring) cannot produce these outputs.
        examples = [IOExample((0, 0), (5,))]
        with pytest.raises(UnrealizableError):
            encoder.synthesize(examples)

    def test_distinguishing_input_found_and_exhausted(self):
        encoder = SynthesisEncoder(
            [component_add(), component_xor()], num_inputs=2, num_outputs=1, width=4
        )
        examples = [IOExample((0, 0), (0,))]
        candidate = encoder.synthesize(examples)
        distinguishing = encoder.distinguishing_input(examples, candidate)
        # (0,0) cannot pin down add-vs-xor ordering; a distinguishing input
        # must exist.
        assert distinguishing is not None
        # After adding enough examples the loop converges (covered below).

    def test_semantic_difference(self):
        encoder = SynthesisEncoder([component_xor()], num_inputs=2, num_outputs=1, width=4)
        xor_prog = encoder.synthesize([IOExample((3, 5), (6,)), IOExample((2, 2), (0,))])
        add_encoder = SynthesisEncoder([component_add()], num_inputs=2, num_outputs=1, width=4)
        add_prog = add_encoder.synthesize([IOExample((1, 2), (3,))])
        witness = encoder.semantic_difference(xor_prog, add_prog)
        assert witness is not None
        assert xor_prog.run(witness, width=4) != add_prog.run(witness, width=4)
        assert encoder.semantic_difference(xor_prog, xor_prog) is None

    def test_symmetry_breaking_well_formedness(self):
        encoder = SynthesisEncoder(
            [component_xor(), component_xor()], num_inputs=1, num_outputs=1, width=4
        )
        program = encoder.synthesize([IOExample((5,), (5,))])
        # With two identical components their output lines must be ordered,
        # but the program must still reproduce the example.
        assert program.run((5,), width=4) == (5,)


class TestOgisSynthesizer:
    def test_recovers_double_function(self):
        oracle = _oracle(lambda v: ((v[0] + v[0]) % 16,), 1, 1)
        synthesizer = OgisSynthesizer([component_add()], oracle, width=4, seed=3)
        program = synthesizer.synthesize()
        assert program.equivalent_to(lambda v: ((v[0] * 2) % 16,), width=4)
        assert synthesizer.trace.oracle_queries >= 1

    def test_recovers_subtraction(self):
        oracle = _oracle(lambda v: ((v[0] - v[1]) % 16,), 2, 1)
        synthesizer = OgisSynthesizer([component_sub()], oracle, width=4, seed=5)
        program = synthesizer.synthesize()
        assert program.equivalent_to(lambda v: ((v[0] - v[1]) % 16,), width=4)

    def test_shift_add_composition(self):
        # 5*y = (y << 2) + y at width 4 -> coefficient 5 distinct from any
        # other reachable coefficient, so the result is exact.
        oracle = _oracle(lambda v: ((5 * v[0]) % 16,), 1, 1)
        synthesizer = OgisSynthesizer(
            [component_shift_left(2), component_add()], oracle, width=4, seed=2
        )
        program = synthesizer.synthesize()
        assert program.equivalent_to(lambda v: ((5 * v[0]) % 16,), width=4)

    def test_unrealizable_reports_infeasibility(self):
        oracle = _oracle(lambda v: ((v[0] + 1) % 16,), 1, 1)
        synthesizer = OgisSynthesizer([component_xor(), component_xor()], oracle, width=4, seed=1)
        result = synthesizer.run()
        assert not result.success
        assert result.details["outcome"] == "infeasibility-reported"

    def test_run_produces_certificate_and_trace(self):
        oracle = _oracle(lambda v: ((v[0] + v[1]) % 16,), 2, 1)
        synthesizer = OgisSynthesizer([component_add()], oracle, width=4, seed=9)
        result = synthesizer.run()
        assert result.success
        assert result.certificate is not None
        assert "loop-free" in result.certificate.statement()
        assert "program" in result.details

    def test_hypothesis_membership_of_result(self):
        library = [component_add(), component_xor()]
        oracle = _oracle(lambda v: (((v[0] + v[1]) ^ v[0]) % 16,), 2, 1)
        synthesizer = OgisSynthesizer(library, oracle, width=4, seed=4)
        program = synthesizer.synthesize()
        hypothesis = component_library_hypothesis(library)
        assert hypothesis.contains(program)

    def test_oracle_from_task_program(self):
        task = Program(
            name="triple",
            parameters=("x",),
            body=block(assign("y", binop("*", var("x"), const(3)))),
            returns=("y",),
            word_width=4,
        )
        oracle = oracle_from_task_program(task)
        assert oracle.query((5,)) == ((15) % 16,)
        synthesizer = OgisSynthesizer(
            [component_shift_left(1), component_add()], oracle, width=4, seed=6
        )
        program = synthesizer.synthesize()
        assert program.equivalent_to(lambda v: ((3 * v[0]) % 16,), width=4)


class TestIncrementalEncoder:
    def test_growing_example_set_reuses_solver(self):
        encoder = SynthesisEncoder(
            [component_add(), component_xor()], num_inputs=2, num_outputs=1, width=4
        )
        examples = [IOExample((0, 0), (0,))]
        encoder.synthesize(examples)
        variables_first = encoder.smt_statistics().variables_generated
        examples.append(IOExample((1, 2), (3,)))
        encoder.synthesize(examples)
        variables_second = encoder.smt_statistics().variables_generated
        # The second call encodes only the new example, which is much
        # smaller than the initial well-formedness + example encoding.
        assert variables_second - variables_first < variables_first

    def test_non_extending_example_set_resets_solver(self):
        encoder = SynthesisEncoder([component_xor()], num_inputs=2, num_outputs=1, width=4)
        program = encoder.synthesize([IOExample((3, 5), (6,)), IOExample((1, 1), (0,))])
        assert program.run((3, 5), width=4) == (6,)
        # A disjoint example list (not an extension) still yields correct
        # results: the persistent solver is rebuilt.
        program = encoder.synthesize([IOExample((2, 7), (5,))])
        assert program.run((2, 7), width=4) == (5,)

    def test_reencode_mode_matches_incremental(self):
        oracle = _oracle(lambda v: ((5 * v[0]) % 16,), 1, 1)
        incremental = OgisSynthesizer(
            [component_shift_left(2), component_add()], oracle, width=4, seed=2
        )
        program_incremental = incremental.synthesize()
        oracle = _oracle(lambda v: ((5 * v[0]) % 16,), 1, 1)
        reencode = OgisSynthesizer(
            [component_shift_left(2), component_add()],
            oracle,
            width=4,
            seed=2,
            reencode_each_check=True,
        )
        program_reencode = reencode.synthesize()
        assert program_incremental.equivalent_to(lambda v: ((5 * v[0]) % 16,), width=4)
        assert program_reencode.equivalent_to(lambda v: ((5 * v[0]) % 16,), width=4)
        incremental_stats = incremental.encoder.smt_statistics()
        reencode_stats = reencode.encoder.smt_statistics()
        assert (
            incremental_stats.variables_generated
            < reencode_stats.variables_generated
        )

    def test_distinguishing_assumption_does_not_leak(self):
        # Two consecutive distinguishing queries against *different*
        # candidates on the same encoder must be independent.  With the
        # single-XOR library the only consistent behaviours on (0,0)->(0,)
        # are `0` (xor(in0, in0)) and `in0 ^ in1`; if the first candidate's
        # disagreement constraint leaked into the solver (asserted instead
        # of assumed), the second query would demand a behaviour differing
        # from *both* and wrongly report convergence (None).
        from repro.ogis.program import ComponentInstance, LoopFreeProgram

        xor = component_xor()
        encoder = SynthesisEncoder([xor], num_inputs=2, num_outputs=1, width=4)
        examples = [IOExample((0, 0), (0,))]

        def xor_program(input_lines):
            return LoopFreeProgram(
                num_inputs=2,
                instances=[
                    ComponentInstance(
                        component=xor, input_lines=input_lines, output_line=2
                    )
                ],
                output_lines=(2,),
                width=4,
            )

        candidate_zero = xor_program((0, 0))  # computes 0
        candidate_xor = xor_program((0, 1))  # computes in0 ^ in1
        assert encoder.distinguishing_input(examples, candidate_zero) is not None
        assert encoder.distinguishing_input(examples, candidate_xor) is not None


class TestBaselines:
    def test_enumerate_programs_counts(self):
        programs = list(
            enumerate_programs([component_add()], num_inputs=2, num_outputs=1, width=4)
        )
        # One component, 2 inputs: wiring 2x2=4, outputs 3 lines -> 12 programs.
        assert len(programs) == 12

    def test_enumerative_baseline_matches_target(self):
        oracle = _oracle(lambda v: ((v[0] + v[0]) % 16,), 1, 1)
        baseline = EnumerativeSynthesizer([component_add()], oracle, width=4, seed=2)
        result = baseline.synthesize()
        assert result.program is not None
        assert result.program.equivalent_to(lambda v: ((2 * v[0]) % 16,), width=4)
        assert result.candidates_tested > 0
