"""Tests for the runtime lock-order / lock-discipline detector itself.

These construct violations on purpose, so they run *outside* the
suite-wide instrumentation fixtures (which would fail the test on the
recorded violation): each test opens its own :func:`instrument` block
over a throwaway probe module and inspects the registry directly.
"""

from __future__ import annotations

import threading
import types

import pytest

from repro.analysis import (
    LockDisciplineViolation,
    LockOrderViolation,
    guarded_by,
    holds,
    instrument,
)
from repro.analysis.annotations import GUARDED_ATTR, HOLDS_ATTR
from repro.analysis.lockcheck import InstrumentedLock


def _probe_module() -> types.ModuleType:
    module = types.ModuleType("lockcheck_probe")
    module.threading = threading
    return module


def test_instrument_wraps_only_targeted_module_locks():
    probe = _probe_module()
    with instrument(probe):
        wrapped = probe.threading.Lock()
        unwrapped = threading.Lock()
        assert isinstance(wrapped, InstrumentedLock)
        assert not isinstance(unwrapped, InstrumentedLock)
    # After the block the module is back on the real threading module.
    assert probe.threading is threading


def test_consistent_nested_acquisition_is_clean():
    probe = _probe_module()
    with instrument(probe) as registry:
        lock_a = probe.threading.Lock()
        lock_b = probe.threading.Lock()

        def worker() -> None:
            for _ in range(50):
                with lock_a:
                    with lock_b:
                        pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        worker()
    assert registry.violations == []


def test_abba_cycle_raises_before_blocking():
    probe = _probe_module()
    with instrument(probe) as registry:
        lock_a = probe.threading.Lock()
        lock_b = probe.threading.Lock()
        with lock_a:
            with lock_b:
                pass
        # The inverted order closes the cycle; no second thread (and no
        # actual deadlock) is needed — the graph remembers A → B.
        with lock_b:
            with pytest.raises(LockOrderViolation):
                with lock_a:
                    pass  # pragma: no cover — acquire must raise
        assert len(registry.violations) == 1
        assert "cycle" in registry.violations[0]


def test_rlock_reentrancy_adds_no_cycle():
    probe = _probe_module()
    with instrument(probe) as registry:
        lock = probe.threading.RLock()
        with lock:
            with lock:
                pass
    assert registry.violations == []
    assert registry.edges == {}


def test_condition_wait_keeps_held_bookkeeping():
    probe = _probe_module()
    with instrument(probe) as registry:
        lock = probe.threading.Lock()
        condition = probe.threading.Condition(lock)
        released: list[bool] = []

        def releaser() -> None:
            with condition:
                released.append(True)
                condition.notify_all()

        with condition:
            thread = threading.Thread(target=releaser)
            thread.start()
            # wait() releases the underlying lock (letting the releaser
            # in) and must restore it — and the held-set — on wakeup.
            assert condition.wait(timeout=5.0)
            thread.join()
        assert released == [True]
        # A fresh acquisition still works and records no violation.
        with condition:
            pass
    assert registry.violations == []


class _Guarded:
    def __init__(self, lock_factory):
        self._lock = lock_factory()
        self._items: list[int] = []

    @holds("_lock")
    def add_unlocked_contract(self, value: int) -> None:
        self._items.append(value)

    def add_properly(self, value: int) -> None:
        with self._lock:
            self.add_unlocked_contract(value)


def test_holds_violation_raises_and_is_recorded():
    probe = _probe_module()
    with instrument(probe) as registry:
        guarded = _Guarded(probe.threading.Lock)
        guarded.add_properly(1)
        assert guarded._items == [1]
        with pytest.raises(LockDisciplineViolation):
            guarded.add_unlocked_contract(2)
        assert len(registry.violations) == 1
        assert "add_unlocked_contract" in registry.violations[0]


def test_holds_is_inert_without_instrumentation():
    guarded = _Guarded(threading.Lock)
    guarded.add_unlocked_contract(3)  # contract unchecked: plain lock
    assert guarded._items == [3]
    assert getattr(_Guarded.add_unlocked_contract, HOLDS_ATTR) == "_lock"


def test_guarded_by_records_metadata():
    @guarded_by("_lock", "_jobs", "_pending", aliases=("_wakeup",))
    class Example:
        pass

    assert getattr(Example, GUARDED_ATTR) == {
        "_jobs": "_lock",
        "_pending": "_lock",
    }

    with pytest.raises(ValueError):
        guarded_by("_lock")(Example)


def test_nested_instrumentation_rejected():
    probe = _probe_module()
    with instrument(probe):
        with pytest.raises(Exception, match="already active"):
            with instrument(probe):
                pass  # pragma: no cover
