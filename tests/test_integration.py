"""Cross-module integration tests: the three applications end to end.

These are scaled-down versions of the benchmark experiments (smaller
exponents, coarser grids, narrower bit widths) so they complete in seconds
while still running every stage of each sciductive pipeline.
"""

import pytest

from repro import SciductionResult
from repro.cfg import modular_exponentiation
from repro.gametime import ExhaustiveEstimator, GameTime
from repro.hybrid import make_transmission_synthesizer
from repro.ogis import (
    OgisSynthesizer,
    ProgramIOOracle,
    component_add,
    component_shift_left,
    component_xor,
)


class TestGameTimePipeline:
    def test_fig6_shape_small(self):
        """GameTime on a 4-bit modexp: basis measurements predict all paths."""
        analysis = GameTime(modular_exponentiation(4, 16), trials=15, seed=1)
        report = analysis.predict_distribution(measure=True)
        assert len(report.predictions) == 16
        assert analysis.num_basis_paths == 5
        assert report.max_absolute_error < 1.0
        wcet = analysis.estimate_wcet()
        truth = ExhaustiveEstimator(modular_exponentiation(4, 16)).estimate()
        assert wcet.measured_cycles == truth.estimated_wcet
        assert wcet.test_case["exponent"] == 15

    def test_result_is_sciduction_result(self):
        result = GameTime(modular_exponentiation(3, 16), trials=10).run()
        assert isinstance(result, SciductionResult)
        assert result.success and result.artifact is not None


class TestOgisPipeline:
    def test_fig8_shape_small(self):
        """Recover a swap and a shift-add multiply at 4-bit width."""
        swap_oracle = ProgramIOOracle(lambda v: (v[1], v[0]), 2, 2, width=4)
        swap = OgisSynthesizer(
            [component_xor(), component_xor(), component_xor()],
            swap_oracle,
            width=4,
            seed=0,
        ).synthesize()
        assert swap.equivalent_to(lambda v: (v[1], v[0]), width=4)

        mul5_oracle = ProgramIOOracle(lambda v: ((5 * v[0]) % 16,), 1, 1, width=4)
        mul5 = OgisSynthesizer(
            [component_shift_left(2), component_add()], mul5_oracle, width=4, seed=0
        ).synthesize()
        assert mul5.equivalent_to(lambda v: ((5 * v[0]) % 16,), width=4)

    def test_oracle_query_count_is_small(self):
        oracle = ProgramIOOracle(lambda v: (v[1], v[0]), 2, 2, width=4)
        synthesizer = OgisSynthesizer(
            [component_xor(), component_xor(), component_xor()], oracle, width=4, seed=0
        )
        synthesizer.synthesize()
        # Small teaching dimension: a handful of oracle queries suffices.
        assert synthesizer.trace.oracle_queries <= 6


class TestSwitchingLogicPipeline:
    def test_eq3_shape_coarse(self):
        setup = make_transmission_synthesizer(
            dwell_time=0.0, omega_step=0.25, integration_step=0.05, horizon=50.0
        )
        report = setup.synthesizer.synthesize()
        guard = report.switching_logic["g12U"].interval("omega")
        assert guard.low == pytest.approx(13.29, abs=0.3)
        assert guard.high == pytest.approx(26.70, abs=0.3)
        assert report.iterations <= 4


class TestTable1:
    def test_three_applications_report_h_i_d(self):
        rows = [
            GameTime(modular_exponentiation(3, 16), trials=8).describe(),
            OgisSynthesizer(
                [component_xor()],
                ProgramIOOracle(lambda v: (v[0] ^ v[1],), 2, 1, width=4),
                width=4,
            ).describe(),
            make_transmission_synthesizer(omega_step=0.5).synthesizer.describe(),
        ]
        assert len(rows) == 3
        for row in rows:
            assert set(row) >= {"procedure", "H", "I", "D"}
