"""Tests for path vectors, enumeration, rank tracking, and basis extraction."""

import numpy as np
import pytest

from repro.core import CompilationError
from repro.cfg import (
    RationalRankTracker,
    build_cfg,
    conditional_cascade,
    enumerate_paths,
    execution_path,
    expansion_coefficients,
    extract_basis_paths,
    figure4_toy,
    modular_exponentiation,
    path_from_edges,
    saturating_add,
)
from repro.cfg.ssa import PathConstraintBuilder


class TestPathEnumeration:
    def test_enumeration_counts_match(self):
        for program in (figure4_toy(), conditional_cascade(3), saturating_add()):
            cfg = build_cfg(program)
            assert len(list(enumerate_paths(cfg))) == cfg.count_paths()

    def test_enumeration_limit(self):
        cfg = build_cfg(modular_exponentiation(6, 16))
        assert len(list(enumerate_paths(cfg, limit=10))) == 10

    def test_paths_are_entry_to_exit(self):
        cfg = build_cfg(conditional_cascade(2))
        for path in enumerate_paths(cfg):
            assert path.nodes[0] == cfg.entry
            assert path.nodes[-1] == cfg.exit
            rebuilt = path_from_edges(cfg, path.edges)
            assert rebuilt.nodes == path.nodes

    def test_path_from_disconnected_edges_rejected(self):
        cfg = build_cfg(saturating_add())
        edges = [cfg.edges[-1].index, cfg.edges[0].index]
        with pytest.raises(CompilationError):
            path_from_edges(cfg, edges)

    def test_execution_path_is_valid_path(self):
        cfg = build_cfg(saturating_add())
        path = execution_path(cfg, {"a": 30000, "b": 30000})
        assert path.nodes[0] == cfg.entry and path.nodes[-1] == cfg.exit

    def test_vector_indicator(self):
        cfg = build_cfg(saturating_add())
        path = next(enumerate_paths(cfg))
        vector = path.vector(cfg.num_edges)
        assert set(np.unique(vector)) <= {0.0, 1.0}
        assert vector.sum() == len(path.edges)


class TestRankTracker:
    def test_rank_increases_only_for_independent_vectors(self):
        tracker = RationalRankTracker(3)
        assert tracker.add([1, 0, 0])
        assert not tracker.add([2, 0, 0])
        assert tracker.add([1, 1, 0])
        assert not tracker.add([3, 1, 0])
        assert tracker.add([0, 0, 5])
        assert tracker.rank == 3

    def test_would_increase_rank_is_side_effect_free(self):
        tracker = RationalRankTracker(2)
        tracker.add([1, 0])
        assert tracker.would_increase_rank([0, 1])
        assert tracker.rank == 1


class TestExpansionCoefficients:
    def test_exact_expansion(self):
        basis = [np.array([1.0, 0.0, 1.0]), np.array([0.0, 1.0, 1.0])]
        target = np.array([1.0, 1.0, 2.0])
        coefficients = expansion_coefficients(basis, target)
        assert np.allclose(coefficients, [1.0, 1.0])

    def test_outside_span_rejected(self):
        basis = [np.array([1.0, 0.0, 0.0])]
        with pytest.raises(CompilationError):
            expansion_coefficients(basis, np.array([0.0, 1.0, 0.0]))


class TestBasisExtraction:
    def test_modexp_basis_size_and_tests(self):
        program = modular_exponentiation(5, 16)
        cfg = build_cfg(program)
        result = extract_basis_paths(cfg)
        assert result.complete
        assert len(result.basis) == cfg.basis_dimension() == 6
        # Every basis path's test case actually drives execution down it.
        for feasible in result.basis:
            execution = cfg.execute(feasible.test_case)
            assert tuple(execution.edge_sequence) == feasible.path.edges

    def test_every_path_expands_in_the_basis(self):
        program = modular_exponentiation(4, 16)
        cfg = build_cfg(program)
        result = extract_basis_paths(cfg)
        vectors = result.vectors(cfg.num_edges)
        for path in enumerate_paths(cfg):
            coefficients = expansion_coefficients(vectors, path.vector(cfg.num_edges))
            assert len(coefficients) == len(vectors)

    def test_structural_extraction_without_feasibility(self):
        cfg = build_cfg(conditional_cascade(4))
        result = extract_basis_paths(cfg, check_feasibility=False)
        assert result.complete
        assert result.infeasible_skipped == 0

    def test_infeasible_paths_are_skipped(self):
        # figure4_toy has 3 structural paths but only 2 feasible ones; the
        # third (taking the loop twice) contradicts flag being set to 1.
        cfg = build_cfg(figure4_toy())
        builder = PathConstraintBuilder(cfg)
        feasible = [p for p in enumerate_paths(cfg) if builder.is_feasible(p)]
        assert len(feasible) == 2
        result = extract_basis_paths(cfg)
        assert result.achieved_rank == 2
        assert not result.complete
        assert result.infeasible_skipped >= 1
