"""Tests for the task language AST and reference interpreter."""

import pytest
from hypothesis import given, strategies as st

from repro.core import CompilationError
from repro.cfg import (
    Block,
    Call,
    If,
    Program,
    Skip,
    While,
    assign,
    binop,
    block,
    const,
    expression_variables,
    interpret,
    run_program,
    var,
)
from repro.cfg.lang import evaluate_expression


class TestExpressions:
    def test_expression_variables(self):
        expr = binop("+", binop("*", var("a"), const(2)), var("b"))
        assert expression_variables(expr) == {"a", "b"}

    def test_unsupported_operator_rejected(self):
        with pytest.raises(CompilationError):
            binop("%", var("a"), const(2))

    @given(
        a=st.integers(min_value=0, max_value=0xFFFF),
        b=st.integers(min_value=0, max_value=0xFFFF),
    )
    def test_modular_semantics(self, a, b):
        state = {"a": a, "b": b}
        width = 16
        mask = (1 << width) - 1
        assert evaluate_expression(binop("+", var("a"), var("b")), state, width) == (a + b) & mask
        assert evaluate_expression(binop("-", var("a"), var("b")), state, width) == (a - b) & mask
        assert evaluate_expression(binop("*", var("a"), var("b")), state, width) == (a * b) & mask
        assert evaluate_expression(binop("<", var("a"), var("b")), state, width) == int(a < b)

    def test_shift_past_width_is_zero(self):
        assert evaluate_expression(binop("<<", const(1), const(40)), {}, 16) == 0
        assert evaluate_expression(binop(">>", const(7), const(40)), {}, 16) == 0

    def test_logical_not(self):
        from repro.cfg.lang import UnOp

        assert evaluate_expression(UnOp("!", const(0)), {}, 8) == 1
        assert evaluate_expression(UnOp("!", const(3)), {}, 8) == 0


class TestInterpreter:
    def _abs_diff(self):
        return Program(
            name="absdiff",
            parameters=("a", "b"),
            body=If(
                binop(">=", var("a"), var("b")),
                assign("d", binop("-", var("a"), var("b"))),
                assign("d", binop("-", var("b"), var("a"))),
            ),
            returns=("d",),
            word_width=16,
        )

    def test_branches_and_result(self):
        program = self._abs_diff()
        assert run_program(program, {"a": 9, "b": 4})["d"] == 5
        assert run_program(program, {"a": 4, "b": 9})["d"] == 5

    def test_branch_decisions_recorded(self):
        trace = interpret(self._abs_diff(), {"a": 9, "b": 4})
        assert trace.branch_decisions == [True]

    def test_positional_inputs(self):
        assert run_program(self._abs_diff(), [3, 10])["d"] == 7

    def test_missing_input_rejected(self):
        with pytest.raises(CompilationError):
            run_program(self._abs_diff(), {"a": 1})

    def test_wrong_arity_rejected(self):
        with pytest.raises(CompilationError):
            run_program(self._abs_diff(), [1])

    def test_loop_with_bound(self):
        program = Program(
            name="count_bits",
            parameters=("x",),
            body=block(
                assign("count", const(0)),
                While(
                    binop("!=", var("x"), const(0)),
                    block(
                        assign("count", binop("+", var("count"), binop("&", var("x"), const(1)))),
                        assign("x", binop(">>", var("x"), const(1))),
                    ),
                    bound=16,
                ),
            ),
            returns=("count",),
            word_width=16,
        )
        assert run_program(program, {"x": 0b1011})["count"] == 3
        assert run_program(program, {"x": 0})["count"] == 0

    def test_loop_bound_violation_detected(self):
        program = Program(
            name="diverges",
            parameters=("x",),
            body=While(binop("==", const(1), const(1)), Skip(), bound=3),
            word_width=8,
        )
        with pytest.raises(CompilationError):
            run_program(program, {"x": 0})

    def test_call_inlining_semantics(self):
        double = Program(
            name="double",
            parameters=("v",),
            body=assign("out", binop("*", var("v"), const(2))),
            returns=("out",),
            word_width=16,
        )
        caller = Program(
            name="caller",
            parameters=("x",),
            body=Block(
                (
                    Call(double, (binop("+", var("x"), const(1)),), ("y",)),
                    assign("z", binop("+", var("y"), const(5))),
                )
            ),
            returns=("z",),
            word_width=16,
        )
        assert run_program(caller, {"x": 10})["z"] == 27

    def test_duplicate_parameters_rejected(self):
        with pytest.raises(CompilationError):
            Program(name="p", parameters=("a", "a"), body=Skip())

    def test_variables_listed_in_first_use_order(self):
        program = self._abs_diff()
        assert program.variables() == ["a", "b", "d"]
        assert program.output_variables() == ("d",)
