"""Tests for SMT path constraints and test-case generation."""

import pytest

from repro.cfg import (
    build_cfg,
    conditional_cascade,
    enumerate_paths,
    execution_path,
    modular_exponentiation,
    saturating_add,
)
from repro.cfg.ssa import PathConstraintBuilder


class TestFeasibility:
    def test_test_case_drives_requested_path(self):
        program = conditional_cascade(3)
        cfg = build_cfg(program)
        builder = PathConstraintBuilder(cfg)
        for path in enumerate_paths(cfg):
            witness = builder.feasibility(path)
            assert witness is not None  # every cascade path is feasible
            replay = execution_path(cfg, witness.test_case)
            assert replay.edges == path.edges

    def test_contradictory_path_is_infeasible(self):
        program = saturating_add()
        cfg = build_cfg(program)
        builder = PathConstraintBuilder(cfg)
        feasible_flags = [builder.is_feasible(p) for p in enumerate_paths(cfg)]
        # Both branches of the saturation check are reachable.
        assert feasible_flags.count(True) == 2

    def test_slicing_reduces_constraints(self):
        program = modular_exponentiation(4, 16)
        cfg = build_cfg(program)
        path = next(enumerate_paths(cfg))
        sliced = PathConstraintBuilder(cfg, slice_to_conditions=True).encode(path)
        unsliced = PathConstraintBuilder(cfg, slice_to_conditions=False).encode(path)
        assert len(sliced.constraints) < len(unsliced.constraints)

    def test_sliced_and_unsliced_agree_on_feasibility(self):
        program = modular_exponentiation(3, 16)
        cfg = build_cfg(program)
        sliced = PathConstraintBuilder(cfg, slice_to_conditions=True)
        unsliced = PathConstraintBuilder(cfg, slice_to_conditions=False)
        for path in enumerate_paths(cfg):
            assert sliced.is_feasible(path) == unsliced.is_feasible(path)

    def test_query_counter(self):
        cfg = build_cfg(saturating_add())
        builder = PathConstraintBuilder(cfg)
        for path in enumerate_paths(cfg):
            builder.is_feasible(path)
        assert builder.queries == cfg.count_paths()

    def test_input_variables_exposed(self):
        cfg = build_cfg(saturating_add())
        builder = PathConstraintBuilder(cfg)
        encoding = builder.encode(next(enumerate_paths(cfg)))
        assert set(encoding.input_variables) == {"a", "b"}
        formula = encoding.formula()
        assert formula is not None


class TestIncrementalFeasibility:
    def test_incremental_and_reencode_builders_agree(self):
        program = modular_exponentiation(4, 16)
        cfg = build_cfg(program)
        incremental = PathConstraintBuilder(cfg)
        reencode = PathConstraintBuilder(cfg, reencode_each_check=True)
        for path in enumerate_paths(cfg):
            incremental_witness = incremental.feasibility(path)
            reencode_witness = reencode.feasibility(path)
            assert (incremental_witness is None) == (reencode_witness is None)
            if incremental_witness is not None:
                replay = execution_path(cfg, incremental_witness.test_case)
                assert replay.edges == path.edges

    def test_shared_solver_encodes_less_work(self):
        program = modular_exponentiation(4, 16)
        cfg = build_cfg(program)
        incremental = PathConstraintBuilder(cfg)
        reencode = PathConstraintBuilder(cfg, reencode_each_check=True)
        for path in enumerate_paths(cfg):
            incremental.is_feasible(path)
            reencode.is_feasible(path)
        assert (
            incremental.smt_statistics.variables_generated
            < reencode.smt_statistics.variables_generated
        )
        # Clause counts can tie on heavily sliced encodings (one scoped
        # clause per assertion plus one scope-retirement unit per pop vs.
        # one unit per assertion plus one true-constant unit per check),
        # with the persistent solver's one-time true-constant clause able
        # to tip an exact tie by one; the variable reduction above is the
        # structural win.
        assert (
            incremental.smt_statistics.clauses_generated
            <= reencode.smt_statistics.clauses_generated + 1
        )

    def test_infeasible_path_scope_does_not_leak(self):
        # A path rejected as infeasible must not constrain later queries on
        # the shared solver.
        program = saturating_add()
        cfg = build_cfg(program)
        builder = PathConstraintBuilder(cfg)
        paths = list(enumerate_paths(cfg))
        first_sweep = [builder.is_feasible(p) for p in paths]
        second_sweep = [builder.is_feasible(p) for p in paths]
        assert first_sweep == second_sweep
        assert first_sweep.count(True) == 2
