"""Tests for SMT path constraints and test-case generation."""

import pytest

from repro.cfg import (
    build_cfg,
    conditional_cascade,
    enumerate_paths,
    execution_path,
    modular_exponentiation,
    saturating_add,
)
from repro.cfg.ssa import PathConstraintBuilder


class TestFeasibility:
    def test_test_case_drives_requested_path(self):
        program = conditional_cascade(3)
        cfg = build_cfg(program)
        builder = PathConstraintBuilder(cfg)
        for path in enumerate_paths(cfg):
            witness = builder.feasibility(path)
            assert witness is not None  # every cascade path is feasible
            replay = execution_path(cfg, witness.test_case)
            assert replay.edges == path.edges

    def test_contradictory_path_is_infeasible(self):
        program = saturating_add()
        cfg = build_cfg(program)
        builder = PathConstraintBuilder(cfg)
        feasible_flags = [builder.is_feasible(p) for p in enumerate_paths(cfg)]
        # Both branches of the saturation check are reachable.
        assert feasible_flags.count(True) == 2

    def test_slicing_reduces_constraints(self):
        program = modular_exponentiation(4, 16)
        cfg = build_cfg(program)
        path = next(enumerate_paths(cfg))
        sliced = PathConstraintBuilder(cfg, slice_to_conditions=True).encode(path)
        unsliced = PathConstraintBuilder(cfg, slice_to_conditions=False).encode(path)
        assert len(sliced.constraints) < len(unsliced.constraints)

    def test_sliced_and_unsliced_agree_on_feasibility(self):
        program = modular_exponentiation(3, 16)
        cfg = build_cfg(program)
        sliced = PathConstraintBuilder(cfg, slice_to_conditions=True)
        unsliced = PathConstraintBuilder(cfg, slice_to_conditions=False)
        for path in enumerate_paths(cfg):
            assert sliced.is_feasible(path) == unsliced.is_feasible(path)

    def test_query_counter(self):
        cfg = build_cfg(saturating_add())
        builder = PathConstraintBuilder(cfg)
        for path in enumerate_paths(cfg):
            builder.is_feasible(path)
        assert builder.queries == cfg.count_paths()

    def test_input_variables_exposed(self):
        cfg = build_cfg(saturating_add())
        builder = PathConstraintBuilder(cfg)
        encoding = builder.encode(next(enumerate_paths(cfg)))
        assert set(encoding.input_variables) == {"a", "b"}
        formula = encoding.formula()
        assert formula is not None
