"""Tests for CFG construction, structure queries, and execution."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CompilationError
from repro.cfg import (
    ControlFlowGraph,
    absolute_difference,
    bounded_linear_search,
    build_cfg,
    conditional_cascade,
    figure4_toy,
    interpret,
    modular_exponentiation,
    run_program,
    saturating_add,
)


ALL_PROGRAMS = [
    figure4_toy(),
    modular_exponentiation(4, 16),
    conditional_cascade(3),
    saturating_add(),
    absolute_difference(),
    bounded_linear_search(3),
]


class TestStructure:
    def test_figure4_shape(self):
        cfg = build_cfg(figure4_toy())
        # The unrolled loop (bound 1) gives 3 structural paths and basis
        # dimension 3; exactly 2 of the paths are feasible (paper Fig. 4).
        assert cfg.count_paths() == 3
        assert cfg.basis_dimension() == 3
        assert cfg.is_dag()

    def test_modexp_path_counts(self):
        cfg = build_cfg(modular_exponentiation(8, 16))
        assert cfg.count_paths() == 256
        assert cfg.basis_dimension() == 9  # the paper's "9 basis paths"

    @pytest.mark.parametrize("program", ALL_PROGRAMS, ids=lambda p: p.name)
    def test_single_entry_exit_dag(self, program):
        cfg = build_cfg(program)
        cfg.check_single_entry_exit()
        assert cfg.is_dag()
        order = cfg.topological_order()
        assert len(order) == cfg.num_blocks
        positions = {node: index for index, node in enumerate(order)}
        for edge in cfg.iter_edges():
            assert positions[edge.source] < positions[edge.target]

    def test_basis_dimension_formula(self):
        cfg = build_cfg(conditional_cascade(3))
        assert cfg.basis_dimension() == cfg.num_edges - cfg.num_blocks + 2


class TestExecutionAgainstInterpreter:
    @pytest.mark.parametrize("program", ALL_PROGRAMS, ids=lambda p: p.name)
    def test_cfg_execution_matches_interpreter(self, program):
        cfg = build_cfg(program)
        mask = (1 << program.word_width) - 1
        # A deterministic spread of inputs per program.
        sample_inputs = [
            {name: (17 * (i + 1) * (j + 3)) & mask for j, name in enumerate(program.parameters)}
            for i in range(8)
        ]
        for inputs in sample_inputs:
            expected = interpret(program, inputs).final_state
            actual = cfg.execute(inputs).final_state
            for variable in program.output_variables():
                assert actual[variable] == expected[variable], (program.name, inputs)

    @settings(max_examples=30, deadline=None)
    @given(base=st.integers(min_value=0, max_value=0xFFFF), exponent=st.integers(min_value=0, max_value=255))
    def test_modexp_cfg_is_modular_exponentiation(self, base, exponent):
        program = modular_exponentiation(8, 16)
        cfg = build_cfg(program)
        result = cfg.execute({"base": base, "exponent": exponent}).final_state["result"]
        assert result == pow(base, exponent, 1 << 16)

    def test_execution_path_matches_popcount_structure(self):
        program = modular_exponentiation(4, 16)
        cfg = build_cfg(program)
        run_ones = cfg.execute({"base": 3, "exponent": 0b1111})
        run_zeros = cfg.execute({"base": 3, "exponent": 0})
        # Paths differ, but both have the same length in edges (diamonds).
        assert run_ones.edge_sequence != run_zeros.edge_sequence
        assert len(run_ones.edge_sequence) == len(run_zeros.edge_sequence)


class TestWeightedPaths:
    def test_extremal_paths(self):
        cfg = build_cfg(absolute_difference())
        weights = [1.0] * cfg.num_edges
        longest_value, longest_path = cfg.extremal_path(weights, longest=True)
        shortest_value, _ = cfg.extremal_path(weights, longest=False)
        assert longest_value >= shortest_value
        # Reconstructed path must be connected from entry to exit.
        assert cfg.edges[longest_path[0]].source == cfg.entry
        assert cfg.edges[longest_path[-1]].target == cfg.exit

    def test_weight_count_validated(self):
        cfg = build_cfg(absolute_difference())
        with pytest.raises(CompilationError):
            cfg.extremal_path([1.0])


class TestManualCfg:
    def test_cycle_detection(self):
        cfg = ControlFlowGraph("cyclic", 8, ())
        a = cfg.new_block()
        b = cfg.new_block()
        cfg.add_edge(a, b)
        cfg.add_edge(b, a)
        assert not cfg.is_dag()

    def test_multiple_sinks_rejected(self):
        cfg = ControlFlowGraph("bad", 8, ())
        a = cfg.new_block()
        cfg.new_block()
        cfg.new_block()
        cfg.add_edge(a, 1)
        with pytest.raises(CompilationError):
            cfg.check_single_entry_exit()
