"""Certificate store: fingerprinting, round trips, degradation.

The store's contract: identical canonical submissions hash identically
(and only those), a stored record comes back exactly as stored, a
corrupt record is a miss rather than an error, and a failing disk
degrades the store observably without failing any job.
"""

from __future__ import annotations

from repro.service.certstore import CertStore, submission_fingerprint
from repro.testing import faults

REQUEST = {
    "problem": {"kind": "deobfuscation", "task": "multiply45", "width": 4},
    "max_conflicts": 1000,
    "timeout": 30.0,
    "label": "nightly",
}


class TestFingerprint:
    def test_deterministic(self):
        assert submission_fingerprint(REQUEST) == submission_fingerprint(
            dict(REQUEST)
        )
        assert len(submission_fingerprint(REQUEST)) == 64

    def test_covers_result_shaping_fields(self):
        base = submission_fingerprint(REQUEST)
        for key, value in [
            ("max_conflicts", 999),
            ("timeout", 31.0),
            ("label", "other"),
        ]:
            assert submission_fingerprint({**REQUEST, key: value}) != base
        changed_problem = {**REQUEST, "problem": {**REQUEST["problem"], "width": 5}}
        assert submission_fingerprint(changed_problem) != base

    def test_ignores_accounting_fields(self):
        # The client tag shapes billing, not the result.
        assert submission_fingerprint(
            {**REQUEST, "client": "ci"}
        ) == submission_fingerprint(REQUEST)


class TestCertStore:
    def test_round_trip_and_counters(self, tmp_path):
        store = CertStore(tmp_path / "certs")
        fingerprint = submission_fingerprint(REQUEST)
        assert store.get(fingerprint) is None  # miss
        record = {
            "fingerprint": fingerprint,
            "request": REQUEST,
            "state": "completed",
            "result": {"success": True, "details": {"verdict": True}},
            "elapsed": 0.5,
        }
        assert store.put(fingerprint, record)
        assert store.get(fingerprint) == record
        statistics = store.statistics()
        assert statistics["hits"] == 1
        assert statistics["misses"] == 1
        assert statistics["writes"] == 1
        assert statistics["available"] is True

    def test_fanout_layout(self, tmp_path):
        store = CertStore(tmp_path / "certs")
        fingerprint = submission_fingerprint(REQUEST)
        store.put(fingerprint, {"result": {}})
        expected = tmp_path / "certs" / fingerprint[:2] / f"{fingerprint}.json"
        assert expected.is_file()

    def test_corrupt_record_is_a_miss(self, tmp_path):
        store = CertStore(tmp_path / "certs")
        fingerprint = submission_fingerprint(REQUEST)
        store.put(fingerprint, {"result": {"success": True}})
        path = tmp_path / "certs" / fingerprint[:2] / f"{fingerprint}.json"
        path.write_bytes(b"{not json")
        assert store.get(fingerprint) is None
        # A record without a result field is equally unusable.
        path.write_bytes(b'{"state": "completed"}')
        assert store.get(fingerprint) is None
        assert store.statistics()["read_errors"] == 2

    def test_write_fault_degrades_then_recovers(self, tmp_path):
        store = CertStore(tmp_path / "certs")
        fingerprint = submission_fingerprint(REQUEST)
        with faults.injected(
            {"certstore.write": faults.Fault("raise", "ENOSPC")}
        ):
            assert not store.put(fingerprint, {"result": {}})
        assert not store.available()
        assert store.statistics()["write_errors"] == 1
        assert store.get(fingerprint) is None  # nothing half-written
        # Disk came back: the next successful write restores the store.
        assert store.put(fingerprint, {"result": {}})
        assert store.available()
