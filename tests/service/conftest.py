"""Service-suite fixtures: lock instrumentation across both layers.

The HTTP service exercises the full lock surface — handler threads on
the queue lock, the runner thread bridging into the engine's state lock,
and memo locks under solving — so the whole suite runs under the
lock-order/discipline detector.  The queue → engine acquisition order is
part of the service's design; a change that inverts it anywhere fails
here instead of deadlocking in production.
"""

from __future__ import annotations

import pytest

import repro.api.engine as engine_module
import repro.api.memo as memo_module
import repro.service.certstore as certstore_module
import repro.service.journal as journal_module
import repro.service.queue as queue_module
from repro.analysis import lockcheck
from repro.testing import faults


@pytest.fixture(scope="module", autouse=True)
def _lockcheck_instrumentation():
    # Module-scoped (and autouse, so it is set up first): the suites
    # build one service per module, and its queue/engine locks must be
    # created while instrumentation is active to be observable.  The
    # journal and cert-store locks nest under the queue lock, so they
    # are part of the checked order.
    with lockcheck.instrument(
        engine_module, memo_module, queue_module,
        journal_module, certstore_module,
    ) as registry:
        yield
    assert not registry.violations, "\n".join(registry.violations)


@pytest.fixture(autouse=True)
def _disarm_faults():
    # A test that arms fault injection and fails mid-way must not leak
    # the plan into the next test.
    yield
    faults.reset()
