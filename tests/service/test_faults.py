"""Fault-injection harness + service behavior under injected faults.

First the harness itself (triggers, plan parsing, env arming), then the
behaviors the harness exists to prove: a journal write failure turns
into 503s and a degraded ``/healthz`` while accepted jobs still finish;
a full disk under the certificate store degrades the store without
failing the job; an engine-level fault folds into a terminal job record
instead of crashing the service.
"""

from __future__ import annotations

import pytest

from repro.api import EngineConfig
from repro.service import SciductionService
from repro.testing import faults

from service.test_http import DEOB, call, submit_and_wait


class TestHarness:
    def test_disarmed_points_are_noops(self):
        faults.reset()
        faults.fault_point("journal.write")  # no plan: must not raise
        assert faults.hits("journal.write") == 0

    def test_raise_action_and_errno(self):
        with faults.injected({"p": faults.Fault("raise", "ENOSPC")}):
            with pytest.raises(faults.FaultError) as caught:
                faults.fault_point("p")
        import errno

        assert caught.value.errno == errno.ENOSPC
        assert caught.value.point == "p"

    def test_triggers(self):
        nth = faults.Fault("raise", when="2")
        assert [nth.fires(hit) for hit in (1, 2, 3)] == [False, True, False]
        onward = faults.Fault("raise", when="2+")
        assert [onward.fires(hit) for hit in (1, 2, 3)] == [False, True, True]
        always = faults.Fault("raise")
        assert [always.fires(hit) for hit in (1, 2, 3)] == [True, True, True]

    def test_nth_hit_counting_at_the_point(self):
        with faults.injected({"p": faults.Fault("raise", when="3")}):
            faults.fault_point("p")
            faults.fault_point("p")
            with pytest.raises(faults.FaultError):
                faults.fault_point("p")
            assert faults.hits("p") == 3

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            faults.Fault("explode")
        with pytest.raises(ValueError):
            faults.Fault("raise", when="0")
        with pytest.raises(ValueError):
            faults.Fault("raise", when="soon")
        with pytest.raises(ValueError):
            faults.parse_plan("justapoint")

    def test_parse_plan(self):
        plan = faults.parse_plan(
            "journal.write:raise:EIO:2+; engine.slow:sleep:0.2"
        )
        assert plan["journal.write"] == faults.Fault("raise", "EIO", "2+")
        assert plan["engine.slow"] == faults.Fault("sleep", "0.2", "*")

    def test_install_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert not faults.install_from_env()
        monkeypatch.setenv("REPRO_FAULTS", "p:raise:EIO")
        assert faults.install_from_env()
        with pytest.raises(faults.FaultError):
            faults.fault_point("p")
        faults.reset()


@pytest.fixture()
def durable_service(tmp_path):
    instance = SciductionService(
        EngineConfig(workers=1), port=0, quiet=True, data_dir=tmp_path
    )
    instance.start()
    yield instance
    faults.reset()  # never shut down with an armed plan
    instance.shutdown()


class TestServiceUnderFaults:
    def test_journal_write_failure_degrades_to_503(self, durable_service):
        service = durable_service
        # A job accepted while the journal was healthy...
        status, first = call(service, "POST", "/jobs", {"problem": dict(DEOB)})
        assert status == 202
        with faults.injected(
            {"journal.write": faults.Fault("raise", "ENOSPC")}
        ):
            # ...then the disk fills: acceptance cannot be made durable.
            status, error = call(
                service, "POST", "/jobs", {"problem": dict(DEOB)}
            )
            assert status == 503
            assert "durable" in error["error"]
        # The journal is sticky-broken: still refusing after the fault
        # clears, and /healthz now says so.
        status, error = call(service, "POST", "/jobs", {"problem": dict(DEOB)})
        assert status == 503
        status, health = call(service, "GET", "/healthz")
        assert status == 503
        assert health["status"] == "degraded"
        assert health["journal"]["writable"] is False
        assert "ENOSPC" in health["journal"]["reason"]
        # The job accepted before the failure still runs to completion
        # and serves its result from memory.
        deadline_record = None
        import time

        for _ in range(600):
            status, deadline_record = call(
                service, "GET", f"/jobs/{first['job_id']}"
            )
            if deadline_record["done"]:
                break
            time.sleep(0.05)
        assert deadline_record is not None and deadline_record["done"]
        assert deadline_record["state"] == "completed"

    def test_certstore_disk_full_degrades_but_job_completes(
        self, durable_service
    ):
        service = durable_service
        with faults.injected(
            {"certstore.write": faults.Fault("raise", "ENOSPC")}
        ):
            job_id, record = submit_and_wait(
                service, {"problem": dict(DEOB)}
            )
            assert record["state"] == "completed"
        status, stats = call(service, "GET", "/stats")
        assert stats["certstore"]["write_errors"] >= 1
        assert stats["certstore"]["available"] is False
        status, health = call(service, "GET", "/healthz")
        assert status == 200  # the cert store is an optimization
        assert health["status"] == "degraded"
        assert health["certstore"]["available"] is False
        # Disk restored: the next completion re-arms the store.
        job_id, record = submit_and_wait(
            service, {"problem": {**DEOB, "seed": 7}}
        )
        assert record["state"] == "completed"
        status, health = call(service, "GET", "/healthz")
        assert status == 200 and health["certstore"]["available"] is True

    def test_engine_fault_folds_into_failed_job(self, durable_service):
        service = durable_service
        with faults.injected(
            {"engine.crash": faults.Fault("raise", "EIO")}
        ):
            job_id, record = submit_and_wait(service, {"problem": dict(DEOB)})
            assert record["state"] == "failed"
            assert "engine.crash" in record["error"]
        # The failure was journaled as terminal, and the service carries on.
        status, record = call(service, "GET", f"/jobs/{job_id}")
        assert record["state"] == "failed"
        # Failures are never persisted to the certificate store: the
        # same spec resubmitted after the fault clears runs for real.
        job_id, record = submit_and_wait(service, {"problem": dict(DEOB)})
        assert record["state"] == "completed"
        assert record["from_certificate"] is False

    def test_slow_engine_fault_just_delays(self, durable_service):
        service = durable_service
        with faults.injected(
            {"engine.slow": faults.Fault("sleep", "0.1")}
        ):
            job_id, record = submit_and_wait(service, {"problem": dict(DEOB)})
        assert record["state"] == "completed"
        assert record["elapsed"] >= 0.1
