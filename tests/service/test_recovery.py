"""Crash/restart recovery of the real service process.

The headline robustness test: ``python -m repro.service`` is started as
a real subprocess with a journal directory, killed with ``SIGKILL``
mid-batch, and restarted on the same directory — every accepted job must
reach a terminal state, with results canonically identical to an
uninterrupted run on a fresh directory.  A second test sends ``SIGTERM``
and asserts the graceful-drain contract: in-flight jobs finish, the
journal ends on a clean-shutdown marker, and a replay re-enqueues
nothing.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.service.journal import recover

#: Distinct problem shapes (different widths / kinds), so neither
#: session reuse nor memo warmth differs between an interrupted run
#: (which may re-run only a suffix of the batch) and a clean one.
PROBLEMS = [
    {"kind": "deobfuscation", "task": "multiply45", "width": 4, "seed": 0},
    {"kind": "deobfuscation", "task": "multiply45", "width": 5, "seed": 0},
    {
        "kind": "timing-analysis",
        "program": "bounded_linear_search",
        "program_args": {"length": 3, "word_width": 16},
        "bound": 250,
    },
]

REPO_ROOT = Path(__file__).resolve().parents[2]


def spawn_service(data_dir: Path, port_file: Path) -> subprocess.Popen:
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(REPO_ROOT / "src")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service",
            "--port", "0",
            "--port-file", str(port_file),
            "--data-dir", str(data_dir),
            "--quiet",
        ],
        env=environment,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        cwd=str(REPO_ROOT),
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            return process
        if process.poll() is not None:
            raise AssertionError(
                f"service died on startup:\n{process.stdout.read().decode()}"
            )
        time.sleep(0.05)
    process.kill()
    raise AssertionError("service never wrote its port file")


def service_url(port_file: Path) -> str:
    return f"http://127.0.0.1:{port_file.read_text().strip()}"


def request(url: str, method: str = "GET", body: dict | None = None) -> dict:
    req = urllib.request.Request(
        url,
        method=method,
        data=None if body is None else json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=120) as response:
        return json.loads(response.read())


def submit_all(url: str) -> list[int]:
    return [
        request(f"{url}/jobs", "POST", {"problem": problem})["job_id"]
        for problem in PROBLEMS
    ]


def wait_all(url: str, job_ids: list[int], timeout: float = 240.0) -> None:
    deadline = time.monotonic() + timeout
    for job_id in job_ids:
        while True:
            record = request(f"{url}/jobs/{job_id}?wait=30")
            if record["done"]:
                break
            if time.monotonic() > deadline:
                raise AssertionError(f"job {job_id} never finished")


def canonical_result(result: dict) -> dict:
    """Strip the volatile fields: wall-clock elapsed, and the engine-side
    job id (a restarted engine renumbers the re-run suffix of the batch)."""
    normalized = json.loads(json.dumps(result))
    normalized.pop("elapsed", None)
    engine = normalized.get("details", {}).get("engine", {})
    engine.pop("job_id", None)
    return normalized


def collect_results(url: str, job_ids: list[int]) -> list[dict]:
    return [
        canonical_result(request(f"{url}/jobs/{job_id}/result"))
        for job_id in job_ids
    ]


def terminate(process: subprocess.Popen) -> None:
    if process.poll() is None:
        process.kill()
        process.wait(timeout=30)


@pytest.mark.slow
class TestKillAndRestart:
    def test_sigkill_mid_batch_loses_no_accepted_job(self, tmp_path):
        crash_dir = tmp_path / "crash"
        port_file = tmp_path / "port-a"
        process = spawn_service(crash_dir, port_file)
        try:
            url = service_url(port_file)
            job_ids = submit_all(url)
            # All three 202s are journaled; now the process dies hard,
            # mid-batch, with no chance to flush anything further.
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
        finally:
            terminate(process)

        # Restart on the same journal directory: every accepted job must
        # come back (finished from the journal or re-enqueued) and reach
        # a terminal state.
        port_file2 = tmp_path / "port-b"
        restarted = spawn_service(crash_dir, port_file2)
        try:
            url = service_url(port_file2)
            listed = request(f"{url}/jobs")["jobs"]
            assert {job["job_id"] for job in listed} >= set(job_ids)
            wait_all(url, job_ids)
            recovered = collect_results(url, job_ids)
            for job_id in job_ids:
                record = request(f"{url}/jobs/{job_id}")
                assert record["state"] == "completed"
        finally:
            terminate(restarted)

        # Reference: the same submissions, uninterrupted, on a fresh dir.
        clean_dir = tmp_path / "clean"
        port_file3 = tmp_path / "port-c"
        reference = spawn_service(clean_dir, port_file3)
        try:
            url = service_url(port_file3)
            reference_ids = submit_all(url)
            wait_all(url, reference_ids)
            expected = collect_results(url, reference_ids)
        finally:
            terminate(reference)

        assert recovered == expected

    def test_sigterm_drains_and_marks_clean_shutdown(self, tmp_path):
        data_dir = tmp_path / "drain"
        port_file = tmp_path / "port"
        process = spawn_service(data_dir, port_file)
        try:
            url = service_url(port_file)
            job_ids = submit_all(url)
            process.send_signal(signal.SIGTERM)
            # The drain finishes every accepted job before exiting.
            process.wait(timeout=240)
            assert process.returncode == 0
        finally:
            terminate(process)

        replay = recover(data_dir / "journal.wal")
        assert replay.clean_shutdown
        assert not replay.unfinished
        assert sorted(job.job_id for job in replay.finished) == sorted(job_ids)
        assert all(job.state == "completed" for job in replay.finished)
        assert replay.truncated_bytes == 0
