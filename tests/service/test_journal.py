"""Write-ahead journal: record format, replay, torn tails, degradation.

The journal's contract is the service's crash-safety story: every
acknowledged lifecycle transition is on disk before the acknowledgment,
a replay rebuilds exactly the acknowledged state, and a torn or corrupt
tail — the expected residue of ``kill -9`` — is truncated, never fatal
and never silently re-interpreted.
"""

from __future__ import annotations

import pytest

from repro.service.journal import (
    EVENT_ACCEPTED,
    EVENT_FINISHED,
    EVENT_SHUTDOWN,
    EVENT_STARTED,
    JobJournal,
    JournalError,
    decode_record,
    encode_record,
    recover,
)
from repro.testing import faults

REQUEST = {
    "problem": {"kind": "deobfuscation", "width": 4},
    "max_conflicts": None,
    "timeout": None,
    "label": "wal",
    "client": None,
}


def accepted(job_id: int) -> dict:
    return {"event": EVENT_ACCEPTED, "job": job_id, "request": dict(REQUEST)}


def finished(job_id: int, state: str = "completed") -> dict:
    return {
        "event": EVENT_FINISHED,
        "job": job_id,
        "state": state,
        "result": {"success": True, "details": {"job": job_id}},
        "error": None,
        "elapsed": 0.25,
    }


class TestRecordFormat:
    def test_round_trip(self):
        payload = finished(7)
        line = encode_record(payload)
        assert line.endswith(b"\n")
        assert decode_record(line) == payload

    def test_torn_record_is_rejected(self):
        line = encode_record(accepted(1))
        assert decode_record(line[:-1]) is None  # no trailing newline
        assert decode_record(line[: len(line) // 2]) is None

    def test_bad_magic_and_checksum_are_rejected(self):
        line = encode_record(accepted(1))
        assert decode_record(b"X9" + line[2:]) is None
        corrupted = line.replace(b'"job":1', b'"job":2')
        assert decode_record(corrupted) is None  # payload no longer matches crc
        assert decode_record(b"W1 zzzzzzzz {}\n") is None

    def test_non_object_payload_is_rejected(self):
        import json
        import zlib

        raw = json.dumps([1, 2]).encode()
        line = f"W1 {zlib.crc32(raw):08x} ".encode() + raw + b"\n"
        assert decode_record(line) is None


class TestRecover:
    def test_missing_and_empty_files(self, tmp_path):
        replay = recover(tmp_path / "absent.wal")
        assert replay.records == 0 and not replay.finished
        empty = tmp_path / "empty.wal"
        empty.write_bytes(b"")
        replay = recover(empty)
        assert replay.records == 0 and replay.next_job_id == 1

    def test_replays_finished_and_unfinished(self, tmp_path):
        path = tmp_path / "journal.wal"
        journal = JobJournal(path)
        journal.append(accepted(1))
        journal.append({"event": EVENT_STARTED, "job": 1})
        journal.append(finished(1))
        journal.append(accepted(2))
        journal.append({"event": EVENT_STARTED, "job": 2})
        journal.append(accepted(3))
        journal.close()

        replay = recover(path)
        assert [job.job_id for job in replay.finished] == [1]
        assert replay.finished[0].state == "completed"
        assert replay.finished[0].result == {"success": True, "details": {"job": 1}}
        assert replay.finished[0].elapsed == 0.25
        # Started-but-unfinished and accepted-but-never-started both
        # come back as work to redo, in id order.
        assert [job.job_id for job in replay.unfinished] == [2, 3]
        assert replay.unfinished[0].request == REQUEST
        assert replay.next_job_id == 4
        assert not replay.clean_shutdown

    def test_clean_shutdown_marker(self, tmp_path):
        path = tmp_path / "journal.wal"
        journal = JobJournal(path)
        journal.append(accepted(1))
        journal.append(finished(1))
        journal.append({"event": EVENT_SHUTDOWN})
        journal.close()
        assert recover(path).clean_shutdown

        # Records after the marker mean the shutdown was not the end.
        journal = JobJournal(path)
        journal.append(accepted(2))
        journal.close()
        replay = recover(path)
        assert not replay.clean_shutdown
        assert [job.job_id for job in replay.unfinished] == [2]

    def test_torn_tail_is_truncated_in_place(self, tmp_path):
        path = tmp_path / "journal.wal"
        journal = JobJournal(path)
        journal.append(accepted(1))
        journal.append(finished(1))
        journal.close()
        good_size = path.stat().st_size
        # A kill -9 mid-write leaves a half record with no newline.
        with open(path, "ab") as handle:
            handle.write(encode_record(accepted(2))[:10])

        replay = recover(path)
        assert replay.records == 2
        assert replay.truncated_bytes == 10
        assert path.stat().st_size == good_size
        assert [job.job_id for job in replay.finished] == [1]
        assert not replay.unfinished

        # The truncated file is a clean append target: write, recover again.
        journal = JobJournal(path)
        journal.append(accepted(3))
        journal.close()
        replay = recover(path)
        assert replay.truncated_bytes == 0
        assert [job.job_id for job in replay.unfinished] == [3]

    def test_corrupt_middle_record_discards_the_rest(self, tmp_path):
        """Replay trusts the journal only up to the first bad record —
        a record after a corrupt one could itself be garbage that
        happens to parse, so everything from the corruption on is cut."""
        path = tmp_path / "journal.wal"
        good_tail = encode_record(finished(1))
        path.write_bytes(
            encode_record(accepted(1)) + b"garbage line\n" + good_tail
        )
        replay = recover(path)
        assert replay.records == 1
        assert [job.job_id for job in replay.unfinished] == [1]
        assert replay.truncated_bytes == len(b"garbage line\n") + len(good_tail)

    def test_finish_for_truncated_acceptance_is_ignored(self, tmp_path):
        path = tmp_path / "journal.wal"
        path.write_bytes(encode_record(finished(9)))
        replay = recover(path)
        assert not replay.finished and not replay.unfinished
        # Job ids restart safely above anything mentioned... the orphan
        # finish never registered a job, so numbering restarts at 1.
        assert replay.next_job_id == 1


class TestJobJournal:
    def test_sync_every_batches_fsyncs(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.wal", sync_every=3)
        journal.append(accepted(1))
        journal.append(accepted(2))
        assert journal.lag() == 2
        journal.append(accepted(3))  # third append crosses the cadence
        assert journal.lag() == 0
        journal.append(accepted(4))
        journal.sync()
        assert journal.lag() == 0
        assert journal.appended() == 4
        journal.close()

    def test_sync_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            JobJournal(tmp_path / "journal.wal", sync_every=0)

    def test_write_fault_breaks_the_journal_stickily(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.wal")
        journal.append(accepted(1))
        with faults.injected(
            {"journal.write": faults.Fault("raise", "ENOSPC")}
        ):
            with pytest.raises(JournalError, match="ENOSPC"):
                journal.append(accepted(2))
        assert not journal.writable()
        assert "ENOSPC" in (journal.broken_reason() or "")
        # Broken is sticky even after the fault clears: the handle state
        # is unknown, so the service must restart to recover.
        with pytest.raises(JournalError, match="broken"):
            journal.append(accepted(3))
        journal.close()
        # Only the pre-fault record survives on disk.
        replay = recover(tmp_path / "journal.wal")
        assert [job.job_id for job in replay.unfinished] == [1]
