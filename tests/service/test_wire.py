"""Wire-envelope validation of the HTTP front end."""

from __future__ import annotations

import pytest

from repro.service.wire import WireError, parse_job_request


def _valid_problem() -> dict:
    return {"kind": "deobfuscation", "task": "multiply45", "width": 4}


class TestParseJobRequest:
    def test_minimal_request_round_trips_the_problem(self):
        parsed = parse_job_request({"problem": _valid_problem()})
        assert parsed["problem"]["kind"] == "deobfuscation"
        assert parsed["problem"]["width"] == 4
        assert parsed["max_conflicts"] is None
        assert parsed["timeout"] is None
        assert parsed["label"] is None

    def test_options_are_normalized(self):
        parsed = parse_job_request(
            {
                "problem": _valid_problem(),
                "max_conflicts": 100,
                "timeout": 5,
                "label": "smoke",
            }
        )
        assert parsed["max_conflicts"] == 100
        assert parsed["timeout"] == 5.0 and isinstance(parsed["timeout"], float)
        assert parsed["label"] == "smoke"

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ("not-a-dict", "JSON object"),
            ({}, "'problem'"),
            ({"problem": []}, "'problem'"),
            ({"problem": {"kind": "nope"}}, "unknown problem kind"),
            (
                {"problem": {"kind": "deobfuscation", "bogus": 1}},
                "unknown fields",
            ),
            ({"problem": _valid_problem(), "extra": 1}, "unknown request fields"),
            ({"problem": _valid_problem(), "timeout": "fast"}, "'timeout'"),
            ({"problem": _valid_problem(), "timeout": -1}, "non-negative"),
            ({"problem": _valid_problem(), "max_conflicts": True}, "'max_conflicts'"),
            ({"problem": _valid_problem(), "label": 7}, "'label'"),
        ],
    )
    def test_malformed_requests_fail_with_400(self, payload, fragment):
        with pytest.raises(WireError) as excinfo:
            parse_job_request(payload)
        assert excinfo.value.status == 400
        assert fragment in str(excinfo.value)
