"""End-to-end HTTP tests against an in-process service instance.

One module-scoped service (ephemeral port, workers=1) serves every test;
the jobs are the smallest instances of each problem kind.  The headline
assertion mirrors the service-smoke CI job: a job submitted over HTTP
returns the byte-identical wire form of the same spec run on an
in-process engine.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.api import EngineConfig, SciductionEngine, result_wire_canonical
from repro.service import SciductionService

DEOB = {"kind": "deobfuscation", "task": "multiply45", "width": 4, "seed": 0}
TIMING = {
    "kind": "timing-analysis",
    "program": "bounded_linear_search",
    "program_args": {"length": 3, "word_width": 16},
    "bound": 250,
}


@pytest.fixture(scope="module")
def service():
    instance = SciductionService(EngineConfig(workers=1), port=0, quiet=True)
    instance.start()
    yield instance
    instance.shutdown()


def call(service, method: str, path: str, body: dict | None = None):
    request = urllib.request.Request(
        service.url + path,
        method=method,
        data=None if body is None else json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def submit_and_wait(service, body: dict, timeout: float = 120.0) -> tuple[int, dict]:
    status, submitted = call(service, "POST", "/jobs", body)
    assert status == 202, (status, submitted)
    job_id = submitted["job_id"]
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, record = call(service, "GET", f"/jobs/{job_id}")
        assert status == 200
        if record["done"]:
            return job_id, record
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never finished")


class TestHttpSurface:
    def test_healthz_and_problem_kinds(self, service):
        status, health = call(service, "GET", "/healthz")
        assert status == 200 and health["status"] == "ok"
        # Durability is off for this in-memory service instance.
        assert health["journal"] == {"enabled": False}
        assert health["certstore"] == {"enabled": False}
        status, kinds = call(service, "GET", "/problems")
        assert status == 200
        assert {"deobfuscation", "timing-analysis", "switching-logic"} <= set(
            kinds["kinds"]
        )

    def test_submitted_job_matches_in_process_wire(self, service):
        job_id, record = submit_and_wait(
            service, {"problem": dict(DEOB), "label": "parity"}
        )
        assert record["state"] == "completed"
        assert record["label"] == "parity"
        status, result = call(service, "GET", f"/jobs/{job_id}/result")
        assert status == 200

        engine = SciductionEngine(EngineConfig(workers=1))
        engine.submit(dict(DEOB), label="parity")
        engine.run_batch()
        local = engine.jobs[0].result_wire()
        http_wire = result_wire_canonical(result)
        local_wire = result_wire_canonical(local)
        # Engine job ids differ between the long-lived service engine and
        # the fresh twin; everything else must match byte for byte.
        http_wire["details"]["engine"].pop("job_id")
        local_wire["details"]["engine"].pop("job_id")
        assert http_wire == local_wire

    def test_timing_job_over_http(self, service):
        job_id, record = submit_and_wait(service, {"problem": dict(TIMING)})
        assert record["state"] == "completed"
        status, result = call(service, "GET", f"/jobs/{job_id}/result")
        assert status == 200
        assert result["verdict"] is True

    def test_job_listing_and_record_fields(self, service):
        job_id, _ = submit_and_wait(service, {"problem": dict(DEOB)})
        status, listing = call(service, "GET", "/jobs")
        assert status == 200
        entry = next(j for j in listing["jobs"] if j["job_id"] == job_id)
        assert entry["kind"] == "deobfuscation"
        status, record = call(service, "GET", f"/jobs/{job_id}")
        assert record["problem"]["kind"] == "deobfuscation"
        assert record["elapsed"] >= 0.0

    def test_cancel_queued_job(self, service):
        # A slow blocker keeps the runner busy while the target queues.
        status, blocker = call(
            service,
            "POST",
            "/jobs",
            {"problem": {"kind": "deobfuscation", "task": "multiply45", "width": 8}},
        )
        assert status == 202
        status, target = call(service, "POST", "/jobs", {"problem": dict(DEOB)})
        assert status == 202
        status, outcome = call(
            service, "DELETE", f"/jobs/{target['job_id']}"
        )
        assert status == 200 and outcome["cancelled"] is True
        status, record = call(service, "GET", f"/jobs/{target['job_id']}")
        assert record["state"] == "cancelled"
        status, result = call(service, "GET", f"/jobs/{target['job_id']}/result")
        assert status == 200
        assert result["details"]["outcome"] == "cancelled"
        # Double-cancel answers 409; the blocker still completes.
        status, _ = call(service, "DELETE", f"/jobs/{target['job_id']}")
        assert status == 409
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            _, record = call(service, "GET", f"/jobs/{blocker['job_id']}")
            if record["done"]:
                break
            time.sleep(0.05)
        assert record["state"] == "completed"

    def test_result_conflict_while_open_and_404s(self, service):
        status, _ = call(service, "GET", "/jobs/999999")
        assert status == 404
        status, _ = call(service, "GET", "/jobs/999999/result")
        assert status == 404
        status, _ = call(service, "DELETE", "/jobs/999999")
        assert status == 404
        status, _ = call(service, "GET", "/nope")
        assert status == 404
        status, submitted = call(
            service,
            "POST",
            "/jobs",
            {"problem": {"kind": "deobfuscation", "task": "multiply45", "width": 8, "seed": 1}},
        )
        assert status == 202
        status, body = call(
            service, "GET", f"/jobs/{submitted['job_id']}/result"
        )
        # Either still open (409) or already finished on a fast machine.
        assert status in (409, 200)
        submit_and_wait(service, {"problem": dict(DEOB)})  # drain

    def test_malformed_submissions(self, service):
        status, error = call(service, "POST", "/jobs", {"problem": {"kind": "nope"}})
        assert status == 400 and "unknown problem kind" in error["error"]
        status, error = call(service, "POST", "/jobs", {"nope": 1})
        assert status == 400

    def test_keepalive_survives_error_replies(self, service):
        """Error paths must drain unread request bodies: under HTTP/1.1
        keep-alive, leftover body bytes would be parsed as the next
        request line and corrupt the connection."""
        import socket

        connection = socket.create_connection(
            ("127.0.0.1", service.port), timeout=30
        )
        try:
            body = json.dumps({"problem": {"kind": "deobfuscation"}}).encode()
            connection.sendall(
                b"POST /wrong HTTP/1.1\r\nHost: t\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
            )
            time.sleep(0.2)
            connection.sendall(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            time.sleep(0.3)
            data = connection.recv(65536).decode()
        finally:
            connection.close()
        assert data.startswith("HTTP/1.1 404"), data[:200]
        assert '"status": "ok"' in data, data[:600]
        assert "Bad request syntax" not in data

    def test_malformed_content_length_is_a_400(self, service):
        import socket

        connection = socket.create_connection(
            ("127.0.0.1", service.port), timeout=30
        )
        try:
            connection.sendall(
                b"POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: abc\r\n\r\n"
            )
            data = connection.recv(65536).decode()
        finally:
            connection.close()
        assert data.splitlines()[0].split()[1] == "400", data[:200]

    def test_stats_payload(self, service):
        status, stats = call(service, "GET", "/stats")
        assert status == 200
        assert stats["queue"].get("completed", 0) >= 1
        assert "pool" in stats["engine"]
        assert "shared_memo" in stats["engine"]
        assert stats["config"]["workers"] == 1

    def test_stats_intra_job_counters(self, service):
        # Every engine reports the intra-job parallelism counters, even
        # at the default intra_job_workers=1 / speculative_ogis=False.
        status, stats = call(service, "GET", "/stats")
        assert status == 200
        intra = stats["engine"]["intra_job"]
        assert set(intra) == {
            "sweep_tasks",
            "sweep_feasible",
            "speculation_wins",
            "speculation_losses",
            "replica_leases",
            "replicated_scope_seals",
        }
        assert all(isinstance(value, int) for value in intra.values())

    def test_stats_histograms(self, service):
        # At least one job was submitted and harvested by earlier tests.
        submit_and_wait(service, {"problem": dict(DEOB)})
        status, stats = call(service, "GET", "/stats")
        assert status == 200

        depth = stats["queue_depth"]
        assert depth["count"] >= 1
        assert depth["max"] >= 1
        assert sum(depth["buckets"].values()) == depth["count"]

        latency = stats["job_latency"]
        assert "deobfuscation" in latency
        per_kind = latency["deobfuscation"]
        assert per_kind["count"] >= 1
        assert per_kind["sum"] >= 0.0
        assert sum(per_kind["buckets"].values()) == per_kind["count"]


class TestLongPollAndAdmission:
    def test_wait_long_polls_until_terminal(self, service):
        status, submitted = call(service, "POST", "/jobs", {"problem": dict(DEOB)})
        assert status == 202
        # One request, no client-side polling loop: the reply arrives
        # only once the job is terminal.
        status, record = call(
            service, "GET", f"/jobs/{submitted['job_id']}?wait=60"
        )
        assert status == 200
        assert record["done"] is True
        assert record["state"] == "completed"

    def test_wait_times_out_with_open_record(self, service):
        status, submitted = call(
            service,
            "POST",
            "/jobs",
            {"problem": {"kind": "deobfuscation", "task": "multiply45", "width": 8, "seed": 2}},
        )
        assert status == 202
        status, record = call(
            service, "GET", f"/jobs/{submitted['job_id']}?wait=0.05"
        )
        # The wait elapsed: a 200 either way, done reflects reality.
        assert status == 200
        assert record["job_id"] == submitted["job_id"]
        submit_and_wait(service, {"problem": dict(DEOB)})  # drain the queue

    def test_wait_validation(self, service):
        job_id, _ = submit_and_wait(service, {"problem": dict(DEOB)})
        status, error = call(service, "GET", f"/jobs/{job_id}?wait=abc")
        assert status == 400 and "wait" in error["error"]
        status, error = call(service, "GET", f"/jobs/{job_id}?wait=-1")
        assert status == 400
        status, _ = call(service, "GET", "/jobs/999999?wait=1")
        assert status == 404

    def test_delete_terminal_job_is_structured_409(self, service):
        job_id, record = submit_and_wait(service, {"problem": dict(DEOB)})
        assert record["state"] == "completed"
        status, error = call(service, "DELETE", f"/jobs/{job_id}")
        assert status == 409
        assert error["cancelled"] is False
        assert error["state"] == "completed"
        assert error["status"] == 409
        assert "completed" in error["error"]

    def test_client_accounting_in_stats(self, service):
        submit_and_wait(
            service, {"problem": dict(DEOB), "client": "ci-shard-1"}
        )
        status, stats = call(service, "GET", "/stats")
        assert status == 200
        counters = stats["clients"]["ci-shard-1"]
        assert counters["submitted"] >= 1
        assert counters["completed"] >= 1
        assert counters["rejected"] == 0
        # Admission state rides along even for an unbounded queue.
        assert stats["admission"]["max_pending"] is None
        assert stats["admission"]["draining"] is False

    def test_queue_full_answers_429_with_retry_after(self):
        from repro.service import SciductionService as Service

        bounded = Service(EngineConfig(workers=1), port=0, quiet=True, max_pending=0)
        bounded.start()
        try:
            status, error = call(
                bounded, "POST", "/jobs", {"problem": dict(DEOB), "client": "burst"}
            )
            assert status == 429
            assert error["retry_after"] >= 1
            assert "full" in error["error"]
            request = urllib.request.Request(
                bounded.url + "/jobs",
                method="POST",
                data=json.dumps({"problem": dict(DEOB)}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as caught:
                urllib.request.urlopen(request, timeout=30)
            assert caught.value.code == 429
            assert int(caught.value.headers["Retry-After"]) >= 1
            status, stats = call(bounded, "GET", "/stats")
            assert stats["admission"]["rejected"] >= 2
            assert stats["admission"]["max_pending"] == 0
            assert stats["clients"]["burst"]["rejected"] == 1
        finally:
            bounded.shutdown()

    def test_draining_service_refuses_new_work(self):
        from repro.service import SciductionService as Service

        draining = Service(EngineConfig(workers=1), port=0, quiet=True)
        draining.start()
        try:
            job_id, record = submit_and_wait(draining, {"problem": dict(DEOB)})
            draining.queue.begin_drain()
            status, error = call(
                draining, "POST", "/jobs", {"problem": dict(DEOB)}
            )
            assert status == 503
            assert "shutting down" in error["error"]
            # Existing records stay readable during the drain.
            status, record = call(draining, "GET", f"/jobs/{job_id}")
            assert status == 200 and record["done"]
        finally:
            draining.shutdown()
