"""Tests for the invariant lint rules and the repo-wide gate."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.lint import lint_source, run_lint


def _rules(
    source: str, deterministic: bool = True, io_sensitive: bool = True
) -> list[str]:
    findings = lint_source(
        textwrap.dedent(source),
        "probe.py",
        deterministic=deterministic,
        io_sensitive=io_sensitive,
    )
    return [finding.rule for finding in findings]


# -- ND01 -------------------------------------------------------------------


def test_nd01_flags_set_iteration_contexts():
    assert _rules("for item in {1, 2}:\n    pass\n") == ["ND01"]
    assert _rules("items = [str(x) for x in set(data)]\n") == ["ND01"]
    assert _rules("items = list(frozenset(data))\n") == ["ND01"]
    assert _rules("text = ','.join({'a', 'b'})\n") == ["ND01"]


def test_nd01_tracks_local_set_variables():
    source = """
    def build(data):
        pending = set(data)
        for item in pending:
            yield item
    """
    assert _rules(source) == ["ND01"]


def test_nd01_tracks_self_set_attributes():
    source = """
    class Tracker:
        def __init__(self):
            self.started: set[str] = set()

        def names(self):
            return [name for name in self.started]
    """
    assert _rules(source) == ["ND01"]


def test_nd01_accepts_sorted_and_membership():
    source = """
    def build(data):
        pending = set(data)
        if "x" in pending:
            pass
        return sorted(pending)
    """
    assert _rules(source) == []


def test_nd01_set_operations_propagate():
    assert _rules("for x in set(a) - set(b):\n    pass\n") == ["ND01"]
    assert _rules("out = sorted(set(a) | set(b))\n") == []


def test_nd01_only_in_deterministic_modules():
    source = "for item in {1, 2}:\n    pass\n"
    assert _rules(source, deterministic=False) == []


def test_nd01_flags_set_comprehension_values():
    assert _rules("items = list({x for x in data})\n") == ["ND01"]
    assert _rules("for x in {y for y in data}:\n    pass\n") == ["ND01"]


def test_nd01_unordered_to_unordered_is_order_free():
    # Rebuilding a set from a set never materializes an order.
    assert _rules("out = frozenset(x for x in {1, 2} if x)\n") == []
    assert _rules("out = {x for x in frozenset(data)}\n") == []


def test_nd01_sees_module_level_set_constants():
    source = """
    KINDS = frozenset({"a", "b"})

    def names():
        return [kind for kind in KINDS]
    """
    assert _rules(source) == ["ND01"]


def test_nd01_parameters_shadow_module_constants():
    source = """
    KINDS = frozenset({"a", "b"})

    def names(KINDS):
        return [kind for kind in KINDS]
    """
    assert _rules(source) == []


def test_nd01_sees_class_level_set_constants():
    source = """
    class Tracker:
        KINDS = {"a", "b"}

        def names(self):
            return [kind for kind in self.KINDS]
    """
    assert _rules(source) == ["ND01"]


# -- WC01 -------------------------------------------------------------------


def test_wc01_flags_clock_reads():
    assert _rules("import time\nnow = time.time()\n") == ["WC01"]
    assert _rules("import time\nnow = time.monotonic()\n") == ["WC01"]
    assert _rules(
        "from time import perf_counter\nstart = perf_counter()\n"
    ) == ["WC01"]
    assert _rules(
        "import datetime\nstamp = datetime.datetime.now()\n"
    ) == ["WC01"]


def test_wc01_ignores_non_clock_time_functions():
    assert _rules("import time\ntime.sleep(0.1)\n") == []


# -- allowlist --------------------------------------------------------------


def test_allow_comment_suppresses_with_reason():
    source = "import time\nnow = time.time()  # analysis: allow[WC01] deadline anchor\n"
    assert _rules(source) == []


def test_allow_comment_without_reason_is_al00():
    source = "import time\nnow = time.time()  # analysis: allow[WC01]\n"
    assert sorted(_rules(source)) == ["AL00", "WC01"]


def test_stale_allow_comment_is_al01():
    source = "value = 1  # analysis: allow[WC01] nothing here needs it\n"
    assert _rules(source) == ["AL01"]


def test_allow_for_wrong_rule_does_not_suppress():
    source = "import time\nnow = time.time()  # analysis: allow[ND01] wrong rule\n"
    assert sorted(_rules(source)) == ["AL01", "WC01"]


def test_allow_pattern_in_string_literal_is_not_an_entry():
    source = "MESSAGE = 'use # analysis: allow[WC01] here'\n"
    assert _rules(source) == []


# -- WIRE01 -----------------------------------------------------------------


def test_wire01_flags_non_json_fields_in_registered_specs():
    source = """
    @register_problem_type
    class Spec:
        kind = "probe"
        width: int = 8
        callback: Callable[[int], int] | None = None
    """
    assert _rules(source) == ["WIRE01"]


def test_wire01_checks_to_dict_from_dict_classes():
    source = """
    class Config:
        retries: int = 1
        solver: CdclSolver | None = None

        def to_dict(self):
            return {}

        @classmethod
        def from_dict(cls, data):
            return cls()
    """
    assert _rules(source) == ["WIRE01"]


def test_wire01_accepts_json_shaped_fields():
    source = """
    @register_problem_type
    class Spec:
        width: int = 8
        name: str | None = None
        rows: list[dict[str, float]] = None
        extras: ClassVar[SomethingInternal] = None
    """
    assert _rules(source) == []


def test_wire01_ignores_unmarked_classes():
    source = """
    class Internal:
        solver: CdclSolver | None = None
    """
    assert _rules(source) == []


# -- LOCK02 -----------------------------------------------------------------


_GUARDED_TEMPLATE = """
@guarded_by("_lock", "_jobs", aliases=("_wakeup",))
class Queue:
    def __init__(self):
        self._jobs = []

    def locked_append(self, job):
        with self._lock:
            self._jobs.append(job)

    def alias_append(self, job):
        with self._wakeup:
            self._jobs.append(job)

    @holds("_lock")
    def caller_holds(self, job):
        self._jobs.append(job)
"""


def test_lock02_accepts_locked_alias_and_holds_mutations():
    assert _rules(_GUARDED_TEMPLATE) == []


def test_lock02_flags_unlocked_mutations():
    source = _GUARDED_TEMPLATE + """
    def racy_append(self, job):
        self._jobs.append(job)

    def racy_assign(self):
        self._jobs = []

    def racy_subscript(self, job):
        self._jobs[0] = job
"""
    assert _rules(source) == ["LOCK02", "LOCK02", "LOCK02"]


def test_lock02_nested_closures_start_unlocked():
    source = _GUARDED_TEMPLATE + """
    def register(self):
        with self._lock:
            def callback(job):
                self._jobs.append(job)
            return callback
"""
    # The closure may run long after the with-block exited.
    assert _rules(source) == ["LOCK02"]


def test_lock02_ignores_unguarded_fields():
    source = _GUARDED_TEMPLATE + """
    def touch_other(self):
        self._other = []
"""
    assert _rules(source) == []


def test_lock02_flags_mutation_unlocked_on_one_path():
    # Flow-sensitivity: the mutation is locked on the fast path only —
    # the lexical LOCK01 could not see this at all.
    source = _GUARDED_TEMPLATE + """
    def branchy(self, job, fast):
        if fast:
            with self._lock:
                marker = 1
        self._jobs.append(job)
"""
    assert _rules(source) == ["LOCK02"]


def test_lock02_accepts_mutation_locked_on_every_path():
    source = _GUARDED_TEMPLATE + """
    def both(self, job, fast):
        if fast:
            with self._lock:
                self._jobs.append(job)
        else:
            with self._wakeup:
                self._jobs.append(job)
"""
    assert _rules(source) == []


def test_lock02_flags_acquire_leaking_on_exception_path():
    # append() can raise between acquire and release.
    source = _GUARDED_TEMPLATE + """
    def manual(self, job):
        self._lock.acquire()
        self._jobs.append(job)
        self._lock.release()
"""
    assert _rules(source) == ["LOCK02"]


def test_lock02_accepts_acquire_with_try_finally():
    source = _GUARDED_TEMPLATE + """
    def careful(self, job):
        self._lock.acquire()
        try:
            self._jobs.append(job)
        finally:
            self._lock.release()
"""
    assert _rules(source) == []


# -- BLK01 ------------------------------------------------------------------


def test_blk01_flags_socket_send_under_lock():
    source = _GUARDED_TEMPLATE + """
    def push(self, sock, data):
        with self._lock:
            sock.sendall(data)
"""
    assert _rules(source) == ["BLK01"]


def test_blk01_flags_sleep_and_untimed_wait_under_lock():
    source = _GUARDED_TEMPLATE + """
    def nap(self):
        with self._lock:
            time.sleep(0.1)

    def park(self):
        with self._wakeup:
            self._wakeup.wait()
"""
    assert _rules(source) == ["BLK01", "BLK01"]


def test_blk01_accepts_timed_wait_and_io_outside_lock():
    source = _GUARDED_TEMPLATE + """
    def park_timed(self):
        with self._wakeup:
            self._wakeup.wait(0.5)

    def push(self, sock, data):
        with self._lock:
            marker = 1
        sock.sendall(data)
"""
    assert _rules(source) == []


def test_blk01_only_in_io_sensitive_modules():
    source = _GUARDED_TEMPLATE + """
    def push(self, sock, data):
        with self._lock:
            sock.sendall(data)
"""
    assert _rules(source, io_sensitive=False) == []


# -- RES01 ------------------------------------------------------------------


def test_res01_flags_exception_path_leak():
    # send() can raise before the return hands the link off.
    source = """
    def fetch(host, port, payload):
        link = FramedSocket.connect(host, port, 5.0)
        link.send(payload)
        return link
    """
    assert _rules(source) == ["RES01"]


def test_res01_accepts_close_and_reraise():
    source = """
    def fetch(host, port, payload):
        link = FramedSocket.connect(host, port, 5.0)
        try:
            link.send(payload)
        except OSError:
            link.close()
            raise
        return link
    """
    assert _rules(source) == []


def test_res01_flags_resource_falling_off_the_end():
    source = """
    def probe(path):
        handle = open(path)
        first = handle.readline()
    """
    assert _rules(source) == ["RES01"]


def test_res01_accepts_with_statement_and_handoff():
    source = """
    def probe(path):
        with open(path) as handle:
            return handle.readline()

    def serve(listener, pool):
        connection, _ = listener.accept()
        pool.submit(connection)
    """
    assert _rules(source) == []


def test_res01_only_in_io_sensitive_modules():
    source = """
    def probe(path):
        handle = open(path)
        first = handle.readline()
    """
    assert _rules(source, io_sensitive=False) == []


# -- the repo gate ----------------------------------------------------------


def test_repo_is_lint_clean():
    """The shipping tree has zero findings (and explained allows only)."""
    package_root = Path(__file__).resolve().parent.parent / "src" / "repro"
    findings = run_lint(package_root)
    assert findings == [], "\n".join(finding.render() for finding in findings)
