"""Structural tests for the CFG builder and the fixpoint solver."""

from __future__ import annotations

import ast
import textwrap

import pytest

from repro.analysis.cfg import (
    KIND_FINALLY,
    KIND_HANDLER,
    KIND_STMT,
    KIND_WITH_ENTER,
    KIND_WITH_EXIT,
    build_cfg,
)
from repro.analysis.dataflow import FixpointDiverged, solve


def _cfg(source: str):
    tree = ast.parse(textwrap.dedent(source))
    function = tree.body[0]
    assert isinstance(function, ast.FunctionDef)
    return build_cfg(function)


class _Reach:
    """Trivial analysis: a node's in-state is non-None iff reachable."""

    def initial(self):
        return frozenset()

    def join(self, left, right):
        return left | right

    def transfer(self, node, state):
        return state, state


def _reachable(cfg):
    solution = solve(cfg, _Reach())
    return {n.index for n in cfg.nodes if solution.at(n.index) is not None}


def test_straight_line_reaches_both_exits():
    cfg = _cfg("def f(x):\n    y = x + 1\n    return y\n")
    reachable = _reachable(cfg)
    assert cfg.exit in reachable  # the return
    assert cfg.raise_exit in reachable  # x + 1 can raise


def test_if_branches_rejoin():
    cfg = _cfg("""
    def f(x):
        if x:
            a = 1
        else:
            a = 2
        return a
    """)
    # The test-header node has two normal successors (the branch bodies).
    headers = [
        n for n in cfg.nodes
        if n.kind == KIND_STMT and isinstance(n.payload, ast.Name)
        and n.payload.id == "x"
    ]
    assert len(headers) == 1
    normal_successors = [
        t for t, exceptional in cfg.edges[headers[0].index] if not exceptional
    ]
    assert len(normal_successors) == 2


def test_while_loop_has_back_edge():
    cfg = _cfg("""
    def f(n):
        while n:
            n = n - 1
    """)
    header = next(
        n.index for n in cfg.nodes
        if n.kind == KIND_STMT and isinstance(n.payload, ast.Name)
    )
    body = next(
        n.index for n in cfg.nodes
        if n.kind == KIND_STMT and isinstance(n.payload, ast.Assign)
    )
    assert (header, False) in [
        (t, e) for t, e in cfg.edges[body]
    ] or any(t == header for t, _ in cfg.edges[body])


def test_code_after_return_is_unreachable():
    cfg = _cfg("""
    def f():
        return 1
        x = 2
    """)
    dead = next(
        n.index for n in cfg.nodes
        if n.kind == KIND_STMT and isinstance(n.payload, ast.Assign)
    )
    assert dead not in _reachable(cfg)
    assert cfg.exit in _reachable(cfg)


def test_with_produces_enter_and_both_exits():
    cfg = _cfg("""
    def f(lock):
        with lock:
            x = 1
    """)
    kinds = [n.kind for n in cfg.nodes]
    assert kinds.count(KIND_WITH_ENTER) == 1
    # One cleanup exit on the exception route, one on the normal route.
    assert kinds.count(KIND_WITH_EXIT) == 2


def test_return_unwinds_through_with_exit():
    cfg = _cfg("""
    def f(lock):
        with lock:
            return 1
    """)
    return_node = next(
        n for n in cfg.nodes
        if n.kind == KIND_STMT and isinstance(n.payload, ast.Return)
    )
    successors = [t for t, _ in cfg.edges[return_node.index]]
    assert all(
        cfg.nodes[t].kind == KIND_WITH_EXIT for t in successors
    ), "return inside with must route through the context release"


def test_try_finally_is_duplicated():
    cfg = _cfg("""
    def f():
        try:
            x = 1
        finally:
            y = 2
    """)
    kinds = [n.kind for n in cfg.nodes]
    assert kinds.count(KIND_FINALLY) == 2  # normal + exceptional copies
    finally_stmts = [
        n for n in cfg.nodes
        if n.kind == KIND_STMT and isinstance(n.payload, ast.Assign)
        and n.payload.targets[0].id == "y"
    ]
    assert len(finally_stmts) == 2


def test_handlers_capture_body_exceptions():
    cfg = _cfg("""
    def f():
        try:
            x = risky()
        except OSError:
            x = None
        return x
    """)
    kinds = [n.kind for n in cfg.nodes]
    assert kinds.count(KIND_HANDLER) == 1
    # With a handler present the body's exception edge goes to the catch
    # dispatch, never straight to raise_exit.
    body_stmt = next(
        n for n in cfg.nodes
        if n.kind == KIND_STMT and isinstance(n.payload, ast.Assign)
        and isinstance(n.payload.value, ast.Call)
    )
    exceptional = [t for t, e in cfg.edges[body_stmt.index] if e]
    assert cfg.raise_exit not in exceptional


def test_fixpoint_budget_raises_on_divergence():
    # The loop feeds the ever-growing state back into its own header; a
    # monotone analysis over an infinite-height lattice never converges,
    # and the budget must turn that into an error, not a hang.
    cfg = _cfg("""
    def f(x):
        while x:
            x = step(x)
    """)

    class _Diverging:
        def initial(self):
            return 0

        def join(self, left, right):
            return max(left, right)

        def transfer(self, node, state):
            return state + 1, state + 1  # grows forever

    with pytest.raises(FixpointDiverged):
        solve(cfg, _Diverging())
