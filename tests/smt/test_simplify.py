"""Tests for the word-level simplifier (repro.smt.simplify).

The core guarantee — simplification never changes the value of a term
under any assignment — is checked by randomized differential fuzzing: for
hundreds of random term DAGs, the original and simplified forms are
evaluated under ~100 random assignments each and must agree exactly.
"""

import random

import repro.smt.terms as terms
from repro.smt.simplify import simplify, simplify_bool
from repro.smt.terms import (
    Assignment,
    BoolConst,
    FALSE,
    TRUE,
    bool_and,
    bool_ite,
    bool_not,
    bool_or,
    bool_var,
    bool_xor,
    bv_comparison,
    bv_concat,
    bv_const,
    bv_extract,
    bv_ite,
    bv_sign_extend,
    bv_var,
    bv_zero_extend,
    evaluate,
)

WIDTH = 6
DOMAIN = 1 << WIDTH
VARIABLES = ["a", "b", "c"]

_BV_BINARY = ["add", "sub", "mul", "and", "or", "xor", "shl", "lshr", "ashr"]
_COMPARISONS = ["eq", "ult", "ule", "slt", "sle"]


def _random_bv(rng, depth):
    if depth == 0 or rng.random() < 0.3:
        if rng.random() < 0.4:
            return bv_const(rng.randrange(DOMAIN), WIDTH)
        return bv_var(rng.choice(VARIABLES), WIDTH)
    choice = rng.randrange(14)
    if choice < 9:
        operator = getattr(terms, f"bv_{_BV_BINARY[choice]}")
        return operator(_random_bv(rng, depth - 1), _random_bv(rng, depth - 1))
    if choice == 9:
        return terms.bv_not(_random_bv(rng, depth - 1))
    if choice == 10:
        return terms.bv_neg(_random_bv(rng, depth - 1))
    if choice == 11:
        return bv_ite(
            _random_bool(rng, depth - 1),
            _random_bv(rng, depth - 1),
            _random_bv(rng, depth - 1),
        )
    if choice == 12:
        high = rng.randrange(WIDTH)
        low = rng.randrange(high + 1)
        wide = bv_zero_extend(_random_bv(rng, depth - 1), WIDTH + high)
        return bv_zero_extend(bv_extract(wide, high, low), WIDTH)
    narrow = bv_extract(_random_bv(rng, depth - 1), WIDTH - 2, 0)
    extend = bv_sign_extend if rng.random() < 0.5 else bv_zero_extend
    return extend(narrow, WIDTH)


def _random_bool(rng, depth):
    if depth == 0 or rng.random() < 0.25:
        kind = rng.choice(_COMPARISONS)
        return bv_comparison(kind, _random_bv(rng, 1), _random_bv(rng, 1))
    choice = rng.randrange(5)
    if choice == 0:
        return bool_not(_random_bool(rng, depth - 1))
    if choice == 1:
        return bool_ite(
            _random_bool(rng, depth - 1),
            _random_bool(rng, depth - 1),
            _random_bool(rng, depth - 1),
        )
    operator = (bool_and, bool_or, bool_xor)[choice - 2]
    return operator(_random_bool(rng, depth - 1), _random_bool(rng, depth - 1))


def _dag_size(term):
    seen = set()
    stack = [term]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        for attribute in ("args", "operands"):
            stack.extend(getattr(node, attribute, ()))
        for attribute in ("condition", "then_branch", "else_branch", "operand", "left", "right"):
            child = getattr(node, attribute, None)
            if child is not None:
                stack.append(child)
    return len(seen)


class TestDifferentialFuzz:
    def test_simplified_terms_evaluate_identically(self):
        # ~300 random DAGs x ~100 random assignments each: the original
        # and simplified forms must agree under every assignment.
        rng = random.Random(2024)
        for trial in range(300):
            term = (
                _random_bool(rng, 4) if trial % 2 else _random_bv(rng, 4)
            )
            simplified = simplify(term)
            for _ in range(100):
                assignment = Assignment(
                    bv_values={
                        name: rng.randrange(DOMAIN) for name in VARIABLES
                    }
                )
                assert evaluate(term, assignment) == evaluate(
                    simplified, assignment
                ), f"trial {trial}: {term!r} vs {simplified!r}"

    def test_simplification_never_grows_the_dag(self):
        rng = random.Random(7)
        for trial in range(150):
            term = _random_bool(rng, 4) if trial % 2 else _random_bv(rng, 4)
            assert _dag_size(simplify(term)) <= _dag_size(term)

    def test_idempotent(self):
        rng = random.Random(99)
        for trial in range(100):
            term = _random_bool(rng, 4) if trial % 2 else _random_bv(rng, 4)
            once = simplify(term)
            assert simplify(once) is once


class TestConstantFolding:
    def test_arithmetic_folds(self):
        three, five = bv_const(3, 8), bv_const(5, 8)
        assert simplify(three + five) is bv_const(8, 8)
        assert simplify(three * five) is bv_const(15, 8)
        assert simplify(terms.bv_shl(three, bv_const(2, 8))) is bv_const(12, 8)

    def test_comparison_folds(self):
        assert simplify(bv_const(3, 8).ult(bv_const(5, 8))) is TRUE
        assert simplify(bv_const(0x80, 8).slt(bv_const(0, 8))) is TRUE
        assert simplify(bv_const(5, 8).eq(bv_const(6, 8))) is FALSE

    def test_structural_folds(self):
        assert simplify(bv_concat(bv_const(0xA, 4), bv_const(0xB, 4))) is bv_const(
            0xAB, 8
        )
        assert simplify(bv_extract(bv_const(0xAB, 8), 7, 4)) is bv_const(0xA, 4)
        assert simplify(bv_sign_extend(bv_const(0x8, 4), 8)) is bv_const(0xF8, 8)


class TestNeutralAndAbsorbing:
    def test_bv_neutral_elements(self):
        x = bv_var("x", 8)
        zero, one = bv_const(0, 8), bv_const(1, 8)
        assert simplify(x + zero) is x
        assert simplify(x - zero) is x
        assert simplify(x * one) is x
        assert simplify(x | zero) is x
        assert simplify(x ^ zero) is x
        assert simplify(terms.bv_shl(x, zero)) is x
        assert simplify(x & bv_const(0xFF, 8)) is x

    def test_bv_absorbing_elements(self):
        x = bv_var("x", 8)
        zero = bv_const(0, 8)
        assert simplify(x * zero) is zero
        assert simplify(x & zero) is zero
        assert simplify(x | bv_const(0xFF, 8)) is bv_const(0xFF, 8)
        assert simplify(terms.bv_shl(x, bv_const(9, 8))) is zero

    def test_bv_idempotence_and_cancellation(self):
        x = bv_var("x", 8)
        assert simplify(x & x) is x
        assert simplify(x | x) is x
        assert simplify(x ^ x) is bv_const(0, 8)
        assert simplify(x - x) is bv_const(0, 8)
        assert simplify(~~x) is x
        assert simplify(-(-x)) is x

    def test_bool_neutral_and_absorbing(self):
        p = bool_var("p")
        assert simplify(bool_and(p, TRUE)) is p
        assert simplify(bool_and(p, FALSE)) is FALSE
        assert simplify(bool_or(p, FALSE)) is p
        assert simplify(bool_or(p, TRUE)) is TRUE
        assert simplify(bool_xor(p, FALSE)) is p
        assert simplify(bool_and(p, p)) is p
        assert simplify(bool_and(p, bool_not(p))) is FALSE
        assert simplify(bool_or(p, bool_not(p))) is TRUE
        assert simplify(bool_xor(p, p)) is FALSE


class TestIteCollapsing:
    def test_constant_condition(self):
        x, y = bv_var("x", 8), bv_var("y", 8)
        assert simplify(bv_ite(TRUE, x, y)) is x
        assert simplify(bv_ite(FALSE, x, y)) is y

    def test_equal_branches(self):
        x = bv_var("x", 8)
        p = bool_var("p")
        assert simplify(bv_ite(p, x, x)) is x

    def test_negated_condition_swaps(self):
        x, y = bv_var("x", 8), bv_var("y", 8)
        p = bool_var("p")
        assert simplify(bv_ite(bool_not(p), x, y)) is simplify(bv_ite(p, y, x))

    def test_boolean_ite_with_constant_branches(self):
        p = bool_var("p")
        assert simplify(bool_ite(p, TRUE, FALSE)) is p
        assert simplify(bool_ite(p, FALSE, TRUE)) is bool_not(p)


class TestTrivialComparisons:
    def test_reflexive(self):
        x = bv_var("x", 8)
        assert simplify(x.eq(x)) is TRUE
        assert simplify(x.ult(x)) is FALSE
        assert simplify(x.ule(x)) is TRUE

    def test_domain_bounds(self):
        x = bv_var("x", 8)
        assert simplify(x.ult(bv_const(0, 8))) is FALSE
        assert simplify(x.uge(bv_const(0, 8))) is TRUE  # 0 <= x
        assert simplify(x.ule(bv_const(0xFF, 8))) is TRUE

    def test_truthiness_roundtrip_unwrapped(self):
        # The CFG encoder emits `ite(c, 1, 0) != 0` word round-trips; the
        # simplifier must strip them back to the bare condition.
        x, y = bv_var("x", 8), bv_var("y", 8)
        condition = x.ult(y)
        word = bv_ite(condition, bv_const(1, 8), bv_const(0, 8))
        assert simplify(word.ne(bv_const(0, 8))) is condition
        assert simplify(word.eq(bv_const(0, 8))) is bool_not(condition)
        assert simplify(word.eq(bv_const(7, 8))) is FALSE

    def test_simplify_bool_keeps_sort(self):
        x = bv_var("x", 8)
        result = simplify_bool(x.ult(x))
        assert isinstance(result, BoolConst)
