"""Tests for the CNF representation (repro.smt.cnf)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import SolverError
from repro.smt import (
    CnfFormula,
    lit_from_dimacs,
    lit_to_dimacs,
    literal_is_negative,
    literal_variable,
    make_literal,
    negate,
)


class TestLiteralEncoding:
    def test_make_and_inspect(self):
        literal = make_literal(5)
        assert literal_variable(literal) == 5
        assert not literal_is_negative(literal)
        negated = make_literal(5, negative=True)
        assert literal_is_negative(negated)

    def test_negate_is_involutive(self):
        literal = make_literal(3, negative=True)
        assert negate(negate(literal)) == literal
        assert negate(literal) != literal

    def test_dimacs_round_trip(self):
        for dimacs in (1, -1, 17, -42):
            assert lit_to_dimacs(lit_from_dimacs(dimacs)) == dimacs

    def test_zero_dimacs_rejected(self):
        with pytest.raises(SolverError):
            lit_from_dimacs(0)

    def test_nonpositive_variable_rejected(self):
        with pytest.raises(SolverError):
            make_literal(0)

    @given(st.integers(min_value=1, max_value=10**6), st.booleans())
    def test_encoding_round_trip(self, variable, negative):
        literal = make_literal(variable, negative)
        assert literal_variable(literal) == variable
        assert literal_is_negative(literal) == negative


class TestCnfFormula:
    def test_add_clause_and_evaluate(self):
        formula = CnfFormula()
        x, y = formula.new_variable(), formula.new_variable()
        formula.add_clause([make_literal(x)])
        formula.add_clause([make_literal(x, True), make_literal(y)])
        assert formula.evaluate([False, True, True])
        assert not formula.evaluate([False, True, False])
        assert not formula.evaluate([False, False, False])

    def test_tautology_dropped(self):
        formula = CnfFormula()
        x = formula.new_variable()
        formula.add_clause([make_literal(x), make_literal(x, True)])
        assert len(formula) == 0

    def test_duplicate_literals_removed(self):
        formula = CnfFormula()
        x = formula.new_variable()
        formula.add_clause([make_literal(x), make_literal(x)])
        assert formula.clauses[0] == [make_literal(x)]

    def test_empty_clause_marks_unsat(self):
        formula = CnfFormula()
        formula.add_clause([])
        assert formula.contains_empty_clause
        assert not formula.evaluate([False])

    def test_unallocated_variable_rejected(self):
        formula = CnfFormula()
        with pytest.raises(SolverError):
            formula.add_clause([make_literal(3)])

    def test_dimacs_clause_helper(self):
        formula = CnfFormula()
        formula.new_variables(2)
        formula.add_dimacs_clause([1, -2])
        assert formula.evaluate([False, True, False])
        assert not formula.evaluate([False, False, True])
