"""Differential tests: bit-blasted SAT solving vs. the reference evaluator."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import (
    Assignment,
    BitBlaster,
    CdclSolver,
    SatResult,
    bool_and,
    bv_ashr,
    bv_concat,
    bv_const,
    bv_extract,
    bv_ite,
    bv_lshr,
    bv_shl,
    bv_sign_extend,
    bv_var,
    bv_zero_extend,
    evaluate,
)

WIDTH = 5
DOMAIN = 1 << WIDTH


def _brute_force_satisfiable(formula, variables):
    for values in itertools.product(range(DOMAIN), repeat=len(variables)):
        env = Assignment(bv_values=dict(zip(variables, values)))
        if evaluate(formula, env):
            return True
    return False


def _solve(formula):
    solver = CdclSolver()
    blaster = BitBlaster(solver)
    blaster.assert_formula(formula)
    result = solver.solve()
    if result is SatResult.SAT:
        return True, blaster.extract_assignment(solver.model())
    return False, None


def _check_formula(formula, variables):
    """SAT verdicts must match brute force; models must satisfy the formula."""
    expected = _brute_force_satisfiable(formula, variables)
    got, assignment = _solve(formula)
    assert got == expected
    if got:
        for name in variables:
            assignment.bv_values.setdefault(name, 0)
        assert evaluate(formula, assignment) is True


class TestOperatorEncodings:
    @pytest.mark.parametrize(
        "make_term",
        [
            lambda a, b: a + b,
            lambda a, b: a - b,
            lambda a, b: a * b,
            lambda a, b: a & b,
            lambda a, b: a | b,
            lambda a, b: a ^ b,
            lambda a, b: ~a,
            lambda a, b: -a,
            lambda a, b: bv_shl(a, b),
            lambda a, b: bv_lshr(a, b),
            lambda a, b: bv_ashr(a, b),
            lambda a, b: bv_ite(a.ult(b), a, b),
        ],
        ids=[
            "add", "sub", "mul", "and", "or", "xor", "not", "neg",
            "shl", "lshr", "ashr", "ite-min",
        ],
    )
    def test_operator_agrees_with_evaluator_on_all_inputs(self, make_term):
        # For every concrete (a, b) the formula `term == expected` must be
        # satisfiable with a = that value (checked via unit equalities).
        a, b = bv_var("a", WIDTH), bv_var("b", WIDTH)
        term = make_term(a, b)
        for value_a in range(0, DOMAIN, 7):
            for value_b in range(0, DOMAIN, 5):
                env = Assignment(bv_values={"a": value_a, "b": value_b})
                expected = evaluate(term, env)
                formula = bool_and(
                    a.eq(bv_const(value_a, WIDTH)),
                    b.eq(bv_const(value_b, WIDTH)),
                    term.eq(bv_const(expected, WIDTH)),
                )
                got, _ = _solve(formula)
                assert got, (value_a, value_b, expected)

    def test_comparison_encodings(self):
        a, b = bv_var("a", WIDTH), bv_var("b", WIDTH)
        for comparison in (a.ult(b), a.ule(b), a.slt(b), a.sle(b), a.eq(b)):
            _check_formula(comparison, ["a", "b"])
            _check_formula(bool_and(comparison, a.eq(bv_const(17, WIDTH))), ["a", "b"])

    def test_structural_operations(self):
        a = bv_var("a", WIDTH)
        wide = bv_zero_extend(a, WIDTH + 3)
        signed = bv_sign_extend(a, WIDTH + 3)
        cat = bv_concat(a, bv_const(0b101, 3))
        formula = bool_and(
            bv_extract(cat, 2, 0).eq(bv_const(0b101, 3)),
            wide.ult(bv_const(DOMAIN, WIDTH + 3)),
            signed.uge(bv_const(0, WIDTH + 3)),
        )
        _check_formula(formula, ["a"])

    def test_unsat_equation(self):
        a = bv_var("a", WIDTH)
        # a + 1 == a is unsatisfiable in modular arithmetic of width >= 1.
        got, _ = _solve((a + 1).eq(a))
        assert got is False

    def test_linear_equation_has_expected_solution(self):
        a = bv_var("a", 8)
        formula = (a * bv_const(3, 8)).eq(bv_const(30, 8))
        got, assignment = _solve(formula)
        assert got
        assert (assignment.bv_values["a"] * 3) % 256 == 30


class TestPropertyDifferential:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_random_formulas(self, data):
        a, b = bv_var("a", WIDTH), bv_var("b", WIDTH)
        operators = [
            lambda x, y: x + y,
            lambda x, y: x - y,
            lambda x, y: x * y,
            lambda x, y: x ^ y,
            lambda x, y: x & y,
            lambda x, y: x | y,
            lambda x, y: bv_shl(x, y),
            lambda x, y: bv_lshr(x, y),
        ]
        op = data.draw(st.sampled_from(operators))
        constant = data.draw(st.integers(min_value=0, max_value=DOMAIN - 1))
        relation = data.draw(st.sampled_from(["eq", "ult", "ule"]))
        term = op(a, b)
        target = bv_const(constant, WIDTH)
        formula = {
            "eq": term.eq(target),
            "ult": term.ult(target),
            "ule": term.ule(target),
        }[relation]
        if data.draw(st.booleans()):
            formula = bool_and(formula, a.slt(b))
        _check_formula(formula, ["a", "b"])
