"""Differential tests: bit-blasted SAT solving vs. the reference evaluator."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import (
    Assignment,
    BitBlaster,
    CdclSolver,
    SatResult,
    bool_and,
    bool_ite,
    bool_not,
    bool_or,
    bool_xor,
    bv_ashr,
    bv_concat,
    bv_const,
    bv_extract,
    bv_ite,
    bv_lshr,
    bv_shl,
    bv_sign_extend,
    bv_var,
    bv_zero_extend,
    evaluate,
)
from repro.smt.bitblast import BOTH, NEGATIVE, POSITIVE
from repro.smt.terms import bv_comparison

WIDTH = 5
DOMAIN = 1 << WIDTH


def _brute_force_satisfiable(formula, variables):
    for values in itertools.product(range(DOMAIN), repeat=len(variables)):
        env = Assignment(bv_values=dict(zip(variables, values)))
        if evaluate(formula, env):
            return True
    return False


def _solve(formula):
    solver = CdclSolver()
    blaster = BitBlaster(solver)
    blaster.assert_formula(formula)
    result = solver.solve()
    if result is SatResult.SAT:
        return True, blaster.extract_assignment(solver.model())
    return False, None


def _check_formula(formula, variables):
    """SAT verdicts must match brute force; models must satisfy the formula."""
    expected = _brute_force_satisfiable(formula, variables)
    got, assignment = _solve(formula)
    assert got == expected
    if got:
        for name in variables:
            assignment.bv_values.setdefault(name, 0)
        assert evaluate(formula, assignment) is True


class TestOperatorEncodings:
    @pytest.mark.parametrize(
        "make_term",
        [
            lambda a, b: a + b,
            lambda a, b: a - b,
            lambda a, b: a * b,
            lambda a, b: a & b,
            lambda a, b: a | b,
            lambda a, b: a ^ b,
            lambda a, b: ~a,
            lambda a, b: -a,
            lambda a, b: bv_shl(a, b),
            lambda a, b: bv_lshr(a, b),
            lambda a, b: bv_ashr(a, b),
            lambda a, b: bv_ite(a.ult(b), a, b),
        ],
        ids=[
            "add", "sub", "mul", "and", "or", "xor", "not", "neg",
            "shl", "lshr", "ashr", "ite-min",
        ],
    )
    def test_operator_agrees_with_evaluator_on_all_inputs(self, make_term):
        # For every concrete (a, b) the formula `term == expected` must be
        # satisfiable with a = that value (checked via unit equalities).
        a, b = bv_var("a", WIDTH), bv_var("b", WIDTH)
        term = make_term(a, b)
        for value_a in range(0, DOMAIN, 7):
            for value_b in range(0, DOMAIN, 5):
                env = Assignment(bv_values={"a": value_a, "b": value_b})
                expected = evaluate(term, env)
                formula = bool_and(
                    a.eq(bv_const(value_a, WIDTH)),
                    b.eq(bv_const(value_b, WIDTH)),
                    term.eq(bv_const(expected, WIDTH)),
                )
                got, _ = _solve(formula)
                assert got, (value_a, value_b, expected)

    def test_comparison_encodings(self):
        a, b = bv_var("a", WIDTH), bv_var("b", WIDTH)
        for comparison in (a.ult(b), a.ule(b), a.slt(b), a.sle(b), a.eq(b)):
            _check_formula(comparison, ["a", "b"])
            _check_formula(bool_and(comparison, a.eq(bv_const(17, WIDTH))), ["a", "b"])

    def test_structural_operations(self):
        a = bv_var("a", WIDTH)
        wide = bv_zero_extend(a, WIDTH + 3)
        signed = bv_sign_extend(a, WIDTH + 3)
        cat = bv_concat(a, bv_const(0b101, 3))
        formula = bool_and(
            bv_extract(cat, 2, 0).eq(bv_const(0b101, 3)),
            wide.ult(bv_const(DOMAIN, WIDTH + 3)),
            signed.uge(bv_const(0, WIDTH + 3)),
        )
        _check_formula(formula, ["a"])

    def test_unsat_equation(self):
        a = bv_var("a", WIDTH)
        # a + 1 == a is unsatisfiable in modular arithmetic of width >= 1.
        got, _ = _solve((a + 1).eq(a))
        assert got is False

    def test_linear_equation_has_expected_solution(self):
        a = bv_var("a", 8)
        formula = (a * bv_const(3, 8)).eq(bv_const(30, 8))
        got, assignment = _solve(formula)
        assert got
        assert (assignment.bv_values["a"] * 3) % 256 == 30


def _random_formula(rng, depth, names):
    if depth == 0 or rng.random() < 0.3:
        kind = rng.choice(["eq", "ult", "ule", "slt", "sle"])

        def leaf():
            if rng.random() < 0.3:
                return bv_const(rng.randrange(DOMAIN), WIDTH)
            left = bv_var(rng.choice(names), WIDTH)
            if rng.random() < 0.5:
                return left
            right = bv_var(rng.choice(names), WIDTH)
            return rng.choice(
                [left + right, left - right, left & right, left | right, left ^ right]
            )

        return bv_comparison(kind, leaf(), leaf())
    choice = rng.randrange(5)
    if choice == 0:
        return bool_not(_random_formula(rng, depth - 1, names))
    if choice == 1:
        return bool_ite(
            _random_formula(rng, depth - 1, names),
            _random_formula(rng, depth - 1, names),
            _random_formula(rng, depth - 1, names),
        )
    operator = (bool_and, bool_or, bool_xor)[choice - 2]
    return operator(
        _random_formula(rng, depth - 1, names), _random_formula(rng, depth - 1, names)
    )


class TestPolarityAwareEncoding:
    """Plaisted–Greenbaum vs. full Tseitin: equisatisfiable, fewer clauses."""

    def test_verdicts_and_models_match_full_encoding(self):
        rng = random.Random(77)
        names = ["a", "b"]
        positive_clauses = full_clauses = 0
        for trial in range(120):
            formula = _random_formula(rng, 3, names)
            expected = _brute_force_satisfiable(formula, names)
            for polarity in (BOTH, POSITIVE):
                solver = CdclSolver()
                blaster = BitBlaster(solver)
                blaster.assert_formula(formula, polarity)
                got = solver.solve() is SatResult.SAT
                assert got == expected, (trial, polarity, formula)
                if got:
                    assignment = blaster.extract_assignment(solver.model())
                    for name in names:
                        assignment.bv_values.setdefault(name, 0)
                    assert evaluate(formula, assignment) is True, (trial, polarity)
                if polarity is BOTH:
                    full_clauses += solver.statistics.clauses_added
                else:
                    positive_clauses += solver.statistics.clauses_added
        assert positive_clauses < full_clauses

    def test_negative_polarity_assertion(self):
        # Asserting ~f with f blasted under NEGATIVE polarity is the dual
        # use; verdicts must match the full encoding of the negation.
        rng = random.Random(78)
        names = ["a", "b"]
        from repro.smt.cnf import negate

        for trial in range(60):
            formula = _random_formula(rng, 3, names)
            negated = bool_not(formula)
            expected = _brute_force_satisfiable(negated, names)
            solver = CdclSolver()
            blaster = BitBlaster(solver)
            solver.add_clause([negate(blaster.blast_bool(formula, NEGATIVE))])
            assert (solver.solve() is SatResult.SAT) == expected, (trial, formula)

    def test_polarity_upgrade_on_shared_gates(self):
        # A formula first used positively and later negatively must have
        # its gates upgraded to the full biconditional: both assertions
        # together are unsatisfiable.
        a, b = bv_var("ua", WIDTH), bv_var("ub", WIDTH)
        formula = bool_and(a.ult(b), a.eq(bv_const(3, WIDTH)))
        solver = CdclSolver()
        blaster = BitBlaster(solver)
        blaster.assert_formula(formula, POSITIVE)
        assert solver.solve() is SatResult.SAT
        blaster.assert_formula(bool_not(formula), POSITIVE)
        assert solver.solve() is SatResult.UNSAT

    def test_single_operand_xor_boolop(self):
        # Regression: a directly instantiated BoolOp("xor", [x]) (legal,
        # just not interned) must blast to x, not constant-fold to false.
        from repro.smt import BoolVar
        from repro.smt.terms import BoolOp

        x = BoolVar("lonely_xor_input")
        solver = CdclSolver()
        blaster = BitBlaster(solver)
        blaster.assert_formula(BoolOp("xor", [x]), POSITIVE)
        blaster.assert_formula(x, POSITIVE)
        assert solver.solve() is SatResult.SAT

    def test_upgrade_returns_same_literal(self):
        a, b = bv_var("va", WIDTH), bv_var("vb", WIDTH)
        formula = bool_or(a.ule(b), a.eq(bv_const(1, WIDTH)))
        solver = CdclSolver()
        blaster = BitBlaster(solver)
        first = blaster.blast_bool(formula, POSITIVE)
        clauses_after_first = solver.statistics.clauses_added
        second = blaster.blast_bool(formula, BOTH)
        assert first == second
        # The upgrade emitted the missing direction without re-encoding
        # the whole term (some clauses, but no new variables).
        assert solver.statistics.clauses_added > clauses_after_first
        clauses_after_upgrade = solver.statistics.clauses_added
        third = blaster.blast_bool(formula, BOTH)
        assert third == first
        # Fully-upgraded terms are pure cache hits.
        assert solver.statistics.clauses_added == clauses_after_upgrade


class TestPropertyDifferential:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_random_formulas(self, data):
        a, b = bv_var("a", WIDTH), bv_var("b", WIDTH)
        operators = [
            lambda x, y: x + y,
            lambda x, y: x - y,
            lambda x, y: x * y,
            lambda x, y: x ^ y,
            lambda x, y: x & y,
            lambda x, y: x | y,
            lambda x, y: bv_shl(x, y),
            lambda x, y: bv_lshr(x, y),
        ]
        op = data.draw(st.sampled_from(operators))
        constant = data.draw(st.integers(min_value=0, max_value=DOMAIN - 1))
        relation = data.draw(st.sampled_from(["eq", "ult", "ule"]))
        term = op(a, b)
        target = bv_const(constant, WIDTH)
        formula = {
            "eq": term.eq(target),
            "ult": term.ult(target),
            "ule": term.ule(target),
        }[relation]
        if data.draw(st.booleans()):
            formula = bool_and(formula, a.slt(b))
        _check_formula(formula, ["a", "b"])
