"""Tests for the CDCL SAT solver, including a brute-force differential check."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SolverError
from repro.smt import CdclSolver, CnfFormula, SatResult, luby, make_literal, solve_formula


def _brute_force_sat(num_vars, clauses):
    """Reference satisfiability decision by exhaustive enumeration."""
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = [False] + list(bits)
        if all(
            any(
                (not assignment[lit >> 1]) if (lit & 1) else assignment[lit >> 1]
                for lit in clause
            )
            for clause in clauses
        ):
            return True
    return False


def _model_satisfies(model, clauses):
    return all(
        any((not model[lit >> 1]) if (lit & 1) else model[lit >> 1] for lit in clause)
        for clause in clauses
    )


def _random_clauses(rng, num_vars, num_clauses, max_len=3):
    return [
        [
            rng.randint(1, num_vars) * 2 + rng.randint(0, 1)
            for _ in range(rng.randint(1, max_len))
        ]
        for _ in range(num_clauses)
    ]


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]


class TestBasicSolving:
    def test_simple_sat(self):
        solver = CdclSolver()
        x, y = solver.new_variable(), solver.new_variable()
        solver.add_clause([make_literal(x)])
        solver.add_clause([make_literal(x, True), make_literal(y)])
        assert solver.solve() is SatResult.SAT
        assert solver.value(x) is True
        assert solver.value(y) is True

    def test_simple_unsat(self):
        solver = CdclSolver()
        x = solver.new_variable()
        solver.add_clause([make_literal(x)])
        solver.add_clause([make_literal(x, True)])
        assert solver.solve() is SatResult.UNSAT

    def test_empty_clause_unsat(self):
        solver = CdclSolver()
        solver.new_variable()
        solver.add_clause([])
        assert solver.solve() is SatResult.UNSAT

    def test_no_clauses_is_sat(self):
        solver = CdclSolver()
        solver.new_variable()
        assert solver.solve() is SatResult.SAT

    def test_clause_with_unknown_variable_rejected(self):
        solver = CdclSolver()
        with pytest.raises(SolverError):
            solver.add_clause([make_literal(7)])

    def test_pigeonhole_3_into_2_unsat(self):
        # Three pigeons, two holes: classic small UNSAT instance exercising
        # conflict analysis beyond unit propagation.
        solver = CdclSolver()
        var = {}
        for pigeon in range(3):
            for hole in range(2):
                var[(pigeon, hole)] = solver.new_variable()
        for pigeon in range(3):
            solver.add_clause([make_literal(var[(pigeon, hole)]) for hole in range(2)])
        for hole in range(2):
            for first in range(3):
                for second in range(first + 1, 3):
                    solver.add_clause(
                        [
                            make_literal(var[(first, hole)], True),
                            make_literal(var[(second, hole)], True),
                        ]
                    )
        assert solver.solve() is SatResult.UNSAT

    def test_incremental_reuse(self):
        solver = CdclSolver()
        x, y = solver.new_variable(), solver.new_variable()
        solver.add_clause([make_literal(x), make_literal(y)])
        assert solver.solve() is SatResult.SAT
        solver.add_clause([make_literal(x, True)])
        solver.add_clause([make_literal(y, True)])
        assert solver.solve() is SatResult.UNSAT

    def test_assumptions(self):
        solver = CdclSolver()
        x, y = solver.new_variable(), solver.new_variable()
        solver.add_clause([make_literal(x), make_literal(y)])
        assert solver.solve([make_literal(x, True), make_literal(y, True)]) is SatResult.UNSAT
        # Without assumptions the instance is still satisfiable.
        assert solver.solve() is SatResult.SAT
        assert solver.solve([make_literal(x, True)]) is SatResult.SAT
        assert solver.value(y) is True

    def test_conflict_budget_returns_unknown(self):
        rng = random.Random(7)
        solver = CdclSolver(max_conflicts=1)
        num_vars = 20
        solver.ensure_variables(num_vars)
        for clause in _random_clauses(rng, num_vars, 120):
            solver.add_clause(clause)
        result = solver.solve()
        assert result in {SatResult.SAT, SatResult.UNSAT, SatResult.UNKNOWN}


def _pigeonhole_clauses(solver, pigeons, holes, guard=None):
    """Add PHP(pigeons, holes) clauses, optionally guarded by ``~guard``."""
    prefix = [make_literal(guard, True)] if guard is not None else []
    var = {}
    for pigeon in range(pigeons):
        for hole in range(holes):
            var[(pigeon, hole)] = solver.new_variable()
    for pigeon in range(pigeons):
        solver.add_clause(
            prefix + [make_literal(var[(pigeon, hole)]) for hole in range(holes)]
        )
    for hole in range(holes):
        for first in range(pigeons):
            for second in range(first + 1, pigeons):
                solver.add_clause(
                    prefix
                    + [
                        make_literal(var[(first, hole)], True),
                        make_literal(var[(second, hole)], True),
                    ]
                )
    return var


class TestModelLifetime:
    def test_model_before_any_solve_raises(self):
        solver = CdclSolver()
        solver.new_variable()
        with pytest.raises(SolverError):
            solver.model()

    def test_model_after_unsat_raises(self):
        # Regression: model()/value() used to return the stale model of a
        # *previous* SAT answer after a later UNSAT solve().
        solver = CdclSolver()
        x = solver.new_variable()
        solver.add_clause([make_literal(x)])
        assert solver.solve() is SatResult.SAT
        assert solver.value(x) is True
        solver.add_clause([make_literal(x, True)])
        assert solver.solve() is SatResult.UNSAT
        with pytest.raises(SolverError):
            solver.model()
        with pytest.raises(SolverError):
            solver.value(x)

    def test_model_after_assumption_unsat_raises(self):
        solver = CdclSolver()
        x = solver.new_variable()
        solver.add_clause([make_literal(x)])
        assert solver.solve() is SatResult.SAT
        assert solver.solve([make_literal(x, True)]) is SatResult.UNSAT
        with pytest.raises(SolverError):
            solver.model()
        # A new SAT answer makes the model available again.
        assert solver.solve() is SatResult.SAT
        assert solver.value(x) is True

    def test_model_after_unknown_raises(self):
        # (a|b), (~a|b), (a|~b): satisfiable, but the first decision (~a,
        # saved phase False) forces a conflict, exhausting a zero budget.
        solver = CdclSolver(max_conflicts=0)
        a, b = solver.new_variable(), solver.new_variable()
        assert solver.solve() is SatResult.SAT  # caches a model
        solver.add_clause([make_literal(a), make_literal(b)])
        solver.add_clause([make_literal(a, True), make_literal(b)])
        solver.add_clause([make_literal(a), make_literal(b, True)])
        assert solver.solve() is SatResult.UNKNOWN
        with pytest.raises(SolverError):
            solver.model()


class TestIncrementalSolving:
    def test_assumption_levels_initialised_in_init(self):
        solver = CdclSolver()
        assert "_active_assumption_levels" in vars(solver)
        assert solver._active_assumption_levels == []

    def test_alternating_assumption_sets(self):
        solver = CdclSolver()
        guard = solver.new_variable()
        _pigeonhole_clauses(solver, 3, 2, guard=guard)
        # The pigeonhole clauses are active only under the guard.
        assert solver.solve([make_literal(guard)]) is SatResult.UNSAT
        assert solver.solve([make_literal(guard, True)]) is SatResult.SAT
        assert solver.model()[guard] is False
        assert solver.solve([make_literal(guard)]) is SatResult.UNSAT
        assert solver.solve() is SatResult.SAT

    def test_restarts_with_active_assumptions(self):
        # restart_base=1 restarts after (nearly) every conflict, so the
        # assumption bookkeeping must survive repeated backtracking below
        # and re-establishment above the assumption levels.
        rng = random.Random(23)
        for _ in range(25):
            num_vars = rng.randint(4, 8)
            clauses = _random_clauses(rng, num_vars, rng.randint(10, 30))
            assumption_var = num_vars + 1
            solver = CdclSolver(restart_base=1)
            solver.ensure_variables(assumption_var)
            for clause in clauses:
                solver.add_clause(clause)
            assumptions = [make_literal(assumption_var, rng.randint(0, 1) == 1)]
            result = solver.solve(assumptions)
            expected = _brute_force_sat(num_vars, clauses)
            assert (result is SatResult.SAT) == expected
            if expected:
                model = solver.model()
                assert _model_satisfies(model, clauses)
                # The assumption itself must hold in the model.
                literal = assumptions[0]
                value = model[literal >> 1]
                assert value is not bool(literal & 1)
            if solver.statistics.conflicts > 0:
                assert solver.statistics.restarts > 0

    def test_backjumps_while_assumptions_active(self):
        # PHP(4,3) guarded: deciding it under the guard assumption forces
        # many conflicts/backjumps above the assumption level before the
        # final UNSAT-under-assumptions verdict.
        solver = CdclSolver()
        guard = solver.new_variable()
        _pigeonhole_clauses(solver, 4, 3, guard=guard)
        assert solver.solve([make_literal(guard)]) is SatResult.UNSAT
        assert solver.statistics.conflicts > 0
        # The guard is not unit-implied: dropping the assumption leaves SAT.
        assert solver.solve() is SatResult.SAT

    def test_clause_addition_between_solves(self):
        solver = CdclSolver()
        x, y, z = (solver.new_variable() for _ in range(3))
        solver.add_clause([make_literal(x), make_literal(y)])
        assert solver.solve() is SatResult.SAT
        solver.add_clause([make_literal(z)])
        assert solver.solve() is SatResult.SAT
        assert solver.value(z) is True
        solver.add_clause([make_literal(x, True)])
        assert solver.solve() is SatResult.SAT
        assert solver.value(y) is True
        solver.add_clause([make_literal(y, True)])
        assert solver.solve() is SatResult.UNSAT

    def test_conflict_budget_is_per_call(self):
        # With a lifetime budget the second call would return UNKNOWN
        # immediately; with a per-call budget, learned clauses accumulate
        # across calls until the guarded pigeonhole is refuted.
        solver = CdclSolver(max_conflicts=3)
        guard = solver.new_variable()
        _pigeonhole_clauses(solver, 3, 2, guard=guard)
        result = solver.solve([make_literal(guard)])
        for _ in range(200):
            if result is not SatResult.UNKNOWN:
                break
            result = solver.solve([make_literal(guard)])
        assert result is SatResult.UNSAT
        # The relaxed problem is still satisfiable afterwards.
        assert solver.solve([make_literal(guard, True)]) is SatResult.SAT

    def test_clauses_added_counter(self):
        solver = CdclSolver()
        x, y = solver.new_variable(), solver.new_variable()
        solver.add_clause([make_literal(x), make_literal(y)])
        solver.add_clause([make_literal(x), make_literal(x, True)])  # tautology
        assert solver.statistics.clauses_added == 1
        solver.add_clause([make_literal(y, True)])
        assert solver.statistics.clauses_added == 2


def _dpll(clauses, num_vars):
    """Reference DPLL with unit propagation (no learning, no heuristics).

    Deliberately a different algorithm from the CDCL solver under test, so
    a shared bug is unlikely; used by the differential fuzz below to guard
    the blocking-literal / LBD / garbage-collection changes to the hot
    path.
    """

    def propagate(assignment, clauses):
        changed = True
        while changed:
            changed = False
            for clause in clauses:
                unassigned = []
                satisfied = False
                for literal in clause:
                    value = assignment[literal >> 1]
                    if value is None:
                        unassigned.append(literal)
                    elif value != bool(literal & 1):
                        satisfied = True
                        break
                if satisfied:
                    continue
                if not unassigned:
                    return False  # conflict
                if len(unassigned) == 1:
                    literal = unassigned[0]
                    assignment[literal >> 1] = not (literal & 1)
                    changed = True
        return True

    def search(assignment):
        assignment = list(assignment)
        if not propagate(assignment, clauses):
            return False
        try:
            variable = assignment.index(None, 1)
        except ValueError:
            return True
        for value in (True, False):
            candidate = list(assignment)
            candidate[variable] = value
            if search(candidate):
                return True
        return False

    return search([None] * (num_vars + 1))


class TestCdclVersusDpll:
    def test_random_cnfs_agree_with_reference_dpll(self):
        # Differential fuzz on small random CNFs: the tuned CDCL solver
        # (blocking literals, glucose reduction, GC) must agree with the
        # naive reference DPLL on every instance, and SAT models must
        # satisfy the clauses.
        rng = random.Random(1234)
        for trial in range(200):
            num_vars = rng.randint(2, 10)
            clauses = _random_clauses(rng, num_vars, rng.randint(2, 40))
            expected = _dpll(clauses, num_vars)
            solver = CdclSolver(restart_base=rng.choice([1, 4, 100]))
            solver.ensure_variables(num_vars)
            for clause in clauses:
                solver.add_clause(clause)
            result = solver.solve()
            assert (result is SatResult.SAT) == expected, (trial, clauses)
            if expected:
                assert _model_satisfies(solver.model(), clauses)

    def test_incremental_with_gc_agrees_with_dpll(self):
        # Interleave solving, clause addition and level-0 GC: the verdict
        # stream must match a reference decision on the accumulated CNF.
        rng = random.Random(4321)
        for _ in range(30):
            num_vars = rng.randint(3, 8)
            solver = CdclSolver()
            solver.ensure_variables(num_vars)
            accumulated = []
            alive = True
            for _ in range(6):
                batch = _random_clauses(rng, num_vars, rng.randint(1, 6))
                accumulated.extend(batch)
                if alive:
                    for clause in batch:
                        solver.add_clause(clause)
                result = solver.solve()
                expected = _dpll(accumulated, num_vars)
                assert (result is SatResult.SAT) == expected
                alive = result is SatResult.SAT
                if not alive:
                    break
                solver.simplify_database()


class TestSimplifyDatabase:
    def test_removes_satisfied_clauses(self):
        solver = CdclSolver()
        x, y, z = (solver.new_variable() for _ in range(3))
        solver.add_clause([make_literal(x), make_literal(y)])
        solver.add_clause([make_literal(x, True), make_literal(z)])
        # Fix x true: the first clause becomes fixed-satisfied, the second
        # loses its ~x literal and becomes the unit z.
        solver.add_clause([make_literal(x)])
        removed = solver.simplify_database()
        assert removed == 2
        assert solver.statistics.gc_removed_clauses == 2
        assert solver.solve() is SatResult.SAT
        assert solver.value(x) is True
        assert solver.value(z) is True

    def test_gc_preserves_verdicts_under_activation_scopes(self):
        # MiniSat-style scope retirement: clauses guarded by an activation
        # literal are garbage once the guard is fixed false.
        solver = CdclSolver()
        guard = solver.new_variable()
        _pigeonhole_clauses(solver, 3, 2, guard=guard)
        assert solver.solve([make_literal(guard)]) is SatResult.UNSAT
        solver.add_clause([make_literal(guard, True)])  # retire the scope
        removed = solver.simplify_database()
        assert removed > 0
        assert solver.solve() is SatResult.SAT

    def test_gc_above_level_zero_rejected(self):
        solver = CdclSolver()
        solver.new_variable()
        solver._trail_limits.append(0)  # simulate an open decision level
        with pytest.raises(SolverError):
            solver.simplify_database()
        solver._trail_limits.pop()

    def test_gc_on_unsat_database_is_noop(self):
        solver = CdclSolver()
        x = solver.new_variable()
        solver.add_clause([make_literal(x)])
        solver.add_clause([make_literal(x, True)])
        assert solver.simplify_database() == 0
        assert solver.solve() is SatResult.UNSAT


class TestLearnedClauseQuality:
    def test_learned_clauses_carry_lbd(self):
        solver = CdclSolver()
        guard = solver.new_variable()
        _pigeonhole_clauses(solver, 4, 3, guard=guard)
        assert solver.solve([make_literal(guard)]) is SatResult.UNSAT
        learned = [clause for clause in solver._clauses if clause.learned]
        assert learned, "pigeonhole refutation must learn clauses"
        assert all(clause.lbd >= 1 for clause in learned)

    def test_fallback_branch_scan_covers_all_variables(self):
        # Drain the order heap manually: solving must still find every
        # unassigned variable through the forward-scan fallback.
        solver = CdclSolver()
        variables = [solver.new_variable() for _ in range(12)]
        for first, second in zip(variables, variables[1:]):
            solver.add_clause([make_literal(first), make_literal(second)])
        solver._order_heap.clear()
        assert solver.solve() is SatResult.SAT
        model = solver.model()
        for first, second in zip(variables, variables[1:]):
            assert model[first] or model[second]
        # The low-water mark advanced past the scanned prefix.
        assert solver._fallback_head > 1


class TestDifferential:
    def test_random_instances_match_brute_force(self):
        rng = random.Random(11)
        for _ in range(150):
            num_vars = rng.randint(1, 8)
            clauses = _random_clauses(rng, num_vars, rng.randint(1, 30))
            expected = _brute_force_sat(num_vars, clauses)
            solver = CdclSolver()
            solver.ensure_variables(num_vars)
            for clause in clauses:
                solver.add_clause(clause)
            result = solver.solve()
            assert (result is SatResult.SAT) == expected
            if expected:
                assert _model_satisfies(solver.model(), clauses)

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_property_random_formulas(self, data):
        num_vars = data.draw(st.integers(min_value=1, max_value=6))
        clause_strategy = st.lists(
            st.lists(
                st.integers(min_value=2, max_value=num_vars * 2 + 1),
                min_size=1,
                max_size=3,
            ),
            min_size=1,
            max_size=15,
        )
        clauses = data.draw(clause_strategy)
        expected = _brute_force_sat(num_vars, clauses)
        formula = CnfFormula()
        formula.new_variables(num_vars)
        for clause in clauses:
            formula.add_clause(clause)
        result, model = solve_formula(formula)
        assert (result is SatResult.SAT) == expected
        if expected:
            assert model is not None
            assert _model_satisfies(model, clauses)


class TestAdaptiveRestarts:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(SolverError, match="restart strategy"):
            CdclSolver(restart_strategy="geometric")

    def test_glucose_agrees_with_brute_force(self):
        # Differential fuzz: glucose-style adaptive restarts change only
        # the search schedule, never the verdict or model validity.
        rng = random.Random(23)
        for _ in range(120):
            num_vars = rng.randint(1, 8)
            clauses = _random_clauses(rng, num_vars, rng.randint(1, 30))
            expected = _brute_force_sat(num_vars, clauses)
            solver = CdclSolver(restart_strategy="glucose")
            solver.ensure_variables(num_vars)
            for clause in clauses:
                solver.add_clause(clause)
            result = solver.solve()
            assert (result is SatResult.SAT) == expected
            if expected:
                assert _model_satisfies(solver.model(), clauses)

    def test_glucose_restarts_fire_on_hard_instances(self):
        # Pigeonhole 7-into-6 forces many LBD windows of conflicts, so the
        # adaptive policy must restart at least once.
        pigeons, holes = 7, 6
        solver = CdclSolver(restart_strategy="glucose")
        variables = {
            (pigeon, hole): solver.new_variable()
            for pigeon in range(pigeons)
            for hole in range(holes)
        }
        for pigeon in range(pigeons):
            solver.add_clause(
                [make_literal(variables[(pigeon, hole)]) for hole in range(holes)]
            )
        for hole in range(holes):
            for first in range(pigeons):
                for second in range(first + 1, pigeons):
                    solver.add_clause(
                        [
                            make_literal(variables[(first, hole)], negative=True),
                            make_literal(variables[(second, hole)], negative=True),
                        ]
                    )
        assert solver.solve() is SatResult.UNSAT
        assert solver.statistics.restarts >= 1

    def test_job_limits_span_solve_calls(self):
        # A conflict ceiling is absolute: on an instance that cannot be
        # decided without conflicts (pigeonhole 4-into-3), a ceiling of 0
        # forces UNKNOWN on every solve until the limits are cleared.
        pigeons, holes = 4, 3
        solver = CdclSolver()
        variables = {
            (pigeon, hole): solver.new_variable()
            for pigeon in range(pigeons)
            for hole in range(holes)
        }
        for pigeon in range(pigeons):
            solver.add_clause(
                [make_literal(variables[(pigeon, hole)]) for hole in range(holes)]
            )
        for hole in range(holes):
            for first in range(pigeons):
                for second in range(first + 1, pigeons):
                    solver.add_clause(
                        [
                            make_literal(variables[(first, hole)], negative=True),
                            make_literal(variables[(second, hole)], negative=True),
                        ]
                    )
        solver.set_limits(conflict_ceiling=0)
        assert solver.solve() is SatResult.UNKNOWN
        assert solver.solve() is SatResult.UNKNOWN  # ceiling spans calls
        solver.set_limits(None, None)
        assert solver.solve() is SatResult.UNSAT


class TestSessionRetentionHooks:
    """reduce_learned / shrink_variables / reset_search_state (pool hooks)."""

    def _solver_with_learned_clauses(self):
        # Pigeonhole 5-into-4: UNSAT, guaranteed to learn clauses.
        pigeons, holes = 5, 4
        solver = CdclSolver()
        variables = {
            (pigeon, hole): solver.new_variable()
            for pigeon in range(pigeons)
            for hole in range(holes)
        }
        for pigeon in range(pigeons):
            solver.add_clause(
                [make_literal(variables[(pigeon, hole)]) for hole in range(holes)]
            )
        for hole in range(holes):
            for first in range(pigeons):
                for second in range(first + 1, pigeons):
                    solver.add_clause(
                        [
                            make_literal(variables[(first, hole)], negative=True),
                            make_literal(variables[(second, hole)], negative=True),
                        ]
                    )
        return solver

    def test_reduce_learned_threshold_and_drop_all(self):
        solver = self._solver_with_learned_clauses()
        assert solver.solve() is SatResult.UNSAT
        learned = [c for c in solver._clauses if c.learned]
        assert learned, "expected learned clauses from the pigeonhole proof"
        removed = solver.reduce_learned(2)
        survivors = [c for c in solver._clauses if c.learned]
        assert all(c.lbd <= 2 or len(c.literals) <= 2 for c in survivors)
        # Drop-all retains nothing learned (locked reasons aside).
        removed_all = solver.reduce_learned(0)
        assert removed + removed_all >= len(learned) - len(
            [c for c in solver._clauses if c.learned]
        )
        assert solver.solve() is SatResult.UNSAT  # database still sound

    def test_shrink_variables_drops_clauses_and_allows_regrowth(self):
        solver = CdclSolver()
        a, b = solver.new_variable(), solver.new_variable()
        solver.add_clause([make_literal(a), make_literal(b)])
        watermark = solver.num_variables
        c = solver.new_variable()
        solver.add_clause([make_literal(b, negative=True), make_literal(c)])
        removed = solver.shrink_variables(watermark)
        assert removed == 1
        assert solver.num_variables == watermark
        # The retained clause still solves; fresh variables reuse indices.
        d = solver.new_variable()
        assert d == watermark + 1
        solver.add_clause([make_literal(d, negative=True)])
        assert solver.solve() is SatResult.SAT
        model = solver.model()
        assert model[a] or model[b]
        assert model[d] is False

    def test_shrink_variables_requires_level_zero(self):
        solver = self._solver_with_learned_clauses()
        solver._trail_limits.append(0)  # simulate an open decision level
        with pytest.raises(SolverError, match="level 0"):
            solver.shrink_variables(1)
        solver._trail_limits.pop()

    def _guarded_pigeonhole(self):
        """Pigeonhole 5-into-4, guarded by an activation literal.

        Solving under the activation assumption is UNSAT but does not
        latch the solver's permanent UNSAT flag, so the search can be
        re-run — which is what a pooled session does between jobs.
        """
        pigeons, holes = 5, 4
        solver = CdclSolver()
        guard = solver.new_variable()
        variables = {
            (pigeon, hole): solver.new_variable()
            for pigeon in range(pigeons)
            for hole in range(holes)
        }
        deactivate = make_literal(guard, negative=True)
        for pigeon in range(pigeons):
            solver.add_clause(
                [deactivate]
                + [make_literal(variables[(pigeon, hole)]) for hole in range(holes)]
            )
        for hole in range(holes):
            for first in range(pigeons):
                for second in range(first + 1, pigeons):
                    solver.add_clause(
                        [
                            deactivate,
                            make_literal(variables[(first, hole)], negative=True),
                            make_literal(variables[(second, hole)], negative=True),
                        ]
                    )
        return solver, [make_literal(guard)]

    def test_reset_search_state_replays_identical_search(self):
        first, assumptions = self._guarded_pigeonhole()
        baseline, base_assumptions = self._guarded_pigeonhole()
        assert first.solve(assumptions) is SatResult.UNSAT
        first_stats = (
            first.statistics.conflicts,
            first.statistics.decisions,
            first.statistics.propagations,
        )
        first.reduce_learned(0)
        first.reset_search_state()
        # The reset solver must retrace the fresh solver's search exactly.
        assert first.solve(assumptions) is SatResult.UNSAT
        assert baseline.solve(base_assumptions) is SatResult.UNSAT
        base_stats = (
            baseline.statistics.conflicts,
            baseline.statistics.decisions,
            baseline.statistics.propagations,
        )
        assert first_stats == base_stats
        assert (
            first.statistics.conflicts,
            first.statistics.decisions,
            first.statistics.propagations,
        ) == tuple(2 * value for value in base_stats)
