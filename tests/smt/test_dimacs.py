"""Tests for DIMACS CNF input/output."""

import pytest

from repro.core import SolverError
from repro.smt import (
    CnfFormula,
    SatResult,
    dumps_dimacs,
    loads_dimacs,
    make_literal,
    solve_formula,
)


class TestDimacsRoundTrip:
    def test_dump_format(self):
        formula = CnfFormula()
        formula.new_variables(2)
        formula.add_dimacs_clause([1, -2])
        text = dumps_dimacs(formula, comments=["example"])
        assert "c example" in text
        assert "p cnf 2 1" in text
        assert "1 -2 0" in text

    def test_load_and_solve(self):
        text = """
c a small satisfiable instance
p cnf 3 3
1 2 0
-1 3 0
-2 -3 0
"""
        formula = loads_dimacs(text)
        assert formula.num_variables == 3
        assert len(formula.clauses) == 3
        result, model = solve_formula(formula)
        assert result is SatResult.SAT
        assert model is not None
        assert formula.evaluate(model)

    def test_round_trip_preserves_satisfiability(self):
        formula = CnfFormula()
        x, y = formula.new_variables(2)
        formula.add_clause([make_literal(x)])
        formula.add_clause([make_literal(x, True), make_literal(y, True)])
        reloaded = loads_dimacs(dumps_dimacs(formula))
        original_result, _ = solve_formula(formula)
        reloaded_result, _ = solve_formula(reloaded)
        assert original_result == reloaded_result

    def test_malformed_problem_line(self):
        with pytest.raises(SolverError):
            loads_dimacs("p cnf x\n1 0\n")

    def test_clause_before_header(self):
        with pytest.raises(SolverError):
            loads_dimacs("1 -2 0\n")

    def test_literal_out_of_range(self):
        with pytest.raises(SolverError):
            loads_dimacs("p cnf 2 1\n3 0\n")

    def test_trailing_clause_without_zero(self):
        formula = loads_dimacs("p cnf 2 1\n1 -2\n")
        assert len(formula.clauses) == 1
