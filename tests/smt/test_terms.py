"""Tests for the QF_BV term language and its reference evaluator."""

import pytest
from hypothesis import given, strategies as st

from repro.core import SolverError
from repro.smt import (
    Assignment,
    FALSE,
    TRUE,
    bool_and,
    bool_const,
    bool_iff,
    bool_implies,
    bool_ite,
    bool_not,
    bool_or,
    bool_var,
    bool_xor,
    bv_ashr,
    bv_concat,
    bv_const,
    bv_extract,
    bv_ite,
    bv_lshr,
    bv_shl,
    bv_sign_extend,
    bv_var,
    bv_zero_extend,
    evaluate,
    free_variables,
)


def _assign(**values):
    return Assignment(bv_values=values)


class TestConstruction:
    def test_constant_masking(self):
        assert bv_const(0x1FF, 8).value == 0xFF

    def test_width_mismatch_rejected(self):
        with pytest.raises(SolverError):
            bv_var("a", 8).eq(bv_var("b", 16))

    def test_zero_width_rejected(self):
        with pytest.raises(SolverError):
            bv_const(0, 0)

    def test_int_coercion_in_operators(self):
        x = bv_var("x", 8)
        term = x + 3
        assert evaluate(term, _assign(x=4)) == 7

    def test_bool_constant_folding(self):
        assert bool_not(TRUE) is FALSE or evaluate(bool_not(TRUE), Assignment()) is False
        assert evaluate(bool_and(), Assignment()) is True
        assert evaluate(bool_or(), Assignment()) is False

    def test_extract_bounds_checked(self):
        with pytest.raises(SolverError):
            bv_extract(bv_var("x", 8), 9, 0)


class TestEvaluation:
    def test_arithmetic_wraps(self):
        x = bv_var("x", 8)
        assert evaluate(x + 200, _assign(x=100)) == (300 % 256)
        assert evaluate(x - 200, _assign(x=100)) == (100 - 200) % 256
        assert evaluate(x * 3, _assign(x=100)) == (300 % 256)

    def test_bitwise_ops(self):
        x, y = bv_var("x", 8), bv_var("y", 8)
        env = _assign(x=0b1100, y=0b1010)
        assert evaluate(x & y, env) == 0b1000
        assert evaluate(x | y, env) == 0b1110
        assert evaluate(x ^ y, env) == 0b0110
        assert evaluate(~x, env) == 0b11110011

    def test_shifts_saturate_at_width(self):
        x = bv_var("x", 8)
        assert evaluate(bv_shl(x, 9), _assign(x=0xFF)) == 0
        assert evaluate(bv_lshr(x, 9), _assign(x=0xFF)) == 0
        assert evaluate(bv_ashr(x, 9), _assign(x=0x80)) == 0xFF
        assert evaluate(bv_ashr(x, 2), _assign(x=0x84)) == 0xE1

    def test_comparisons(self):
        x, y = bv_var("x", 8), bv_var("y", 8)
        env = _assign(x=0xF0, y=0x10)
        assert evaluate(x.ult(y), env) is False
        assert evaluate(x.slt(y), env) is True  # 0xF0 is negative signed
        assert evaluate(x.uge(y), env) is True
        assert evaluate(x.sle(y), env) is True
        assert evaluate(x.eq(y), env) is False
        assert evaluate(x.ne(y), env) is True

    def test_ite(self):
        x = bv_var("x", 8)
        term = bv_ite(x.ult(bv_const(5, 8)), bv_const(1, 8), bv_const(2, 8))
        assert evaluate(term, _assign(x=3)) == 1
        assert evaluate(term, _assign(x=9)) == 2
        formula = bool_ite(x.eq(bv_const(0, 8)), bool_const(True), bool_const(False))
        assert evaluate(formula, _assign(x=0)) is True

    def test_extract_concat_extend(self):
        x = bv_var("x", 8)
        env = _assign(x=0xAB)
        assert evaluate(bv_extract(x, 7, 4), env) == 0xA
        assert evaluate(bv_concat(x, bv_const(0xC, 4)), env) == 0xABC
        assert evaluate(bv_zero_extend(x, 16), env) == 0xAB
        assert evaluate(bv_sign_extend(x, 16), env) == 0xFFAB

    def test_boolean_connectives(self):
        a, b = bool_var("a"), bool_var("b")
        env = Assignment(bool_values={"a": True, "b": False})
        assert evaluate(bool_and(a, b), env) is False
        assert evaluate(bool_or(a, b), env) is True
        assert evaluate(bool_xor(a, b), env) is True
        assert evaluate(bool_implies(a, b), env) is False
        assert evaluate(bool_iff(a, a), env) is True

    def test_missing_variable_raises(self):
        with pytest.raises(SolverError):
            evaluate(bv_var("missing", 8), Assignment())

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    def test_add_commutes(self, a, b):
        x, y = bv_var("x", 8), bv_var("y", 8)
        env = _assign(x=a, y=b)
        assert evaluate(x + y, env) == evaluate(y + x, env) == (a + b) % 256

    @given(st.integers(min_value=0, max_value=255))
    def test_neg_is_sub_from_zero(self, a):
        x = bv_var("x", 8)
        env = _assign(x=a)
        assert evaluate(-x, env) == evaluate(bv_const(0, 8) - x, env)


class TestHashConsing:
    def test_structurally_equal_terms_are_identical(self):
        # Same construction from *different call sites* must yield the
        # same object, so downstream identity caches (evaluator,
        # bit-blaster) hit.
        def build():
            x, y = bv_var("x", 8), bv_var("y", 8)
            return (x + y).eq(bv_const(45, 8)) & x.ult(y)

        assert build() is build()

    def test_interning_distinguishes_widths_and_names(self):
        assert bv_var("x", 8) is not bv_var("x", 4)
        assert bv_var("x", 8) is not bv_var("y", 8)
        assert bv_const(3, 8) is not bv_const(3, 4)

    def test_constants_intern_modulo_width(self):
        assert bv_const(0x1FF, 8) is bv_const(0xFF, 8)

    def test_operand_order_distinguishes(self):
        x, y = bv_var("x", 8), bv_var("y", 8)
        assert (x - y) is not (y - x)
        assert (x - y) is (x - y)

    def test_ite_extract_extend_interned(self):
        x, y = bv_var("x", 8), bv_var("y", 8)
        p = bool_var("p")
        assert bv_ite(p, x, y) is bv_ite(p, x, y)
        assert bv_extract(x, 5, 2) is bv_extract(x, 5, 2)
        assert bv_zero_extend(x, 16) is bv_zero_extend(x, 16)
        assert bool_ite(p, p, bool_var("q")) is bool_ite(p, p, bool_var("q"))


class TestFreeVariables:
    def test_collects_names_and_widths(self):
        x, y = bv_var("x", 8), bv_var("y", 4)
        flag = bool_var("flag")
        term = bool_and(x.eq(bv_zero_extend(y, 8)), flag)
        bools, bvs = free_variables(term)
        assert set(bools) == {"flag"}
        assert bvs == {"x": 8, "y": 4}

    def test_width_conflict_detected(self):
        term = bool_and(
            bv_var("x", 8).eq(bv_const(0, 8)), bv_var("x", 4).eq(bv_const(0, 4))
        )
        with pytest.raises(SolverError):
            free_variables(term)


class TestInternScopes:
    def test_scoped_entries_evicted_on_discard(self):
        from repro.smt.terms import (
            intern_table_size, pop_intern_scope, push_intern_scope,
        )

        base = intern_table_size()
        token = push_intern_scope()
        x = bv_var("intern_scope_x", 8)
        y = x + bv_const(1, 8)
        assert intern_table_size() > base
        evicted = pop_intern_scope(token)
        assert evicted >= 2  # the variable and the add node are new
        assert intern_table_size() == base
        # The terms themselves stay alive and usable; only future sharing
        # with structurally equal terms is lost.
        rebuilt = bv_var("intern_scope_x", 8) + bv_const(1, 8)
        assert rebuilt is not y
        assert evaluate(y, Assignment(bv_values={"intern_scope_x": 5})) == 6

    def test_scoped_entries_kept_without_discard(self):
        from repro.smt.terms import (
            intern_table_size, pop_intern_scope, push_intern_scope,
        )

        token = push_intern_scope()
        kept = bv_var("intern_scope_kept", 8) + bv_const(2, 8)
        grown = intern_table_size()
        assert pop_intern_scope(token, discard=False) == 0
        assert intern_table_size() == grown
        assert (bv_var("intern_scope_kept", 8) + bv_const(2, 8)) is kept

    def test_nested_scopes_pop_lifo(self):
        from repro.core.exceptions import SolverError
        from repro.smt.terms import pop_intern_scope, push_intern_scope

        outer = push_intern_scope()
        inner = push_intern_scope()
        with pytest.raises(SolverError, match="out of order"):
            pop_intern_scope(outer)
        pop_intern_scope(inner)
        pop_intern_scope(outer)

    def test_inner_entries_reattributed_to_outer_scope(self):
        from repro.smt.terms import (
            intern_table_size, pop_intern_scope, push_intern_scope,
        )

        base = intern_table_size()
        outer = push_intern_scope()
        inner = push_intern_scope()
        bv_var("intern_scope_nested", 8) + bv_const(3, 8)
        pop_intern_scope(inner, discard=False)
        assert pop_intern_scope(outer) >= 2
        assert intern_table_size() == base
