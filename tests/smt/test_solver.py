"""Tests for the SMT facade (repro.smt.solver)."""

import pytest

from repro.core import SolverError
from repro.smt import (
    SmtDeductiveEngine,
    SmtResult,
    SmtSolver,
    bool_not,
    bool_or,
    bv_const,
    bv_var,
    solve,
)


class TestSmtSolver:
    def test_sat_with_model(self):
        solver = SmtSolver()
        x, y = bv_var("x", 8), bv_var("y", 8)
        solver.add((x + y).eq(bv_const(45, 8)), x.ult(y), x.ne(bv_const(0, 8)))
        assert solver.check() is SmtResult.SAT
        model = solver.model()
        assert (model["x"] + model["y"]) % 256 == 45
        assert model["x"] < model["y"]
        assert model["x"] != 0

    def test_unsat(self):
        solver = SmtSolver()
        x = bv_var("x", 8)
        solver.add(x.ult(bv_const(3, 8)), x.ugt(bv_const(5, 8)))
        assert solver.check() is SmtResult.UNSAT
        with pytest.raises(SolverError):
            solver.model()

    def test_push_pop(self):
        solver = SmtSolver()
        x = bv_var("x", 4)
        solver.add(x.ult(bv_const(8, 4)))
        solver.push()
        solver.add(x.uge(bv_const(8, 4)))
        assert solver.check() is SmtResult.UNSAT
        solver.pop()
        assert solver.check() is SmtResult.SAT

    def test_pop_without_push_raises(self):
        with pytest.raises(SolverError):
            SmtSolver().pop()

    def test_only_bool_terms_assertable(self):
        with pytest.raises(SolverError):
            SmtSolver().add(bv_var("x", 4))

    def test_extra_assertions_in_check(self):
        solver = SmtSolver()
        x = bv_var("x", 4)
        solver.add(x.ult(bv_const(8, 4)))
        assert solver.check(x.eq(bv_const(9, 4))) is SmtResult.UNSAT
        assert solver.check(x.eq(bv_const(5, 4))) is SmtResult.SAT

    def test_model_evaluate_completes_missing_variables(self):
        solver = SmtSolver()
        x = bv_var("x", 4)
        solver.add(x.eq(bv_const(3, 4)))
        solver.check()
        model = solver.model()
        unrelated = bv_var("unrelated", 4)
        assert model.evaluate(unrelated.eq(bv_const(0, 4))) is True

    def test_is_valid_and_is_satisfiable(self):
        solver = SmtSolver()
        x = bv_var("x", 4)
        assert solver.is_valid(bool_or(x.ult(bv_const(8, 4)), x.uge(bv_const(8, 4))))
        assert not solver.is_valid(x.ult(bv_const(8, 4)))
        assert solver.is_satisfiable(x.eq(bv_const(7, 4)))

    def test_statistics_track_checks(self):
        solver = SmtSolver()
        x = bv_var("x", 4)
        solver.add(x.eq(bv_const(1, 4)))
        solver.check()
        solver.check(x.eq(bv_const(2, 4)))
        assert solver.statistics.checks == 2
        assert solver.statistics.sat_answers == 1
        assert solver.statistics.unsat_answers == 1

    def test_statistics_count_clauses_and_variables(self):
        # Regression: clauses_generated was declared but never incremented.
        solver = SmtSolver()
        x, y = bv_var("x", 8), bv_var("y", 8)
        solver.add((x + y).eq(bv_const(45, 8)))
        assert solver.check() is SmtResult.SAT
        assert solver.statistics.clauses_generated > 0
        assert solver.statistics.variables_generated > 0

    def test_repeated_check_reuses_encoding(self):
        # In incremental mode an unchanged assertion stack must not be
        # re-bit-blasted: no new SAT variables or clauses appear.
        solver = SmtSolver()
        x = bv_var("x", 8)
        solver.add((x * bv_const(3, 8)).eq(bv_const(33, 8)))
        assert solver.check() is SmtResult.SAT
        variables_first = solver.statistics.variables_generated
        clauses_first = solver.statistics.clauses_generated
        assert solver.check() is SmtResult.SAT
        assert solver.statistics.variables_generated == variables_first
        assert solver.statistics.clauses_generated == clauses_first

    def test_reencode_mode_pays_per_check(self):
        solver = SmtSolver(reencode_each_check=True)
        x = bv_var("x", 8)
        solver.add((x * bv_const(3, 8)).eq(bv_const(33, 8)))
        assert solver.check() is SmtResult.SAT
        variables_first = solver.statistics.variables_generated
        assert solver.check() is SmtResult.SAT
        assert solver.statistics.variables_generated == 2 * variables_first

    def test_model_value_resolves_single_names(self):
        solver = SmtSolver()
        x, y = bv_var("x", 8), bv_var("y", 8)
        solver.add(x.eq(bv_const(3, 8)), y.eq(bv_const(9, 8)))
        assert solver.check() is SmtResult.SAT
        assert solver.model_value("x") == 3
        assert solver.model_value("y") == 9
        assert solver.model_value("never_declared") is None
        assert solver.check(x.eq(bv_const(4, 8))) is SmtResult.UNSAT
        with pytest.raises(SolverError):
            solver.model_value("x")

    def test_one_shot_solve_helper(self):
        x = bv_var("x", 6)
        verdict, model = solve([x.ugt(bv_const(60, 6))])
        assert verdict is SmtResult.SAT
        assert model["x"] > 60


@pytest.mark.parametrize("reencode", [False, True], ids=["incremental", "reencode"])
class TestScopesAndAssumptions:
    """Push/pop and check-time extras, in both solver modes."""

    def test_popped_scope_does_not_constrain_later_checks(self, reencode):
        solver = SmtSolver(reencode_each_check=reencode)
        x = bv_var("x", 4)
        solver.add(x.ult(bv_const(8, 4)))
        solver.push()
        solver.add(x.eq(bv_const(3, 4)))
        assert solver.check() is SmtResult.SAT
        assert solver.model()["x"] == 3
        solver.pop()
        solver.push()
        solver.add(x.eq(bv_const(5, 4)))
        assert solver.check() is SmtResult.SAT
        assert solver.model()["x"] == 5
        solver.pop()

    def test_popped_unsat_scope_recovers(self, reencode):
        solver = SmtSolver(reencode_each_check=reencode)
        x = bv_var("x", 4)
        solver.add(x.ult(bv_const(8, 4)))
        solver.push()
        solver.add(x.uge(bv_const(8, 4)))
        assert solver.check() is SmtResult.UNSAT
        solver.pop()
        assert solver.check() is SmtResult.SAT
        assert solver.model()["x"] < 8

    def test_nested_scopes(self, reencode):
        solver = SmtSolver(reencode_each_check=reencode)
        x = bv_var("x", 4)
        solver.add(x.ult(bv_const(8, 4)))
        solver.push()
        solver.add(x.uge(bv_const(2, 4)))
        solver.push()
        solver.add(x.eq(bv_const(1, 4)))
        assert solver.check() is SmtResult.UNSAT
        solver.pop()
        assert solver.check() is SmtResult.SAT
        assert 2 <= solver.model()["x"] < 8
        solver.pop()
        assert solver.check(x.eq(bv_const(1, 4))) is SmtResult.SAT

    def test_extra_formulas_do_not_persist(self, reencode):
        solver = SmtSolver(reencode_each_check=reencode)
        x = bv_var("x", 4)
        solver.add(x.ult(bv_const(8, 4)))
        assert solver.check(x.eq(bv_const(9, 4))) is SmtResult.UNSAT
        assert solver.check() is SmtResult.SAT
        assert solver.check(x.eq(bv_const(5, 4))) is SmtResult.SAT
        assert solver.model()["x"] == 5
        # Several different extras in sequence each constrain only their
        # own check.
        for value in (0, 3, 7):
            assert solver.check(x.eq(bv_const(value, 4))) is SmtResult.SAT
            assert solver.model()["x"] == value

    def test_incremental_and_reencode_agree(self, reencode):
        del reencode  # this test runs the comparison itself
        x, y = bv_var("x", 8), bv_var("y", 8)
        script = [
            ("add", (x + y).eq(bv_const(10, 8))),
            ("check", None),
            ("push", None),
            ("add", x.ugt(y)),
            ("check", None),
            ("add", x.eq(y)),
            ("check", None),
            ("pop", None),
            ("check", x.eq(y)),
            ("check", None),
        ]
        verdicts = []
        for mode in (False, True):
            solver = SmtSolver(reencode_each_check=mode)
            run = []
            for action, payload in script:
                if action == "add":
                    solver.add(payload)
                elif action == "push":
                    solver.push()
                elif action == "pop":
                    solver.pop()
                else:
                    extras = (payload,) if payload is not None else ()
                    run.append(solver.check(*extras))
            verdicts.append(run)
        assert verdicts[0] == verdicts[1]

    def test_only_bool_terms_checkable(self, reencode):
        solver = SmtSolver(reencode_each_check=reencode)
        with pytest.raises(SolverError):
            solver.check(bv_var("x", 4))


class TestQueryShrinkingLayers:
    """The word-level / encoding-level / SAT-level ablation knobs."""

    @pytest.mark.parametrize(
        "options",
        [
            dict(simplify_terms=False),
            dict(polarity_aware=False),
            dict(simplify_terms=False, polarity_aware=False),
            dict(gc_dead_clauses=None),
            dict(gc_dead_clauses=1),
        ],
        ids=["no-simplify", "no-polarity", "neither", "no-gc", "eager-gc"],
    )
    def test_ablations_agree_on_scripted_run(self, options):
        x, y = bv_var("x", 8), bv_var("y", 8)
        reference = SmtSolver()
        ablated = SmtSolver(**options)
        script = [
            ("add", (x + y).eq(bv_const(10, 8))),
            ("check", None),
            ("push", None),
            ("add", x.ugt(y)),
            ("check", None),
            ("pop", None),
            ("push", None),
            ("add", x.eq(y)),
            ("check", None),
            ("pop", None),
            ("check", x.ult(bv_const(3, 8))),
            ("check", None),
        ]
        for action, payload in script:
            outcomes = []
            for solver in (reference, ablated):
                if action == "add":
                    solver.add(payload)
                elif action == "push":
                    solver.push()
                elif action == "pop":
                    solver.pop()
                else:
                    extras = (payload,) if payload is not None else ()
                    outcomes.append(solver.check(*extras))
            if outcomes:
                assert outcomes[0] == outcomes[1]
                if outcomes[0] is SmtResult.SAT:
                    for solver in (reference, ablated):
                        model = solver.model()
                        for formula in solver.assertions:
                            assert model.evaluate(formula) is True

    def test_simplified_tautology_never_reaches_sat_core(self):
        solver = SmtSolver()
        x = bv_var("x", 8)
        solver.add(x.uge(bv_const(0, 8)))  # trivially true
        assert solver.check() is SmtResult.SAT
        assert solver.statistics.terms_simplified == 1
        # Only the blaster's constant-true clause was ever generated (the
        # assertion itself folded to that same literal and was absorbed).
        assert solver.statistics.clauses_generated == 1
        assert solver.statistics.variables_generated == 1

    def test_polarity_aware_generates_fewer_clauses(self):
        x, y = bv_var("x", 8), bv_var("y", 8)
        formula = bool_or(x.eq(y), x.ult(bv_const(3, 8)))
        counts = {}
        for polarity_aware in (True, False):
            solver = SmtSolver(polarity_aware=polarity_aware)
            solver.add(formula)
            assert solver.check() is SmtResult.SAT
            counts[polarity_aware] = solver.statistics.clauses_generated
        assert counts[True] < counts[False]

    def test_scope_gc_reclaims_dead_clauses(self):
        solver = SmtSolver(gc_dead_clauses=1)  # collect on every pop
        x = bv_var("x", 8)
        solver.add(x.ult(bv_const(100, 8)))
        for value in range(6):
            solver.push()
            solver.add((x * bv_const(value + 2, 8)).eq(bv_const(value, 8)))
            solver.check()
            solver.pop()
        assert solver.statistics.clauses_collected > 0
        # Retired scopes must not constrain later checks.
        assert solver.check() is SmtResult.SAT
        assert solver.model()["x"] < 100

    def test_nested_pop_keeps_outer_scope_in_gc_accounting(self):
        # Regression: popping a small inner scope must not erase the
        # enclosing scope's clauses from the dead-clause accounting.
        solver = SmtSolver(gc_dead_clauses=100)
        x, y = bv_var("x", 8), bv_var("y", 8)
        solver.push()
        for value in range(8):
            solver.add((x * bv_const(value + 3, 8)).eq(y + bv_const(value, 8)))
        solver.check()
        solver.push()
        solver.add(x.ult(bv_const(5, 8)))
        solver.check()
        solver.pop()  # tiny inner scope
        solver.pop()  # big outer scope: its clauses must count as dead
        assert solver.statistics.clauses_collected > 0
        assert solver.check() is SmtResult.SAT

    def test_scope_gc_interleaved_with_nested_scopes(self):
        solver = SmtSolver(gc_dead_clauses=1)
        x = bv_var("x", 4)
        solver.add(x.ult(bv_const(8, 4)))
        solver.push()
        solver.add(x.uge(bv_const(2, 4)))
        solver.push()
        solver.add(x.eq(bv_const(1, 4)))
        assert solver.check() is SmtResult.UNSAT
        solver.pop()
        assert solver.check() is SmtResult.SAT
        assert 2 <= solver.model()["x"] < 8
        solver.pop()
        assert solver.check(x.eq(bv_const(1, 4))) is SmtResult.SAT


class TestSmtDeductiveEngine:
    def test_decide_sat(self):
        engine = SmtDeductiveEngine()
        x = bv_var("x", 8)
        answer = engine.decide((x * bv_const(2, 8)).eq(bv_const(10, 8)))
        assert answer.decided and answer.verdict is True
        assert (answer.witness["x"] * 2) % 256 == 10

    def test_decide_unsat(self):
        engine = SmtDeductiveEngine()
        x = bv_var("x", 8)
        answer = engine.decide(bool_not(x.eq(x)))
        assert answer.decided and answer.verdict is False

    def test_lightweightness_documented(self):
        assert "QF_BV" in SmtDeductiveEngine().lightweightness()


class TestCheckMemoization:
    def test_repeated_check_hits_the_memo(self):
        from repro.smt.terms import bv_const, bv_var

        solver = SmtSolver(memoize_checks=True)
        x = bv_var("memo_x", 8)
        solver.add((x * bv_const(3, 8)).eq(bv_const(15, 8)))
        assert solver.check() is SmtResult.SAT
        witness = solver.model_value("memo_x")
        conflicts_after_first = solver.sat_statistics().conflicts
        assert solver.statistics.check_memo_hits == 0

        assert solver.check() is SmtResult.SAT
        assert solver.statistics.check_memo_hits == 1
        # No SAT work was done and the recorded model is served.
        assert solver.sat_statistics().conflicts == conflicts_after_first
        assert solver.model_value("memo_x") == witness

    def test_new_assertion_misses_the_memo(self):
        from repro.smt.terms import bv_const, bv_var

        solver = SmtSolver(memoize_checks=True)
        y = bv_var("memo_y", 8)
        solver.add(y.ult(bv_const(10, 8)))
        assert solver.check() is SmtResult.SAT
        solver.add(y.uge(bv_const(10, 8)))
        assert solver.check() is SmtResult.UNSAT
        assert solver.statistics.check_memo_hits == 0

    def test_extra_assumptions_key_the_memo(self):
        from repro.smt.terms import bv_const, bv_var

        solver = SmtSolver(memoize_checks=True)
        z = bv_var("memo_z", 8)
        solver.add(z.ult(bv_const(4, 8)))
        assert solver.check(z.eq(bv_const(2, 8))) is SmtResult.SAT
        assert solver.check(z.eq(bv_const(9, 8))) is SmtResult.UNSAT
        assert solver.statistics.check_memo_hits == 0
        # Replaying the pair: the first query misses — its entry was
        # recorded before the second query's gates grew the variable
        # frontier, and the memo key is deliberately layout-exact — and
        # is re-recorded at the current frontier; the second query hits.
        assert solver.check(z.eq(bv_const(2, 8))) is SmtResult.SAT
        assert solver.check(z.eq(bv_const(9, 8))) is SmtResult.UNSAT
        assert solver.statistics.check_memo_hits == 1
        # From here the layout is stable, so the whole pair replays from
        # the memo — the steady state a pooled session reaches.
        assert solver.check(z.eq(bv_const(2, 8))) is SmtResult.SAT
        assert solver.check(z.eq(bv_const(9, 8))) is SmtResult.UNSAT
        assert solver.statistics.check_memo_hits == 3

    def test_scope_pop_invalidates_by_content(self):
        from repro.smt.terms import bv_const, bv_var

        solver = SmtSolver(memoize_checks=True)
        w = bv_var("memo_w", 8)
        solver.push()
        solver.add(w.eq(bv_const(1, 8)))
        assert solver.check() is SmtResult.SAT
        solver.pop()
        # Different assertion content => different key, no false hit.
        solver.push()
        solver.add(w.eq(bv_const(2, 8)))
        assert solver.check() is SmtResult.SAT
        assert solver.model_value("memo_w") == 2
        solver.pop()

    def test_clear_check_memo(self):
        from repro.smt.terms import bv_const, bv_var

        solver = SmtSolver(memoize_checks=True)
        v = bv_var("memo_v", 8)
        solver.add(v.eq(bv_const(5, 8)))
        assert solver.check() is SmtResult.SAT
        solver.clear_check_memo()
        assert solver.check() is SmtResult.SAT
        assert solver.statistics.check_memo_hits == 0
