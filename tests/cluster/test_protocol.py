"""Frame codec: round-trips, torn frames, and corruption rejection."""

from __future__ import annotations

import io
import struct
import zlib

import pytest

from repro.cluster.protocol import (
    MAGIC,
    MAX_FRAME_BYTES,
    FramedSocket,
    ProtocolError,
    TornFrameError,
    encode_frame,
    read_frame,
)


def roundtrip(payload: dict) -> dict:
    return read_frame(io.BytesIO(encode_frame(payload)))


class TestRoundTrip:
    def test_simple_payload(self):
        payload = {"op": "job", "job_id": 7, "nested": {"a": [1, 2, 3]}}
        assert roundtrip(payload) == payload

    def test_empty_object(self):
        assert roundtrip({}) == {}

    def test_unicode_and_null(self):
        payload = {"text": "solver ✓", "missing": None}
        assert roundtrip(payload) == payload

    def test_deterministic_encoding(self):
        # Key order must not leak into the bytes: equal payloads encode
        # identically regardless of insertion order.
        a = encode_frame({"x": 1, "y": 2})
        b = encode_frame({"y": 2, "x": 1})
        assert a == b

    def test_multiple_frames_in_sequence(self):
        stream = io.BytesIO(
            encode_frame({"seq": 1}) + encode_frame({"seq": 2}) + encode_frame({"seq": 3})
        )
        assert [read_frame(stream)["seq"] for _ in range(3)] == [1, 2, 3]
        assert read_frame(stream) is None  # clean EOF at a boundary


class TestCleanEof:
    def test_empty_stream_returns_none(self):
        assert read_frame(io.BytesIO(b"")) is None


class TestTornFrames:
    """EOF strictly inside a frame is torn, never silently dropped."""

    @pytest.mark.parametrize("keep", [1, 3])
    def test_torn_magic(self, keep):
        frame = encode_frame({"op": "x"})
        with pytest.raises(TornFrameError):
            read_frame(io.BytesIO(frame[:keep]))

    def test_torn_header(self):
        frame = encode_frame({"op": "x"})
        with pytest.raises(TornFrameError):
            read_frame(io.BytesIO(frame[: len(MAGIC) + 3]))

    def test_torn_body(self):
        frame = encode_frame({"op": "x"})
        with pytest.raises(TornFrameError):
            read_frame(io.BytesIO(frame[:-1]))

    def test_second_frame_torn_after_clean_first(self):
        first = encode_frame({"seq": 1})
        second = encode_frame({"seq": 2})
        stream = io.BytesIO(first + second[:-4])
        assert read_frame(stream) == {"seq": 1}
        with pytest.raises(TornFrameError):
            read_frame(stream)


class TestCorruption:
    def test_bad_magic(self):
        frame = bytearray(encode_frame({"op": "x"}))
        frame[0] ^= 0xFF
        with pytest.raises(ProtocolError):
            read_frame(io.BytesIO(bytes(frame)))

    def test_flipped_body_byte_fails_crc(self):
        frame = bytearray(encode_frame({"op": "x"}))
        frame[-1] ^= 0x01
        with pytest.raises(ProtocolError, match="checksum"):
            read_frame(io.BytesIO(bytes(frame)))

    def test_oversized_length_rejected_before_read(self):
        header = MAGIC + struct.pack(">II", MAX_FRAME_BYTES + 1, 0)
        with pytest.raises(ProtocolError, match="exceeds"):
            read_frame(io.BytesIO(header))

    def test_non_object_body_rejected(self):
        body = b"[1, 2, 3]"
        frame = MAGIC + struct.pack(">II", len(body), zlib.crc32(body)) + body
        with pytest.raises(ProtocolError):
            read_frame(io.BytesIO(frame))

    def test_non_json_body_rejected(self):
        body = b"\x00\x01\x02"
        frame = MAGIC + struct.pack(">II", len(body), zlib.crc32(body)) + body
        with pytest.raises(ProtocolError):
            read_frame(io.BytesIO(frame))

    def test_oversized_payload_refused_on_encode(self):
        with pytest.raises(ProtocolError):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 16)})


class TestConnectFailureCleanup:
    """A dial whose post-connect setup fails must not leak the socket."""

    def test_failed_setup_closes_the_socket(self, monkeypatch):
        class _FakeSocket:
            closed = False

            def settimeout(self, value):
                raise OSError("fd gone")

            def close(self):
                self.closed = True

        sock = _FakeSocket()
        monkeypatch.setattr(
            "repro.cluster.protocol.socket.create_connection",
            lambda *args, **kwargs: sock,
        )
        with pytest.raises(OSError):
            FramedSocket.connect("127.0.0.1", 1)
        assert sock.closed
