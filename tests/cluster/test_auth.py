"""Token auth: parsing, constant-time identify, bind guard, HTTP 401s."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.api.config import EngineConfig
from repro.cluster.auth import (
    DEFAULT_IDENTITY,
    AuthConfigError,
    TokenSet,
    ensure_bind_allowed,
    is_loopback,
)
from repro.service.server import SciductionService


class TestTokenSetParsing:
    def test_empty_spec_means_no_auth(self):
        tokens = TokenSet.from_spec(None)
        assert not tokens.required()
        assert tokens.first_token() is None

    def test_bare_secret_maps_to_default_identity(self):
        tokens = TokenSet.from_spec("sekret")
        assert tokens.required()
        assert tokens.identify("sekret") == DEFAULT_IDENTITY

    def test_identity_secret_form(self):
        tokens = TokenSet.from_spec("ci:sekret")
        # The presented token is the full entry text.
        assert tokens.identify("ci:sekret") == "ci"
        assert tokens.identify("sekret") is None

    def test_multiple_entries(self):
        tokens = TokenSet.from_spec("ci:alpha,dev:beta,gamma")
        assert tokens.identify("ci:alpha") == "ci"
        assert tokens.identify("dev:beta") == "dev"
        assert tokens.identify("gamma") == DEFAULT_IDENTITY
        assert tokens.identify("delta") is None

    def test_wrong_token_rejected(self):
        tokens = TokenSet.from_spec("sekret")
        assert tokens.identify("sekre") is None
        assert tokens.identify("sekret2") is None
        assert tokens.identify("") is None
        assert tokens.identify(None) is None

    def test_malformed_entries_raise(self):
        with pytest.raises(AuthConfigError):
            TokenSet.from_spec(":secretless")
        with pytest.raises(AuthConfigError):
            TokenSet.from_spec("identityless:")

    def test_first_token_is_presentation_form(self):
        assert TokenSet.from_spec("ci:sekret").first_token() == "ci:sekret"
        assert TokenSet.from_spec("bare").first_token() == "bare"


class TestBindGuard:
    def test_loopback_hosts(self):
        assert is_loopback("127.0.0.1")
        assert is_loopback("::1")
        assert is_loopback("localhost")
        assert not is_loopback("0.0.0.0")
        assert not is_loopback("192.168.1.10")
        assert not is_loopback("")
        assert not is_loopback("example.com")

    def test_loopback_bind_without_tokens_allowed(self):
        ensure_bind_allowed("127.0.0.1", TokenSet(), "test")

    def test_public_bind_without_tokens_refused(self):
        with pytest.raises(AuthConfigError, match="refusing"):
            ensure_bind_allowed("0.0.0.0", TokenSet(), "test")

    def test_public_bind_with_tokens_allowed(self):
        ensure_bind_allowed("0.0.0.0", TokenSet.from_spec("sekret"), "test")


@pytest.fixture(scope="module")
def service():
    instance = SciductionService(
        EngineConfig(),
        port=0,
        quiet=True,
        auth=TokenSet.from_spec("ci:sekret,ops:other"),
    )
    instance.start()
    yield instance
    instance.shutdown()


def http(service, method, path, body=None, token=None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        f"{service.url}{path}", data=data, method=method
    )
    if token is not None:
        request.add_header("Authorization", f"Bearer {token}")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


PROBLEM = {"kind": "deobfuscation", "task": "multiply45", "width": 4, "seed": 0}


class TestHttpAuth:
    def test_anonymous_request_gets_401(self, service):
        status, body = http(service, "GET", "/stats")
        assert status == 401
        assert body["error"]

    def test_wrong_token_gets_401(self, service):
        status, _ = http(service, "GET", "/stats", token="nope")
        assert status == 401

    def test_healthz_is_exempt(self, service):
        status, body = http(service, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_valid_token_passes(self, service):
        status, body = http(service, "GET", "/stats", token="ci:sekret")
        assert status == 200
        assert body["auth"] == {"required": True}

    def test_post_requires_auth(self, service):
        status, _ = http(service, "POST", "/jobs", {"problem": PROBLEM})
        assert status == 401

    def test_identity_overrides_claimed_client(self, service):
        # The body claims to be someone else; accounting must key on the
        # authenticated identity.
        status, body = http(
            service,
            "POST",
            "/jobs",
            {"problem": PROBLEM, "client": "impostor", "label": "auth-t1"},
            token="ci:sekret",
        )
        assert status in (200, 201, 202)
        job_id = body["job_id"]
        status, record = http(
            service, "GET", f"/jobs/{job_id}?wait=60", token="ci:sekret"
        )
        assert status == 200 and record["done"]
        status, stats = http(service, "GET", "/stats", token="ops:other")
        assert status == 200
        assert "ci" in stats["clients"]
        assert "impostor" not in stats["clients"]


class TestUnauthenticatedService:
    def test_no_tokens_means_open_loopback_service(self):
        instance = SciductionService(EngineConfig(), port=0, quiet=True)
        instance.start()
        try:
            status, body = http(instance, "GET", "/stats")
            assert status == 200
            assert body["auth"] == {"required": False}
        finally:
            instance.shutdown()
