"""Memo service + client: RPC, auth, degraded mode, counter-based re-arm."""

from __future__ import annotations

import pytest

from repro.cluster.auth import TokenSet
from repro.cluster.memoclient import (
    REARM_AFTER_CALLS,
    ClusterMemoClient,
    RemoteMemoStore,
)
from repro.cluster.memod import MemoService
from repro.cluster.protocol import ProtocolError
from repro.testing import faults


@pytest.fixture
def memod():
    service = MemoService()
    service.start()
    yield service
    service.close()


def store_for(service: MemoService, client_id: str, token: str | None = None):
    return RemoteMemoStore(
        "127.0.0.1", service.port, client_id=client_id, token=token
    )


class TestRemoteMemoStore:
    def test_miss_publish_hit(self, memod):
        store = store_for(memod, "n1")
        try:
            assert store.lookup("k1") is None
            store.publish("k1", "unsat", None)
            assert store.lookup("k1") == ("unsat", None)
            store.publish("k2", "sat", [True, False, True])
            assert store.lookup("k2") == ("sat", [True, False, True])
        finally:
            store.close()

    def test_cross_client_hits_are_counted(self, memod):
        publisher = store_for(memod, "n1")
        requester = store_for(memod, "n2")
        try:
            publisher.publish("shared", "unsat", None)
            assert requester.lookup("shared") == ("unsat", None)
            stats = requester.statistics()
            assert stats["cross_worker_hits"] == 1
            assert stats["publishes"] == 1
            assert stats["service"]["connections"] == 2
        finally:
            publisher.close()
            requester.close()

    def test_ping(self, memod):
        store = store_for(memod, "n1")
        try:
            assert store.ping() is True
        finally:
            store.close()

    def test_ping_false_when_down(self, memod):
        store = store_for(memod, "n1")
        memod.close()
        try:
            assert store.ping() is False
        finally:
            store.close()

    def test_reconnects_after_teardown(self, memod):
        store = store_for(memod, "n1")
        try:
            store.publish("k", "unsat", None)
            # Simulate a dropped connection: the next call re-dials.
            store._teardown()
            assert store.lookup("k") == ("unsat", None)
        finally:
            store.close()


class TestMemodAuth:
    @pytest.fixture
    def authed(self):
        service = MemoService(tokens=TokenSet.from_spec("ci:sekret"))
        service.start()
        yield service
        service.close()

    def test_good_token(self, authed):
        store = store_for(authed, "n1", token="ci:sekret")
        try:
            store.publish("k", "unsat", None)
            assert store.lookup("k") == ("unsat", None)
        finally:
            store.close()

    def test_bad_token_rejected(self, authed):
        store = store_for(authed, "n1", token="wrong")
        try:
            with pytest.raises(ProtocolError, match="hello failed"):
                store.lookup("k")
        finally:
            store.close()
        assert authed.statistics()["service"]["auth_failures"] >= 1

    def test_missing_token_rejected(self, authed):
        store = store_for(authed, "n1", token=None)
        try:
            with pytest.raises(ProtocolError):
                store.lookup("k")
        finally:
            store.close()


class TestClusterMemoClient:
    def test_read_through_cache(self, memod):
        publisher = store_for(memod, "n1")
        client = ClusterMemoClient(store_for(memod, "n2"))
        try:
            publisher.publish("k", "unsat", None)
            assert client.lookup("k") == ("unsat", None)  # remote hit
            assert client.lookup("k") == ("unsat", None)  # local hit
            stats = client.statistics()
            assert stats["remote_hits"] == 1
            assert stats["local_hits"] == 1
            assert not stats["degraded"]
        finally:
            publisher.close()
            client.close()

    def test_publish_goes_both_ways(self, memod):
        client = ClusterMemoClient(store_for(memod, "n1"))
        other = store_for(memod, "n2")
        try:
            client.publish("k", "sat", [True])
            assert other.lookup("k") == ("sat", [True])  # reached the service
            assert client.lookup("k") == ("sat", [True])  # and the local cache
            assert client.statistics()["local_hits"] == 1
        finally:
            client.close()
            other.close()

    def test_degrades_silently_when_service_dies(self, memod):
        client = ClusterMemoClient(store_for(memod, "n1"))
        try:
            client.publish("k", "unsat", None)
            memod.close()
            client.remote._teardown()
            # The failed call degrades the client; no exception escapes.
            assert client.lookup("other") is None
            assert client.degraded()
            # Degraded lookups still answer from the local cache.
            assert client.lookup("k") == ("unsat", None)
            stats = client.statistics()
            assert stats["degradations"] == 1
            assert stats["local_hits"] == 1
        finally:
            client.close()

    def test_degraded_calls_skip_the_network(self, memod):
        client = ClusterMemoClient(store_for(memod, "n1"))
        try:
            memod.close()
            client.remote._teardown()
            client.lookup("x")  # trips the degradation
            for index in range(10):
                assert client.lookup(f"miss-{index}") is None
            stats = client.statistics()
            assert stats["degraded_calls"] == 10
            assert stats["rearms"] == 0
        finally:
            client.close()

    def test_rearm_after_cooldown_with_restarted_service(self, memod):
        client = ClusterMemoClient(store_for(memod, "n1"))
        publisher = store_for(memod, "n2")
        try:
            publisher.publish("warm", "unsat", None)
            port = memod.port
            memod.close()
            client.remote._teardown()
            client.lookup("trip")  # degrade
            assert client.degraded()
            # Service comes back on the same port.
            revived = MemoService(port=port)
            revived.start()
            try:
                publisher2 = store_for(revived, "n3")
                publisher2.publish("warm", "unsat", None)
                # Burn through the cooldown: these calls are local-only.
                for index in range(REARM_AFTER_CALLS - 1):
                    client.lookup(f"cooldown-{index}")
                assert client.degraded()
                # The next call is the re-arm probe and reaches the store.
                assert client.lookup("warm") == ("unsat", None)
                assert not client.degraded()
                stats = client.statistics()
                assert stats["rearms"] == 1
                assert stats["remote_hits"] == 1
                publisher2.close()
            finally:
                revived.close()
        finally:
            publisher.close()
            client.close()

    def test_failed_rearm_restarts_cooldown(self, memod):
        client = ClusterMemoClient(store_for(memod, "n1"))
        try:
            memod.close()
            client.remote._teardown()
            client.lookup("trip")
            for index in range(REARM_AFTER_CALLS - 1):
                client.lookup(f"cooldown-{index}")
            # Probe fires against a still-dead service: degrade again.
            assert client.lookup("probe") is None
            assert client.degraded()
            stats = client.statistics()
            assert stats["rearms"] == 1
            assert stats["degradations"] == 2
        finally:
            client.close()


class TestMemodFaultPoint:
    def test_memod_down_fault_drops_connections(self, memod):
        client = ClusterMemoClient(store_for(memod, "n1"))
        try:
            client.publish("k", "unsat", None)
            with faults.injected({"memod.down": faults.Fault("raise", "EIO")}):
                # Force a fresh dial: the armed service drops every new
                # connection before the hello completes, and the client
                # degrades instead of raising into the caller.
                client.remote._teardown()
                assert client.lookup("anything") is None
                assert client.degraded()
            # Still answering locally while degraded.
            assert client.lookup("k") == ("unsat", None)
        finally:
            client.close()


class TestHandshakeFailureCleanup:
    """A hello that dies must close the freshly dialed link (RES01)."""

    def _store_with_fake_link(self, monkeypatch, link):
        monkeypatch.setattr(
            "repro.cluster.memoclient.FramedSocket.connect",
            staticmethod(lambda *args, **kwargs: link),
        )
        return RemoteMemoStore("127.0.0.1", 1, client_id="n1")

    def test_transport_failure_during_hello_closes_link(self, monkeypatch):
        class _DeadLink:
            closed = False

            def send(self, payload):
                raise OSError("connection reset")

            def close(self):
                self.closed = True

        link = _DeadLink()
        store = self._store_with_fake_link(monkeypatch, link)
        with pytest.raises(OSError):
            store.lookup("k")
        assert link.closed
        assert store._link is None  # the next call re-dials

    def test_rejected_hello_closes_link(self, monkeypatch):
        class _RefusingLink:
            closed = False

            def send(self, payload):
                pass

            def recv(self):
                return {"ok": False, "error": "bad token"}

            def close(self):
                self.closed = True

        link = _RefusingLink()
        store = self._store_with_fake_link(monkeypatch, link)
        with pytest.raises(ProtocolError, match="bad token"):
            store.lookup("k")
        assert link.closed
        assert store._link is None
