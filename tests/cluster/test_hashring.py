"""Rendezvous hashing: determinism, balance, and minimal movement."""

from __future__ import annotations

import pytest

from repro.cluster.hashring import rendezvous_owner, rendezvous_rank
from repro.core.exceptions import ReproError

NODES = ["alpha", "beta", "gamma", "delta"]
SHAPES = [f"deobfuscation/w{w}" for w in range(2, 34)] + [
    f"timing-analysis/p{i}/w16" for i in range(32)
]


class TestDeterminism:
    def test_owner_is_stable(self):
        first = {shape: rendezvous_owner(shape, NODES) for shape in SHAPES}
        second = {shape: rendezvous_owner(shape, NODES) for shape in SHAPES}
        assert first == second

    def test_owner_ignores_node_order(self):
        reversed_nodes = list(reversed(NODES))
        for shape in SHAPES:
            assert rendezvous_owner(shape, NODES) == rendezvous_owner(
                shape, reversed_nodes
            )

    def test_duplicate_nodes_collapse(self):
        for shape in SHAPES:
            assert rendezvous_owner(shape, NODES + NODES) == rendezvous_owner(
                shape, NODES
            )

    def test_rank_is_a_permutation(self):
        for shape in SHAPES:
            rank = rendezvous_rank(shape, NODES)
            assert sorted(rank) == sorted(NODES)

    def test_single_node_owns_everything(self):
        for shape in SHAPES:
            assert rendezvous_owner(shape, ["solo"]) == "solo"

    def test_empty_node_set_raises(self):
        with pytest.raises(ReproError):
            rendezvous_owner("any-shape", [])


class TestDistribution:
    def test_every_node_owns_some_shapes(self):
        owners = {rendezvous_owner(shape, NODES) for shape in SHAPES}
        assert owners == set(NODES)


class TestMinimalMovement:
    def test_removal_moves_only_dead_nodes_shapes(self):
        before = {shape: rendezvous_owner(shape, NODES) for shape in SHAPES}
        survivors = [node for node in NODES if node != "beta"]
        after = {shape: rendezvous_owner(shape, survivors) for shape in SHAPES}
        for shape in SHAPES:
            if before[shape] != "beta":
                assert after[shape] == before[shape], shape

    def test_orphans_land_on_their_runner_up(self):
        survivors = [node for node in NODES if node != "beta"]
        for shape in SHAPES:
            rank = rendezvous_rank(shape, NODES)
            if rank[0] == "beta":
                assert rendezvous_owner(shape, survivors) == rank[1], shape

    def test_addition_only_steals_for_the_new_node(self):
        before = {shape: rendezvous_owner(shape, NODES) for shape in SHAPES}
        grown = NODES + ["epsilon"]
        after = {shape: rendezvous_owner(shape, grown) for shape in SHAPES}
        for shape in SHAPES:
            if after[shape] != "epsilon":
                assert after[shape] == before[shape], shape
