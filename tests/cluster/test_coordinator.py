"""Coordinator scatter/gather against scripted protocol nodes.

These tests drive :class:`ClusterEngine` with *fake* nodes — threads
speaking the framed protocol, answering canned wire-form results — so
sharding, gathering, journaling and failover are all exercised in one
process, deterministically, without solver work.  Real multi-process
solving (and byte-parity against it) lives in ``test_failover.py``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api.config import EngineConfig
from repro.cluster.auth import TokenSet
from repro.cluster.coordinator import ClusterEngine
from repro.cluster.hashring import rendezvous_owner
from repro.cluster.node import PROTOCOL_VERSION
from repro.cluster.protocol import FramedSocket, ProtocolError
from repro.service.journal import JobJournal
from repro.testing import faults

PROBLEMS = [
    {"kind": "deobfuscation", "task": "multiply45", "width": 4, "seed": 0},
    {"kind": "deobfuscation", "task": "multiply45", "width": 5, "seed": 0},
    {"kind": "deobfuscation", "task": "multiply45", "width": 6, "seed": 0},
    {"kind": "deobfuscation", "task": "multiply45", "width": 4, "seed": 0},
    {"kind": "deobfuscation", "task": "multiply45", "width": 5, "seed": 0},
]


class FakeNode:
    """A scripted protocol peer: registers, answers jobs with canned results.

    Args:
        name: node name to register as.
        port: the coordinator's cluster port.
        token: registration token, when the coordinator requires auth.
        die_on_job: job_id at whose arrival the node drops its connection
            without answering (simulating a crash mid-job).
    """

    def __init__(
        self,
        name: str,
        port: int,
        token: str | None = None,
        die_on_job: int | None = None,
    ) -> None:
        self.name = name
        self.token = token
        self.die_on_job = die_on_job
        self.received: list[int] = []
        self.ack: dict | None = None
        self.link = FramedSocket.connect("127.0.0.1", port)
        self._thread: threading.Thread | None = None

    def register(self) -> dict:
        registration = {
            "op": "register",
            "node": self.name,
            "protocol": PROTOCOL_VERSION,
        }
        if self.token is not None:
            registration["token"] = self.token
        self.link.send(registration)
        self.ack = self.link.recv()
        return self.ack

    def serve(self) -> None:
        self._thread = threading.Thread(
            target=self._loop, name=f"fake-{self.name}", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while True:
            try:
                frame = self.link.recv()
            except (OSError, ProtocolError, ValueError):
                # ValueError: close() racing a blocked recv leaves the
                # buffered reader reporting "I/O on closed file".
                return
            if frame is None:
                return
            if frame.get("op") == "drain":
                self.link.close()
                return
            if frame.get("op") != "job":
                continue
            payload = frame["payload"]
            job_id = payload["job_id"]
            self.received.append(job_id)
            if self.die_on_job is not None and job_id == self.die_on_job:
                self.link.close()
                return
            try:
                self.link.send(
                    {
                        "op": "result",
                        "job_id": job_id,
                        "payload": {
                            "state": "completed",
                            "error": None,
                            "elapsed": 0.0,
                            "result": {
                                "success": True,
                                "verdict": True,
                                "iterations": 1,
                                "oracle_queries": 0,
                                "deductive_queries": 0,
                                "elapsed": 0.0,
                                "artifact_repr": None,
                                "details": {
                                    "outcome": "verified",
                                    "label": payload.get("label"),
                                    "engine": {"job_id": job_id},
                                },
                                "certificate": None,
                            },
                        },
                    }
                )
            except (OSError, ProtocolError):
                return

    def close(self) -> None:
        self.link.close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)


@pytest.fixture
def engine():
    instance = ClusterEngine(EngineConfig(), node_wait=5.0)
    yield instance
    instance.close()


def wait_for_live(engine: ClusterEngine, count: int, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if len(engine.cluster_statistics()["live_nodes"]) >= count:
            return
        time.sleep(0.02)
    raise AssertionError(f"{count} nodes never registered")


class TestRegistration:
    def test_register_and_ack(self, engine):
        node = FakeNode("alpha", engine.cluster_port)
        try:
            assert node.register()["ok"] is True
            wait_for_live(engine, 1)
            stats = engine.cluster_statistics()
            assert stats["live_nodes"] == ["alpha"]
            assert stats["nodes"]["alpha"]["registrations"] == 1
        finally:
            node.close()

    def test_empty_name_rejected(self, engine):
        node = FakeNode("", engine.cluster_port)
        try:
            ack = node.register()
            assert ack["ok"] is False and ack["status"] == 400
        finally:
            node.close()

    def test_wrong_protocol_rejected(self, engine):
        link = FramedSocket.connect("127.0.0.1", engine.cluster_port)
        try:
            link.send({"op": "register", "node": "x", "protocol": 999})
            ack = link.recv()
            assert ack["ok"] is False and "protocol" in ack["error"]
        finally:
            link.close()

    def test_reregistration_bumps_generation(self, engine):
        first = FakeNode("alpha", engine.cluster_port)
        first.register()
        wait_for_live(engine, 1)
        second = FakeNode("alpha", engine.cluster_port)
        try:
            assert second.register()["ok"] is True
            wait_for_live(engine, 1)
            stats = engine.cluster_statistics()
            assert stats["nodes"]["alpha"]["registrations"] == 2
            assert stats["live_nodes"] == ["alpha"]
        finally:
            first.close()
            second.close()


class TestAuthenticatedRegistration:
    @pytest.fixture
    def authed(self):
        instance = ClusterEngine(
            EngineConfig(), tokens=TokenSet.from_spec("fleet:sekret")
        )
        yield instance
        instance.close()

    def test_good_token(self, authed):
        node = FakeNode("alpha", authed.cluster_port, token="fleet:sekret")
        try:
            assert node.register()["ok"] is True
        finally:
            node.close()

    def test_bad_token_gets_401(self, authed):
        node = FakeNode("alpha", authed.cluster_port, token="wrong")
        try:
            ack = node.register()
            assert ack["ok"] is False and ack["status"] == 401
        finally:
            node.close()

    def test_missing_token_gets_401(self, authed):
        node = FakeNode("alpha", authed.cluster_port)
        try:
            ack = node.register()
            assert ack["ok"] is False and ack["status"] == 401
        finally:
            node.close()


class TestScatterGather:
    def test_jobs_shard_by_rendezvous_and_return_in_order(self, engine):
        nodes = [
            FakeNode(name, engine.cluster_port) for name in ("alpha", "beta")
        ]
        try:
            for node in nodes:
                node.register()
                node.serve()
            wait_for_live(engine, 2)
            jobs = [
                engine.submit(problem, label=f"sg-{index}")
                for index, problem in enumerate(PROBLEMS)
            ]
            results = engine.run_batch()
            assert len(results) == len(jobs)
            # Submission order: each result carries its label back.
            for index, result in enumerate(results):
                assert result.details["label"] == f"sg-{index}"
                assert result.details["engine"]["node"] in ("alpha", "beta")
            # Every job landed on its shape's rendezvous owner.
            by_name = {node.name: node for node in nodes}
            live = sorted(by_name)
            for job in jobs:
                owner = rendezvous_owner(job.problem.shape_key(), live)
                assert job.job_id in by_name[owner].received
            stats = engine.cluster_statistics()
            assert stats["reshards"] == 0
            completed = sum(
                record["jobs_completed"] for record in stats["nodes"].values()
            )
            assert completed == len(jobs)
        finally:
            for node in nodes:
                node.close()

    def test_cancelled_jobs_are_not_dispatched(self, engine):
        node = FakeNode("alpha", engine.cluster_port)
        try:
            node.register()
            node.serve()
            wait_for_live(engine, 1)
            keep = engine.submit(PROBLEMS[0], label="keep")
            dropped = engine.submit(PROBLEMS[1], label="dropped")
            assert engine.cancel(dropped)
            results = engine.run_batch()
            assert len(results) == 1
            assert keep.job_id in node.received
            assert dropped.job_id not in node.received
        finally:
            node.close()


class TestFailover:
    def test_node_death_reshards_onto_survivor(self, engine, tmp_path):
        engine.journal = JobJournal(tmp_path / "journal.wal")
        # Find a problem owned by "alpha" so we can kill alpha mid-job.
        jobs = [
            engine.submit(problem, label=f"fo-{index}")
            for index, problem in enumerate(PROBLEMS)
        ]
        victim_jobs = [
            job
            for job in jobs
            if rendezvous_owner(job.problem.shape_key(), ["alpha", "beta"])
            == "alpha"
        ]
        assert victim_jobs, "expected alpha to own at least one shape"
        alpha = FakeNode(
            "alpha", engine.cluster_port, die_on_job=victim_jobs[0].job_id
        )
        beta = FakeNode("beta", engine.cluster_port)
        try:
            for node in (alpha, beta):
                node.register()
                node.serve()
            wait_for_live(engine, 2)
            results = engine.run_batch()
            assert all(result.success for result in results)
            # The victim's job was re-sent to the survivor.
            assert victim_jobs[0].job_id in beta.received
            # Reshard history names the dead node and the orphaned jobs.
            stats = engine.cluster_statistics()
            assert stats["reshards"] >= 1
            assert stats["resharding_events"][0]["node"] == "alpha"
            assert victim_jobs[0].job_id in stats["resharding_events"][0]["jobs"]
            assert stats["nodes"]["alpha"]["alive"] is False
            # The WAL recorded both placements and the failover.
            journal_text = (tmp_path / "journal.wal").read_text()
            assert '"event":"assigned"' in journal_text.replace(" ", "")
            assert '"event":"resharded"' in journal_text.replace(" ", "")
        finally:
            alpha.close()
            beta.close()

    def test_no_nodes_fails_jobs_with_structured_result(self):
        instance = ClusterEngine(EngineConfig(), node_wait=0.5)
        try:
            instance.submit(PROBLEMS[0], label="unplaceable")
            results = instance.run_batch()
            assert len(results) == 1
            assert not results[0].success
            assert "no cluster nodes" in results[0].details["error"]
        finally:
            instance.close()

    def test_net_partition_fault_reshards(self, engine):
        alpha = FakeNode("alpha", engine.cluster_port)
        beta = FakeNode("beta", engine.cluster_port)
        try:
            for node in (alpha, beta):
                node.register()
                node.serve()
            wait_for_live(engine, 2)
            engine.submit(PROBLEMS[0], label="partitioned")
            # The first dispatch attempt hits the partition; the link is
            # treated as dead and the job reshards onto the other node.
            with faults.injected(
                {"net.partition": faults.Fault("raise", "EPIPE", when="1")}
            ):
                results = engine.run_batch()
            assert len(results) == 1
            assert results[0].success
            assert engine.cluster_statistics()["reshards"] >= 0
        finally:
            alpha.close()
            beta.close()
