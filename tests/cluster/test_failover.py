"""The kill-one-node drill: real processes, SIGKILL, byte-identical results.

End to end, with every role a real subprocess: memod + coordinator + two
nodes solve a skewed job stream; one node is SIGKILLed mid-batch; every
job must still reach a terminal state, the results must be canonically
byte-identical to the same stream run on the plain single-process
service, and the survivor must have taken cross-node memo hits on checks
the dead node published before it died.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.cluster.hashring import rendezvous_owner

pytestmark = pytest.mark.slow

REPO_ROOT = Path(__file__).resolve().parents[2]

NODE_NAMES = ["alpha", "beta"]


def shape_of(problem: dict) -> str:
    if problem["kind"] == "deobfuscation":
        return f"deobfuscation/w{problem['width']}"
    raise AssertionError(f"unmapped problem kind {problem['kind']}")


def build_stream() -> tuple[list[dict], str]:
    """A stream skewed onto one node (the victim) plus filler for the other.

    Duplicated victim-shape problems are what make cross-node memo hits
    observable: the victim publishes the first copy's check verdicts, the
    survivor re-runs the orphaned copies and hits them remotely.
    """
    candidates = [
        {"kind": "deobfuscation", "task": "multiply45", "width": w, "seed": 0}
        for w in (4, 5, 6, 7)
    ]
    owners = {
        shape_of(problem): rendezvous_owner(shape_of(problem), NODE_NAMES)
        for problem in candidates
    }
    victim = owners[shape_of(candidates[0])]
    stream: list[dict] = []
    for problem in candidates:
        copies = 4 if owners[shape_of(problem)] == victim else 1
        stream.extend([dict(problem)] * copies)
    return stream, victim


def wait_port(path: Path, deadline: float = 30.0) -> int:
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        if path.exists():
            text = path.read_text().strip()
            if text:
                return int(text)
        time.sleep(0.05)
    raise AssertionError(f"port file {path} never appeared")


def request(url: str, method: str = "GET", body: dict | None = None) -> dict:
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    with urllib.request.urlopen(req, timeout=120) as response:
        return json.loads(response.read())


def submit_stream(base: str, stream: list[dict], prefix: str) -> list[int]:
    # Distinct labels per job: identical (problem, label) submissions
    # would dedupe through the certificate store and skip execution.
    return [
        request(
            f"{base}/jobs",
            "POST",
            {"problem": problem, "label": f"{prefix}-{index}"},
        )["job_id"]
        for index, problem in enumerate(stream)
    ]


def wait_all(base: str, job_ids: list[int], timeout: float = 300.0) -> None:
    deadline = time.monotonic() + timeout
    for job_id in job_ids:
        while True:
            record = request(f"{base}/jobs/{job_id}?wait=30")
            if record["done"]:
                break
            assert time.monotonic() < deadline, f"job {job_id} never finished"


def canonical(record: dict) -> dict:
    """Strip fields that legitimately differ across topologies.

    Verdicts, artifacts, certificates and procedure-level details must
    be byte-identical; wall-clock timing and per-engine bookkeeping
    (which node ran it, whether its session was warm, solver-internal
    counters that memo hits short-circuit) may not.
    """
    wire = json.loads(json.dumps(record))
    wire.pop("elapsed", None)
    details = wire.get("details", {})
    # Clause/variable generation counts measure how much NEW solver state
    # a job built, which depends on session warmth: a resharded job runs
    # cold on the survivor while the reference ran it on a warm session.
    details.pop("smt_clauses_generated", None)
    details.pop("smt_variables_generated", None)
    engine = details.get("engine")
    if isinstance(engine, dict):
        for volatile in (
            "node",
            "session_reused",
            "sat_job_statistics",
            "smt_job_statistics",
        ):
            engine.pop(volatile, None)
    return wire


def collect(base: str, job_ids: list[int]) -> list[dict]:
    return [
        canonical(request(f"{base}/jobs/{job_id}/result"))
        for job_id in job_ids
    ]


def spawn(command: list[str], **env_extra: str) -> subprocess.Popen:
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(REPO_ROOT / "src")
    environment.update(env_extra)
    return subprocess.Popen(
        command,
        env=environment,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        cwd=str(REPO_ROOT),
    )


def terminate(process: subprocess.Popen) -> None:
    if process.poll() is None:
        process.kill()
        process.wait(timeout=30)


class Cluster:
    """One memod + coordinator + N nodes, cleaned up on exit."""

    def __init__(self, tmp_path: Path, victim: str, slow_victim: bool) -> None:
        self.tmp_path = tmp_path
        self.processes: dict[str, subprocess.Popen] = {}
        self.processes["memod"] = spawn(
            [
                sys.executable, "-m", "repro.cluster.memod",
                "--port", "0",
                "--port-file", str(tmp_path / "memod.port"),
            ]
        )
        self.memod_port = wait_port(tmp_path / "memod.port")
        self.processes["coordinator"] = spawn(
            [
                sys.executable, "-m", "repro.cluster.coordinator",
                "--port", "0",
                "--port-file", str(tmp_path / "http.port"),
                "--cluster-port", "0",
                "--cluster-port-file", str(tmp_path / "cluster.port"),
                "--memod", f"127.0.0.1:{self.memod_port}",
                "--data-dir", str(tmp_path / "coordinator-data"),
                "--node-wait", "60",
                "--quiet",
            ]
        )
        self.http_port = wait_port(tmp_path / "http.port")
        self.cluster_port = wait_port(tmp_path / "cluster.port")
        self.base = f"http://127.0.0.1:{self.http_port}"
        for name in NODE_NAMES:
            env_extra = {}
            if slow_victim and name == victim:
                # Stretch each of the victim's jobs so the SIGKILL lands
                # mid-batch deterministically enough to reshard work.
                env_extra["REPRO_FAULTS"] = "engine.slow:sleep:0.4"
            self.processes[name] = spawn(
                [
                    sys.executable, "-m", "repro.cluster.node",
                    "--coordinator", f"127.0.0.1:{self.cluster_port}",
                    "--memod", f"127.0.0.1:{self.memod_port}",
                    "--name", name,
                    "--quiet",
                ],
                **env_extra,
            )
        self.wait_live(len(NODE_NAMES))

    def wait_live(self, count: int, timeout: float = 60.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            stats = request(f"{self.base}/stats")
            if len(stats["cluster"]["live_nodes"]) >= count:
                return
            time.sleep(0.1)
        raise AssertionError(f"{count} nodes never became live")

    def stats(self) -> dict:
        return request(f"{self.base}/stats")

    def close(self) -> None:
        for process in self.processes.values():
            terminate(process)


@pytest.fixture
def reference_results(tmp_path):
    """The same stream run on the plain single-process service."""

    def _run(stream: list[dict], prefix: str) -> list[dict]:
        port_file = tmp_path / "reference.port"
        process = spawn(
            [
                sys.executable, "-m", "repro.service",
                "--port", "0",
                "--port-file", str(port_file),
                "--quiet",
            ]
        )
        try:
            base = f"http://127.0.0.1:{wait_port(port_file)}"
            job_ids = submit_stream(base, stream, prefix)
            wait_all(base, job_ids)
            return collect(base, job_ids)
        finally:
            terminate(process)

    return _run


class TestKillOneNodeDrill:
    def test_sigkill_mid_batch_reshards_with_identical_results(
        self, tmp_path, reference_results
    ):
        stream, victim = build_stream()
        cluster = Cluster(tmp_path, victim, slow_victim=True)
        try:
            job_ids = submit_stream(cluster.base, stream, "drill")

            # Let the victim finish at least one job (publishing its
            # check verdicts to memod), then SIGKILL it mid-batch.
            deadline = time.monotonic() + 120
            while True:
                completed = cluster.stats()["cluster"]["nodes"].get(
                    victim, {}
                ).get("jobs_completed", 0)
                if completed >= 1:
                    break
                assert time.monotonic() < deadline, "victim never completed a job"
                time.sleep(0.05)
            cluster.processes[victim].send_signal(signal.SIGKILL)
            cluster.processes[victim].wait(timeout=30)

            wait_all(cluster.base, job_ids)
            records = [
                request(f"{cluster.base}/jobs/{job_id}") for job_id in job_ids
            ]
            assert all(
                record["state"] == "completed" for record in records
            ), [record["state"] for record in records]

            stats = cluster.stats()["cluster"]
            assert stats["nodes"][victim]["alive"] is False
            assert stats["reshards"] >= 1, "the kill never orphaned a job"
            resharded = {
                job_id
                for event in stats["resharding_events"]
                for job_id in event["jobs"]
            }
            assert resharded <= set(job_ids)
            # The survivor answered re-run checks from the dead node's
            # published verdicts: the cluster memo did cross-node work.
            assert stats["memod"]["cross_worker_hits"] > 0

            drill = collect(cluster.base, job_ids)
            reference = reference_results(stream, "drill")
            assert drill == reference
        finally:
            cluster.close()

    def test_node_crash_fault_point_reshards(self, tmp_path):
        """The scripted crash (``node.crash`` exit) behaves like SIGKILL."""
        stream, victim = build_stream()
        cluster = Cluster(tmp_path, victim, slow_victim=False)
        # Re-arm the victim with a crash on its second job instead.
        terminate(cluster.processes[victim])
        cluster.processes[victim] = spawn(
            [
                sys.executable, "-m", "repro.cluster.node",
                "--coordinator", f"127.0.0.1:{cluster.cluster_port}",
                "--memod", f"127.0.0.1:{cluster.memod_port}",
                "--name", victim,
                "--quiet",
            ],
            REPRO_FAULTS="node.crash:exit:9:2",
        )
        try:
            cluster.wait_live(len(NODE_NAMES))
            job_ids = submit_stream(cluster.base, stream, "crashfault")
            wait_all(cluster.base, job_ids)
            records = [
                request(f"{cluster.base}/jobs/{job_id}") for job_id in job_ids
            ]
            assert all(record["state"] == "completed" for record in records)
            stats = cluster.stats()["cluster"]
            assert stats["reshards"] >= 1
            assert stats["nodes"][victim]["alive"] is False
        finally:
            cluster.close()


class TestGracefulDrain:
    def test_sigterm_drains_coordinator_and_nodes(self, tmp_path):
        stream, victim = build_stream()
        cluster = Cluster(tmp_path, victim, slow_victim=False)
        try:
            job_ids = submit_stream(cluster.base, stream[:4], "drain")
            wait_all(cluster.base, job_ids)
            coordinator = cluster.processes["coordinator"]
            coordinator.send_signal(signal.SIGTERM)
            assert coordinator.wait(timeout=60) == 0
            # The drain frame reached the nodes; they exit 0 on their own.
            for name in NODE_NAMES:
                assert cluster.processes[name].wait(timeout=60) == 0
        finally:
            cluster.close()
