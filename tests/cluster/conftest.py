"""Cluster-suite fixtures: lock instrumentation over the cluster layer.

The coordinator nests its cluster lock against the engine's state lock
(never holding both — that discipline is the design), the memo service
guards its shared store, and the memo client guards its degraded-mode
counters.  Running the in-process suites under the lock-order detector
turns any regression into a test failure instead of a distributed
deadlock.  The node agent (job/heartbeat state) and the framed socket
(send serialization) are instrumented too, so every cluster lock is
under the detector.
"""

from __future__ import annotations

import pytest

import repro.api.engine as engine_module
import repro.api.memo as memo_module
import repro.cluster.coordinator as coordinator_module
import repro.cluster.memoclient as memoclient_module
import repro.cluster.memod as memod_module
import repro.cluster.node as node_module
import repro.cluster.protocol as protocol_module
import repro.service.queue as queue_module
from repro.analysis import lockcheck
from repro.testing import faults


@pytest.fixture(scope="module", autouse=True)
def _lockcheck_instrumentation():
    with lockcheck.instrument(
        engine_module, memo_module, queue_module,
        coordinator_module, memoclient_module, memod_module,
        node_module, protocol_module,
    ) as registry:
        yield
    assert not registry.violations, "\n".join(registry.violations)


@pytest.fixture(autouse=True)
def _disarm_faults():
    # A test that arms fault injection and fails mid-way must not leak
    # the plan into the next test.
    yield
    faults.reset()
