"""Tests for the compiler, ISA, processor, and measurement harness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CompilationError, SimulationError
from repro.cfg import (
    absolute_difference,
    bounded_linear_search,
    conditional_cascade,
    figure4_toy,
    modular_exponentiation,
    run_program,
    saturating_add,
)
from repro.platform import (
    Binary,
    CacheConfig,
    Instruction,
    MeasurementHarness,
    Opcode,
    PerturbationModel,
    PlatformConfig,
    Processor,
    TimingOracle,
    compile_program,
    validate_binary,
)

ALL_PROGRAMS = [
    figure4_toy(),
    modular_exponentiation(4, 16),
    conditional_cascade(3),
    saturating_add(),
    absolute_difference(),
    bounded_linear_search(3),
]


class TestCompiler:
    @pytest.mark.parametrize("program", ALL_PROGRAMS, ids=lambda p: p.name)
    def test_binary_is_wellformed(self, program):
        binary = compile_program(program)
        validate_binary(binary)
        assert binary.instructions[-1].opcode is Opcode.HALT
        assert set(binary.parameters) <= set(binary.variable_addresses)

    def test_listing_renders_every_instruction(self):
        binary = compile_program(absolute_difference())
        listing = binary.listing()
        assert len(listing.splitlines()) == len(binary) + 1
        assert "halt" in listing

    def test_variable_spacing(self):
        binary = compile_program(saturating_add(), variable_spacing=4, base_address=32)
        addresses = sorted(binary.variable_addresses.values())
        assert addresses[0] == 32
        assert all(b - a == 4 for a, b in zip(addresses, addresses[1:]))

    def test_unknown_variable_address_rejected(self):
        binary = compile_program(saturating_add())
        with pytest.raises(CompilationError):
            binary.address_of("nonexistent")

    def test_invalid_branch_target_detected(self):
        binary = Binary(
            name="broken",
            instructions=[Instruction(Opcode.JUMP, target=99)],
            variable_addresses={},
            parameters=(),
            outputs=(),
            word_width=8,
            num_registers=1,
        )
        with pytest.raises(CompilationError):
            validate_binary(binary)


class TestProcessorFunctionalEquivalence:
    @pytest.mark.parametrize("program", ALL_PROGRAMS, ids=lambda p: p.name)
    def test_outputs_match_interpreter(self, program):
        binary = compile_program(program)
        processor = Processor()
        mask = (1 << program.word_width) - 1
        for index in range(6):
            inputs = {
                name: (31 * (index + 2) * (j + 1) + 7) & mask
                for j, name in enumerate(program.parameters)
            }
            expected = run_program(program, inputs)
            processor.flush_caches()
            result = processor.run(binary, inputs)
            for variable in binary.outputs:
                assert result.outputs[variable] == expected[variable]

    @settings(max_examples=20, deadline=None)
    @given(base=st.integers(min_value=0, max_value=0xFFFF), exponent=st.integers(min_value=0, max_value=15))
    def test_modexp_on_platform(self, base, exponent):
        program = modular_exponentiation(4, 16)
        binary = compile_program(program)
        processor = Processor()
        processor.flush_caches()
        result = processor.run(binary, {"base": base, "exponent": exponent})
        assert result.outputs["result"] == pow(base, exponent, 1 << 16)

    def test_missing_input_rejected(self):
        binary = compile_program(saturating_add())
        with pytest.raises(SimulationError):
            Processor().run(binary, {"a": 1})

    def test_runaway_loop_guard(self):
        config = PlatformConfig(max_instructions=10)
        binary = compile_program(modular_exponentiation(4, 16))
        with pytest.raises(SimulationError):
            Processor(config).run(binary, {"base": 2, "exponent": 3})


class TestTiming:
    def test_determinism_from_cold_state(self):
        harness = MeasurementHarness.from_program(modular_exponentiation(6, 16))
        first = harness.measure({"base": 5, "exponent": 33})
        second = harness.measure({"base": 5, "exponent": 33})
        assert first == second

    def test_more_set_bits_takes_longer(self):
        harness = MeasurementHarness.from_program(modular_exponentiation(8, 16))
        sparse = harness.measure({"base": 3, "exponent": 1})
        dense = harness.measure({"base": 3, "exponent": 255})
        assert dense > sparse

    def test_warm_start_is_faster(self):
        program = modular_exponentiation(6, 16)
        cold = MeasurementHarness.from_program(program, start_state="cold")
        warm = MeasurementHarness.from_program(program, start_state="warm")
        inputs = {"base": 3, "exponent": 21}
        assert warm.measure(inputs) < cold.measure(inputs)

    def test_snapshot_start_state(self):
        program = modular_exponentiation(4, 16)
        binary = compile_program(program)
        processor = Processor()
        processor.flush_caches()
        processor.run(binary, {"base": 1, "exponent": 15})
        snapshot = processor.snapshot_environment()
        harness = MeasurementHarness(binary, start_state="snapshot", snapshot=snapshot)
        cold = MeasurementHarness(binary, start_state="cold")
        inputs = {"base": 1, "exponent": 15}
        assert harness.measure(inputs) <= cold.measure(inputs)

    def test_cache_misses_reported(self):
        harness = MeasurementHarness.from_program(saturating_add())
        result = harness.run({"a": 1, "b": 2})
        assert result.dcache_misses > 0
        assert result.icache_misses > 0

    def test_perturbation_changes_measurements_but_not_outputs(self):
        program = saturating_add()
        noisy = MeasurementHarness.from_program(
            program, perturbation=PerturbationModel(mean=20.0, seed=1)
        )
        clean = MeasurementHarness.from_program(program)
        inputs = {"a": 10, "b": 20}
        noisy_samples = noisy.measure_repeated(inputs, trials=10)
        assert len(set(noisy_samples)) > 1
        assert min(noisy_samples) >= clean.measure(inputs)
        assert noisy.outputs(inputs) == clean.outputs(inputs)

    def test_perturbation_mean_is_bounded(self):
        model = PerturbationModel(mean=15.0, seed=3)
        samples = [model.sample() for _ in range(2000)]
        assert 0 <= min(samples)
        assert max(samples) <= 30
        assert abs(sum(samples) / len(samples) - 15.0) < 1.5

    def test_timing_oracle_counts_queries(self):
        harness = MeasurementHarness.from_program(saturating_add())
        oracle = TimingOracle(harness)
        oracle.label({"a": 1, "b": 2})
        oracle.label({"a": 3, "b": 4})
        assert oracle.query_count == 2

    def test_invalid_trials_rejected(self):
        harness = MeasurementHarness.from_program(saturating_add())
        with pytest.raises(SimulationError):
            harness.measure_repeated({"a": 1, "b": 2}, trials=0)

    def test_custom_platform_config_changes_timing(self):
        program = modular_exponentiation(4, 16)
        slow_config = PlatformConfig(
            data_cache=CacheConfig(line_size_words=1, num_sets=1, associativity=1,
                                   hit_latency=0, miss_penalty=50),
        )
        slow = MeasurementHarness.from_program(program, platform=slow_config)
        fast = MeasurementHarness.from_program(program)
        inputs = {"base": 2, "exponent": 9}
        assert slow.measure(inputs) > fast.measure(inputs)
