"""Tests for the cache and pipeline timing models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SimulationError
from repro.platform import Cache, CacheConfig, PipelineConfig, PipelineModel
from repro.platform.isa import Instruction, Opcode


class TestCacheConfig:
    def test_capacity(self):
        config = CacheConfig(line_size_words=4, num_sets=8, associativity=2)
        assert config.capacity_words == 64

    def test_geometry_validation(self):
        with pytest.raises(SimulationError):
            CacheConfig(line_size_words=3)
        with pytest.raises(SimulationError):
            CacheConfig(num_sets=0)
        with pytest.raises(SimulationError):
            CacheConfig(miss_penalty=-1)


class TestCacheBehaviour:
    def _small_cache(self):
        return Cache(CacheConfig(line_size_words=2, num_sets=2, associativity=1,
                                 hit_latency=1, miss_penalty=10))

    def test_cold_miss_then_hit(self):
        cache = self._small_cache()
        assert cache.access(0) == 11   # miss
        assert cache.access(1) == 1    # same line: hit
        assert cache.statistics.misses == 1
        assert cache.statistics.hits == 1

    def test_conflict_eviction_direct_mapped(self):
        cache = self._small_cache()
        cache.access(0)      # set 0
        cache.access(4)      # also set 0 (line 2 -> set 0): evicts line 0
        assert cache.access(0) == 11  # miss again

    def test_lru_within_set(self):
        cache = Cache(CacheConfig(line_size_words=1, num_sets=1, associativity=2,
                                  hit_latency=0, miss_penalty=5))
        cache.access(0)
        cache.access(1)
        cache.access(0)      # refresh line 0
        cache.access(2)      # evicts line 1 (LRU)
        assert cache.access(0) == 0
        assert cache.access(1) == 5

    def test_flush_and_warm(self):
        cache = self._small_cache()
        cache.access(0)
        cache.flush()
        assert not cache.probe(0)
        cache.warm([0, 2])
        assert cache.probe(0) and cache.probe(2)

    def test_snapshot_restore(self):
        cache = self._small_cache()
        cache.access(0)
        snapshot = cache.snapshot()
        cache.access(4)   # evicts line 0
        cache.restore(snapshot)
        assert cache.probe(0)

    def test_negative_address_rejected(self):
        with pytest.raises(SimulationError):
            self._small_cache().access(-1)

    def test_hit_rate(self):
        cache = self._small_cache()
        cache.access(0)
        cache.access(0)
        assert cache.statistics.hit_rate == pytest.approx(0.5)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=60))
    def test_determinism(self, addresses):
        first = Cache(CacheConfig(line_size_words=2, num_sets=4, associativity=2))
        second = Cache(CacheConfig(line_size_words=2, num_sets=4, associativity=2))
        costs_first = [first.access(a) for a in addresses]
        costs_second = [second.access(a) for a in addresses]
        assert costs_first == costs_second
        assert first.snapshot() == second.snapshot()


class TestPipelineModel:
    def test_base_and_multiply_cost(self):
        model = PipelineModel(PipelineConfig(base_cost=1, multiply_extra=3))
        add = Instruction(Opcode.ADD, rd=0, ra=1, rb=2)
        mul = Instruction(Opcode.MUL, rd=0, ra=1, rb=2)
        assert model.cost(add) == 1
        assert model.cost(mul) == 4

    def test_load_use_stall(self):
        model = PipelineModel(PipelineConfig(load_use_stall=2))
        load = Instruction(Opcode.LOAD, rd=3, address=0)
        dependent = Instruction(Opcode.ADD, rd=4, ra=3, rb=3)
        independent = Instruction(Opcode.ADD, rd=4, ra=1, rb=2)
        model.cost(load)
        assert model.cost(dependent) == 1 + 2
        model.cost(load)
        assert model.cost(independent) == 1

    def test_branch_penalty_only_when_taken(self):
        model = PipelineModel(PipelineConfig(taken_branch_penalty=2))
        branch = Instruction(Opcode.BEQZ, rd=1, target=0)
        assert model.cost(branch, branch_taken=False) == 1
        assert model.cost(branch, branch_taken=True) == 3

    def test_halt_cost_and_reset(self):
        model = PipelineModel()
        load = Instruction(Opcode.LOAD, rd=3, address=0)
        model.cost(load)
        model.reset()
        dependent = Instruction(Opcode.ADD, rd=4, ra=3, rb=3)
        assert model.cost(dependent) == 1  # stall forgotten after reset
        assert model.cost(Instruction(Opcode.HALT)) == 1
