"""Smoke tests: every example script runs end to end and prints its results.

The examples are the user-facing entry points of the library; running them
in-process (with reduced problem sizes where they accept flags) guards
against bit-rot in the documented API usage.
"""

import os
import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = EXAMPLES_DIR.parent / "src"


def _run_example(name: str, *arguments: str) -> str:
    """Run an example as a subprocess and return its stdout."""
    # The subprocess does not inherit pytest's `pythonpath` ini setting,
    # so put src/ on PYTHONPATH explicitly.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *arguments],
        capture_output=True,
        text=True,
        timeout=540,
        check=True,
        env=env,
    )
    return result.stdout


class TestExamples:
    def test_examples_directory_contents(self):
        names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert "quickstart.py" in names
        assert len(names) >= 4

    def test_timing_analysis_example_small(self):
        output = _run_example("timing_analysis.py", "--bits", "4")
        assert "feasible basis paths     : 5" in output
        assert "Worst-case execution time" in output
        assert "-> NO" in output  # the default bound is WCET - 1

    def test_transmission_example_coarse(self):
        output = _run_example("transmission_controller.py", "--step", "0.25")
        assert "paper Eq. 3" in output
        assert "closed-loop safety: SAFE" in output
        assert "g12U" in output

    def test_custom_platform_example(self):
        output = _run_example("custom_platform_wcet.py")
        assert "harsh-memory" in output and "friendly-memory" in output
        assert "noisy platform" in output

    def test_service_quickstart_example(self):
        output = _run_example("service_quickstart.py", "--width", "4")
        assert "service listening on http://" in output
        assert "deobfuscation    -> completed" in output
        assert "timing-analysis  -> completed" in output
        assert "switching-logic  -> completed" in output
        assert "done." in output

    @pytest.mark.slow
    def test_quickstart(self):
        output = _run_example("quickstart.py")
        assert "structure hypothesis" in output
        assert "Done: three sciduction instances" in output

    @pytest.mark.slow
    def test_deobfuscation_example(self):
        output = _run_example("deobfuscation.py", "--width", "8")
        assert "equivalent to the obfuscated oracle: True" in output
        assert "Figure 7" in output
