"""The docs are executable: extraction units + the real snippet run.

``benchmarks/check_docs_snippets.py`` is the CI gate that keeps the
fenced ``python`` blocks in ``docs/*.md`` working.  The fast tests here
pin its extraction/skip semantics on synthetic markdown; the slow test
executes every real runnable snippet exactly as the ``docs-snippets``
CI job does.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_ROOT / "benchmarks"))

from check_docs_snippets import extract_snippets, main, run_snippet  # noqa: E402


def write(tmp_path: Path, text: str) -> Path:
    path = tmp_path / "doc.md"
    path.write_text(text)
    return path


class TestExtraction:
    def test_runnable_skip_and_ignored_fences(self, tmp_path):
        path = write(
            tmp_path,
            "# t\n\n"
            "```python\nprint('a')\n```\n\n"
            "```python no-run\nthis is illustrative\n```\n\n"
            "```console\n$ echo hi\n```\n\n"
            "```\nplain block\n```\n",
        )
        snippets = extract_snippets(path)
        assert [s.info for s in snippets] == [
            "python", "python no-run", "console", "",
        ]
        assert [s.runnable for s in snippets] == [True, False, False, False]
        assert snippets[0].source == "print('a')"
        # The opening-fence line number points into the real file.
        assert snippets[0].line == 3

    def test_python_prefix_must_be_a_whole_word(self, tmp_path):
        # ``python3`` or ``pythonish`` info strings are not runnable
        # python fences; only the exact first word ``python`` is.
        path = write(tmp_path, "```python3\nx = 1\n```\n")
        (snippet,) = extract_snippets(path)
        assert not snippet.runnable

    def test_unterminated_fence_is_an_error(self, tmp_path):
        path = write(tmp_path, "```python\nprint('a')\n")
        with pytest.raises(ValueError, match="unterminated"):
            extract_snippets(path)

    def test_run_snippet_reports_failure_output(self, tmp_path):
        path = write(tmp_path, "```python\nraise SystemExit('boom')\n```\n")
        (snippet,) = extract_snippets(path)
        ok, output = run_snippet(snippet, timeout=60.0)
        assert not ok
        assert "boom" in output

    def test_main_fails_on_broken_snippet(self, tmp_path, capsys):
        path = write(
            tmp_path,
            "```python\nimport nonexistent_module_xyz\n```\n",
        )
        assert main([str(path)]) == 1
        assert "FAIL" in capsys.readouterr().out


@pytest.mark.slow
def test_all_real_docs_snippets_execute():
    """The actual gate: every runnable snippet in docs/ runs clean."""
    assert main([]) == 0
