"""Tests for switching-logic synthesis on the transmission example (Section 5).

The benchmark suite reproduces Eq. 3 / Eq. 4 / Fig. 10 at the paper's 0.01
grid; the tests here use a coarser grid so they run in a few seconds while
still checking the qualitative structure (guard endpoints at the gear
efficiency boundaries, fixpoint convergence, closed-loop safety).
"""

import math

import numpy as np
import pytest

from repro.hybrid import (
    FIGURE10_SCHEDULE,
    GEAR_PEAKS,
    HybridAutomaton,
    IntegratorConfig,
    PAPER_EQ3_GUARDS,
    build_transmission_system,
    efficiency,
    efficiency_of_mode,
    make_transmission_synthesizer,
    safe_speed_range,
    transmission_safety,
)


@pytest.fixture(scope="module")
def eq3_report():
    """Switching logic synthesized on a coarse (0.1) grid for the Eq. 3 setup."""
    setup = make_transmission_synthesizer(
        dwell_time=0.0, omega_step=0.1, integration_step=0.02, horizon=60.0
    )
    return setup, setup.synthesizer.synthesize()


class TestTransmissionModel:
    def test_efficiency_peaks(self):
        for gear, peak in GEAR_PEAKS.items():
            assert efficiency(gear, peak) == pytest.approx(1.0)
            assert efficiency(gear, peak + 20.0) < 0.2

    def test_safe_speed_ranges(self):
        low1, high1 = safe_speed_range(1)
        low2, high2 = safe_speed_range(2)
        low3, high3 = safe_speed_range(3)
        assert low1 == 0.0 and high1 == pytest.approx(16.708, abs=0.01)
        assert low2 == pytest.approx(13.292, abs=0.01) and high2 == pytest.approx(26.708, abs=0.01)
        assert low3 == pytest.approx(23.292, abs=0.01) and high3 == pytest.approx(36.708, abs=0.01)

    def test_safety_predicate(self):
        assert transmission_safety("N", np.array([0.0, 0.0]))
        assert transmission_safety("G1U", np.array([0.0, 10.0]))
        assert not transmission_safety("G1U", np.array([0.0, 25.0]))
        assert not transmission_safety("G2U", np.array([0.0, 61.0]))
        assert transmission_safety("G2U", np.array([0.0, 3.0]))  # below 5: vacuous
        assert efficiency_of_mode("N", 50.0) == 1.0

    def test_system_structure(self):
        system = build_transmission_system()
        assert len(system.modes) == 7
        assert len(system.transitions) == 12
        assert {t.name for t in system.exits_of("G1U")} == {"g12U", "g11D"}
        assert {t.name for t in system.entries_of("N")} == {"g1ND"}

    def test_dwell_time_applied_to_gear_modes_only(self):
        system = build_transmission_system(dwell_time=5.0)
        assert system.modes["G2U"].min_dwell == 5.0
        assert system.modes["N"].min_dwell == 0.0


class TestEq3Synthesis:
    def test_fixpoint_reached_quickly(self, eq3_report):
        _, report = eq3_report
        assert report.iterations <= 4
        assert not report.empty_guards

    def test_guard_upper_bounds_match_paper(self, eq3_report):
        _, report = eq3_report
        for name, (_, expected_high) in PAPER_EQ3_GUARDS.items():
            guard = report.switching_logic[name]
            assert guard.interval("omega").high == pytest.approx(expected_high, abs=0.15), name

    def test_guard_lower_bounds_match_paper(self, eq3_report):
        _, report = eq3_report
        for name, (expected_low, _) in PAPER_EQ3_GUARDS.items():
            guard = report.switching_logic[name]
            assert guard.interval("omega").low == pytest.approx(expected_low, abs=0.15), name

    def test_frozen_guard_untouched(self, eq3_report):
        _, report = eq3_report
        g1nd = report.switching_logic["g1ND"]
        assert g1nd.interval("omega").low == 0.0 == g1nd.interval("omega").high
        assert g1nd.interval("theta").low == g1nd.interval("theta").high

    def test_guards_are_inside_safety_bound(self, eq3_report):
        _, report = eq3_report
        for name, guard in report.switching_logic.items():
            assert guard.interval("omega").low >= 0.0
            assert guard.interval("omega").high <= 60.0

    def test_run_interface_reports_details(self):
        setup = make_transmission_synthesizer(
            dwell_time=0.0, omega_step=0.25, integration_step=0.05, horizon=50.0
        )
        result = setup.synthesizer.run()
        assert result.success
        assert "guards" in result.details
        assert result.oracle_queries > 0
        assert "hyperbox" in result.certificate.statement()

    def test_describe_table1_row(self):
        setup = make_transmission_synthesizer(omega_step=0.5)
        description = setup.synthesizer.describe()
        assert "Hyperbox" in description["I"] or "hyperbox" in description["I"]
        assert "simulation" in description["D"]


class TestDwellTimeSynthesis:
    def test_dwell_time_tightens_guards(self):
        coarse = dict(omega_step=0.2, integration_step=0.05, horizon=60.0)
        plain = make_transmission_synthesizer(dwell_time=0.0, **coarse).synthesizer.synthesize()
        dwell = make_transmission_synthesizer(dwell_time=5.0, **coarse).synthesizer.synthesize()
        for name in ("g12U", "g23U", "g22D", "g33D"):
            plain_guard = plain.switching_logic[name].interval("omega")
            dwell_guard = dwell.switching_logic[name].interval("omega")
            assert dwell_guard.width <= plain_guard.width + 1e-9, name
        # At least some guards must be strictly tighter under the dwell
        # requirement (paper Eq. 4 vs Eq. 3).
        strictly_tighter = sum(
            1
            for name in PAPER_EQ3_GUARDS
            if dwell.switching_logic[name].interval("omega").width
            < plain.switching_logic[name].interval("omega").width - 1e-9
        )
        assert strictly_tighter >= 3


class TestClosedLoop:
    def test_figure10_style_trace_is_safe_and_reaches_standstill(self, eq3_report):
        setup, report = eq3_report
        from repro.hybrid import Hyperbox, THETA_MAX

        # The synthesized g1ND guard is the designated point θ = θmax ∧ ω = 0
        # (frozen, per the paper); for the closed-loop trace we relax it to
        # "nearly stopped" so the fixed-step simulation can hit it.
        logic = dict(report.switching_logic)
        logic["g1ND"] = Hyperbox.from_bounds(
            {"theta": (0.0, THETA_MAX), "omega": (0.0, 0.5)}
        )
        automaton = HybridAutomaton(setup.system, logic, IntegratorConfig(step=0.02))
        trace = automaton.simulate_schedule(FIGURE10_SCHEDULE, horizon=200.0)
        assert trace.safe
        assert trace.transitions_taken == list(FIGURE10_SCHEDULE)
        omegas = [point.state[1] for point in trace.points]
        assert max(omegas) > 30.0          # climbs into gear 3
        assert trace.final_state[1] == pytest.approx(0.0, abs=0.2)  # back to rest
        assert trace.final_state[0] > 0.0  # distance covered
        # Efficiency stays >= 0.5 whenever omega >= 5 (the phi_S invariant).
        for point in trace.points:
            omega = point.state[1]
            if omega >= 5.0 and point.mode != "N":
                assert efficiency_of_mode(point.mode, omega) >= 0.5 - 1e-6
