"""Tests for the ODE integrator, hyperboxes, and the hyperbox hypothesis."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import GridSpec, SimulationError, StructureHypothesisError
from repro.hybrid import (
    Hyperbox,
    HyperboxHypothesis,
    IntegratorConfig,
    OdeIntegrator,
    bounding_box,
    euler_step,
    rk4_step,
)


class TestIntegrator:
    def test_exponential_decay_accuracy(self):
        integrator = OdeIntegrator(IntegratorConfig(step=0.01))
        trajectory = integrator.integrate(
            lambda state, time: -state, [1.0], horizon=1.0
        )
        assert trajectory.final_state[0] == pytest.approx(math.exp(-1.0), rel=1e-5)
        assert trajectory.final_time == pytest.approx(1.0)

    def test_rk4_order_beats_euler(self):
        field = lambda state, time: np.array([state[0]])  # y' = y
        exact = math.exp(1.0)
        rk4 = OdeIntegrator(IntegratorConfig(step=0.1, method="rk4")).integrate(
            field, [1.0], horizon=1.0
        )
        euler = OdeIntegrator(IntegratorConfig(step=0.1, method="euler")).integrate(
            field, [1.0], horizon=1.0
        )
        assert abs(rk4.final_state[0] - exact) < abs(euler.final_state[0] - exact) / 100

    def test_halving_step_reduces_rk4_error_by_about_16x(self):
        field = lambda state, time: np.array([math.sin(time) * state[0]])
        exact = math.exp(1.0 - math.cos(2.0))
        errors = []
        for step in (0.2, 0.1):
            result = OdeIntegrator(IntegratorConfig(step=step)).integrate(
                field, [1.0], horizon=2.0
            )
            errors.append(abs(result.final_state[0] - exact))
        assert errors[1] < errors[0] / 8  # ~16x for a 4th-order method

    def test_event_detection_stops_early(self):
        integrator = OdeIntegrator(IntegratorConfig(step=0.01))
        trajectory = integrator.integrate(
            lambda state, time: np.array([1.0]),
            [0.0],
            horizon=10.0,
            stop_when=lambda state, time: state[0] >= 2.0,
        )
        assert trajectory.terminated_by_event
        assert trajectory.final_time == pytest.approx(2.0, abs=0.02)

    def test_record_false_keeps_endpoints_only(self):
        integrator = OdeIntegrator(IntegratorConfig(step=0.1))
        trajectory = integrator.integrate(
            lambda state, time: np.array([1.0]), [0.0], horizon=1.0, record=False
        )
        assert len(trajectory) == 2
        assert trajectory.times[0] == 0.0
        assert trajectory.final_time == pytest.approx(1.0)

    def test_two_dimensional_system(self):
        # Harmonic oscillator: energy is conserved by RK4 to high accuracy.
        field = lambda state, time: np.array([state[1], -state[0]])
        trajectory = OdeIntegrator(IntegratorConfig(step=0.01)).integrate(
            field, [1.0, 0.0], horizon=2.0 * math.pi
        )
        assert trajectory.final_state[0] == pytest.approx(1.0, abs=1e-4)
        assert trajectory.final_state[1] == pytest.approx(0.0, abs=1e-4)

    def test_invalid_config_rejected(self):
        with pytest.raises(SimulationError):
            IntegratorConfig(step=0.0)
        with pytest.raises(SimulationError):
            IntegratorConfig(method="leapfrog")

    def test_steppers_agree_to_first_order(self):
        field = lambda state, time: np.array([2.0])
        state = np.array([1.0])
        assert rk4_step(field, state, 0.0, 0.1)[0] == pytest.approx(1.2)
        assert euler_step(field, state, 0.0, 0.1)[0] == pytest.approx(1.2)


class TestHyperbox:
    def test_membership_and_emptiness(self):
        box = Hyperbox.from_bounds({"x": (0.0, 1.0), "y": (2.0, 3.0)})
        assert box.contains({"x": 0.5, "y": 2.5})
        assert not box.contains({"x": 1.5, "y": 2.5})
        assert not box.is_empty
        empty = box.intersect(Hyperbox.from_bounds({"x": (5.0, 6.0), "y": (2.0, 3.0)}))
        assert empty.is_empty
        assert not empty.contains({"x": 5.5, "y": 2.5})

    def test_intersection_and_equality(self):
        first = Hyperbox.from_bounds({"x": (0.0, 2.0)})
        second = Hyperbox.from_bounds({"x": (1.0, 3.0)})
        assert first.intersect(second).equals(Hyperbox.from_bounds({"x": (1.0, 2.0)}))
        with pytest.raises(StructureHypothesisError):
            first.intersect(Hyperbox.from_bounds({"y": (0.0, 1.0)}))

    def test_point_box_and_describe(self):
        point = Hyperbox.point({"omega": 0.0, "theta": 1700.0})
        assert point.contains({"omega": 0.0, "theta": 1700.0})
        assert "omega = 0.00" in point.describe()
        ranged = Hyperbox.from_bounds({"omega": (0.0, 16.7)})
        assert "0.00 <= omega <= 16.70" in ranged.describe()

    def test_corners_and_center(self):
        box = Hyperbox.from_bounds({"x": (0.0, 1.0), "y": (2.0, 4.0)})
        corners = list(box.corners())
        assert len(corners) == 4
        assert {"x": 1.0, "y": 4.0} in corners
        assert box.center() == {"x": 0.5, "y": 3.0}
        assert box.volume() == pytest.approx(2.0)

    def test_contains_vector_and_snap(self):
        box = Hyperbox.from_bounds({"x": (0.0, 1.03), "y": (0.0, 2.0)})
        grids = {"x": GridSpec(0.0, 2.0, 0.5), "y": GridSpec(0.0, 2.0, 0.5)}
        snapped = box.snapped(grids)
        assert snapped.interval("x").high == pytest.approx(1.0)
        assert box.contains_vector([0.5, 1.0], order=("x", "y"))

    def test_bounding_box(self):
        points = [{"x": 0.0, "y": 1.0}, {"x": 2.0, "y": -1.0}]
        box = bounding_box(points, ("x", "y"))
        assert box.interval("x").low == 0.0 and box.interval("x").high == 2.0
        assert box.interval("y").low == -1.0
        assert bounding_box([], ("x",)).is_empty

    @settings(max_examples=30, deadline=None)
    @given(
        low=st.floats(min_value=0, max_value=5, allow_nan=False),
        width=st.floats(min_value=0, max_value=5, allow_nan=False),
        probe=st.floats(min_value=-1, max_value=11, allow_nan=False),
    )
    def test_membership_matches_interval_arithmetic(self, low, width, probe):
        box = Hyperbox.from_bounds({"x": (low, low + width)})
        assert box.contains({"x": probe}) == (low - 1e-9 <= probe <= low + width + 1e-9)


class TestHyperboxHypothesis:
    def test_grid_membership(self):
        grids = {"omega": GridSpec(0.0, 60.0, 0.01)}
        hypothesis = HyperboxHypothesis(grids)
        assert hypothesis.contains(Hyperbox.from_bounds({"omega": (0.0, 16.70)}))
        assert not hypothesis.contains(Hyperbox.from_bounds({"omega": (0.0, 16.705)}))
        assert not hypothesis.contains(Hyperbox.from_bounds({"other": (0.0, 1.0)}))
        assert hypothesis.is_strict_restriction() is True
        assert "0.01" in hypothesis.describe()
