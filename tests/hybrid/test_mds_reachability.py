"""Tests for the MDS model, the reachability oracle, and the hyperbox learner."""

import numpy as np
import pytest

from repro.core import GridSpec, SimulationError
from repro.core.oracle import FunctionLabelingOracle
from repro.hybrid import (
    GridSweepGuardEstimator,
    HybridAutomaton,
    Hyperbox,
    HyperboxLearner,
    IntegratorConfig,
    Mode,
    MonteCarloGuardEstimator,
    MultiModalSystem,
    ReachabilityOracle,
    SwitchingStateLabeler,
    Transition,
)


def _thermostat_system(min_dwell: float = 0.0) -> MultiModalSystem:
    """A 1-D thermostat: heating raises x, cooling lowers it; keep 0 <= x <= 10."""
    return MultiModalSystem(
        name="thermostat",
        state_names=("x",),
        modes={
            "HEAT": Mode("HEAT", lambda state: np.array([1.0]), min_dwell=min_dwell),
            "COOL": Mode("COOL", lambda state: np.array([-1.0]), min_dwell=min_dwell),
        },
        transitions=[
            Transition("toCool", "HEAT", "COOL"),
            Transition("toHeat", "COOL", "HEAT"),
        ],
        safety=lambda mode, state: 0.0 <= state[0] <= 10.0,
        initial_mode="HEAT",
        initial_state=np.array([5.0]),
    )


class TestMultiModalSystem:
    def test_structure_queries(self):
        system = _thermostat_system()
        assert {t.name for t in system.exits_of("HEAT")} == {"toCool"}
        assert {t.name for t in system.entries_of("HEAT")} == {"toHeat"}
        assert system.transition_named("toCool").target == "COOL"
        with pytest.raises(SimulationError):
            system.transition_named("missing")
        assert system.state_dict(np.array([3.0])) == {"x": 3.0}

    def test_unknown_mode_in_transition_rejected(self):
        with pytest.raises(SimulationError):
            MultiModalSystem(
                name="broken",
                state_names=("x",),
                modes={"A": Mode("A", lambda s: np.zeros(1))},
                transitions=[Transition("t", "A", "B")],
                safety=lambda mode, state: True,
                initial_mode="A",
                initial_state=np.zeros(1),
            )


class TestReachabilityOracle:
    def test_safe_until_exit(self):
        system = _thermostat_system()
        oracle = ReachabilityOracle(system, IntegratorConfig(step=0.05), horizon=30.0)
        exit_guards = {"toCool": Hyperbox.from_bounds({"x": (8.0, 10.0)})}
        verdict = oracle.label_state("HEAT", [5.0], exit_guards)
        assert verdict.safe
        assert verdict.exit_transition == "toCool"
        assert verdict.exit_time == pytest.approx(3.0, abs=0.1)

    def test_unsafe_before_exit(self):
        system = _thermostat_system()
        oracle = ReachabilityOracle(system, IntegratorConfig(step=0.05), horizon=30.0)
        # Exit guard unreachable (empty-ish range above the safe bound).
        exit_guards = {"toCool": Hyperbox.from_bounds({"x": (20.0, 30.0)})}
        verdict = oracle.label_state("HEAT", [5.0], exit_guards)
        assert not verdict.safe
        assert verdict.violation_time is not None

    def test_unsafe_initial_state(self):
        system = _thermostat_system()
        oracle = ReachabilityOracle(system, horizon=5.0)
        verdict = oracle.label_state("HEAT", [11.0], {})
        assert not verdict.safe
        assert verdict.violation_time == 0.0

    def test_expired_deadline_preempts_queries(self):
        import time

        from repro.core import BudgetExceededError

        system = _thermostat_system()
        oracle = ReachabilityOracle(system, IntegratorConfig(step=0.05), horizon=30.0)
        oracle.set_deadline(time.monotonic() - 1.0)
        with pytest.raises(BudgetExceededError, match="deadline"):
            oracle.label_state("HEAT", [5.0], {})
        # Clearing the deadline restores normal service.
        oracle.set_deadline(None)
        assert oracle.label_state("HEAT", [5.0], {}).safe in (True, False)

    def test_deadline_preempts_mid_simulation(self):
        import time

        from repro.core import BudgetExceededError

        system = _thermostat_system()
        oracle = ReachabilityOracle(system, IntegratorConfig(step=1e-5), horizon=30.0)
        # A deadline a few milliseconds out expires inside the (very
        # finely stepped) trajectory, between the periodic polls.
        oracle.set_deadline(time.monotonic() + 0.005)
        with pytest.raises(BudgetExceededError, match="deadline"):
            oracle.label_state("HEAT", [5.0], {})

    def test_dwell_time_delays_exit(self):
        system = _thermostat_system()
        oracle = ReachabilityOracle(system, IntegratorConfig(step=0.05), horizon=30.0)
        exit_guards = {"toCool": Hyperbox.from_bounds({"x": (0.0, 10.0)})}
        verdict = oracle.label_state("HEAT", [9.5], exit_guards, min_dwell=2.0)
        # Must stay 2 seconds, but x exceeds 10 after 0.5s -> unsafe.
        assert not verdict.safe
        immediate = oracle.label_state("HEAT", [9.5], exit_guards, min_dwell=0.0)
        assert immediate.safe

    def test_no_exit_policy(self):
        system = _thermostat_system()
        lenient = ReachabilityOracle(system, horizon=2.0, allow_no_exit=True)
        strict = ReachabilityOracle(system, horizon=2.0, allow_no_exit=False)
        assert lenient.label_state("HEAT", [1.0], {}).safe
        assert not strict.label_state("HEAT", [1.0], {}).safe

    def test_labeler_adapter_counts_queries(self):
        system = _thermostat_system()
        oracle = ReachabilityOracle(system, horizon=10.0)
        labeler = SwitchingStateLabeler(
            oracle, mode="COOL",
            exit_guards={"toHeat": Hyperbox.from_bounds({"x": (0.0, 2.0)})},
        )
        assert labeler.label({"x": 5.0}) is True
        assert labeler.label({"x": 11.0}) is False
        assert labeler.query_count == 2


class TestHyperboxLearner:
    def _target_box_oracle(self):
        return FunctionLabelingOracle(
            lambda point: 2.0 <= point["x"] <= 6.0 and 1.0 <= point["y"] <= 3.0
        )

    def test_learns_target_box(self):
        grids = {"x": GridSpec(0.0, 10.0, 0.5), "y": GridSpec(0.0, 10.0, 0.5)}
        learner = HyperboxLearner(grids)
        over = Hyperbox.from_bounds({"x": (0.0, 10.0), "y": (0.0, 10.0)})
        result = learner.learn(over, self._target_box_oracle(), {"x": 4.0, "y": 2.0})
        assert result.seed_was_safe
        assert result.box.interval("x").low == pytest.approx(2.0)
        assert result.box.interval("x").high == pytest.approx(6.0)
        assert result.box.interval("y").low == pytest.approx(1.0)
        assert result.box.interval("y").high == pytest.approx(3.0)
        assert learner.validate_corners(result.box, self._target_box_oracle())

    def test_unsafe_seed_returns_empty_box(self):
        grids = {"x": GridSpec(0.0, 10.0, 0.5), "y": GridSpec(0.0, 10.0, 0.5)}
        learner = HyperboxLearner(grids)
        over = Hyperbox.from_bounds({"x": (0.0, 10.0), "y": (0.0, 10.0)})
        result = learner.learn(over, self._target_box_oracle(), {"x": 9.0, "y": 9.0})
        assert not result.seed_was_safe
        assert result.box.is_empty

    def test_search_respects_overapproximation(self):
        grids = {"x": GridSpec(0.0, 10.0, 0.5)}
        learner = HyperboxLearner(grids)
        oracle = FunctionLabelingOracle(lambda point: point["x"] <= 8.0)
        over = Hyperbox.from_bounds({"x": (3.0, 5.0)})
        result = learner.learn(over, oracle, {"x": 4.0})
        assert result.box.interval("x").low >= 3.0
        assert result.box.interval("x").high <= 5.0

    def test_query_budget_much_smaller_than_grid(self):
        grids = {"x": GridSpec(0.0, 100.0, 0.01)}
        learner = HyperboxLearner(grids)
        oracle = FunctionLabelingOracle(lambda point: 10.0 <= point["x"] <= 90.0)
        over = Hyperbox.from_bounds({"x": (0.0, 100.0)})
        result = learner.learn(over, oracle, {"x": 50.0})
        assert result.queries < 80  # vs 10001 grid points


class TestGuardBaselines:
    def test_grid_sweep_matches_learner_but_costs_more(self):
        grids = {"x": GridSpec(0.0, 20.0, 0.1)}
        oracle_factory = lambda: FunctionLabelingOracle(
            lambda point: 4.0 <= point["x"] <= 9.0
        )
        over = Hyperbox.from_bounds({"x": (0.0, 20.0)})
        learner = HyperboxLearner(grids)
        learned = learner.learn(over, oracle_factory(), {"x": 6.0})
        sweep = GridSweepGuardEstimator(grids).estimate(over, oracle_factory(), {"x": 6.0})
        assert sweep.box.equals(learned.box, tol=1e-9)
        assert sweep.queries > learned.queries

    def test_monte_carlo_underapproximates(self):
        grids = {"x": GridSpec(0.0, 20.0, 0.1)}
        oracle = FunctionLabelingOracle(lambda point: 4.0 <= point["x"] <= 9.0)
        estimator = MonteCarloGuardEstimator(grids, samples=50, seed=1)
        estimate = estimator.estimate(Hyperbox.from_bounds({"x": (0.0, 20.0)}), oracle)
        assert estimate.box.interval("x").low >= 4.0 - 1e-9
        assert estimate.box.interval("x").high <= 9.0 + 1e-9
        assert estimate.queries == 50


class TestHybridAutomaton:
    def test_schedule_simulation_switches_and_stays_safe(self):
        system = _thermostat_system()
        logic = {
            "toCool": Hyperbox.from_bounds({"x": (0.0, 9.0)}),
            "toHeat": Hyperbox.from_bounds({"x": (1.0, 10.0)}),
        }
        automaton = HybridAutomaton(system, logic, IntegratorConfig(step=0.05))
        trace = automaton.simulate_schedule(["toCool", "toHeat"], horizon=40.0)
        assert trace.safe
        assert trace.transitions_taken == ["toCool", "toHeat"]
        modes_visited = [interval[0] for interval in trace.mode_intervals()]
        assert modes_visited[:3] == ["HEAT", "COOL", "HEAT"]

    def test_missing_guard_rejected(self):
        system = _thermostat_system()
        with pytest.raises(SimulationError):
            HybridAutomaton(system, {"toCool": Hyperbox.from_bounds({"x": (0.0, 9.0)})})

    def test_asap_policy_switches_earlier_than_latest(self):
        system = _thermostat_system()
        logic = {
            "toCool": Hyperbox.from_bounds({"x": (6.0, 9.0)}),
            "toHeat": Hyperbox.from_bounds({"x": (1.0, 4.0)}),
        }
        automaton = HybridAutomaton(system, logic, IntegratorConfig(step=0.05))
        asap = automaton.simulate_schedule(["toCool"], horizon=20.0, switch_policy="asap")
        latest = automaton.simulate_schedule(["toCool"], horizon=20.0, switch_policy="latest")
        x_at_switch_asap = asap.points[[p.mode for p in asap.points].index("COOL")].state[0]
        x_at_switch_latest = latest.points[[p.mode for p in latest.points].index("COOL")].state[0]
        assert x_at_switch_asap <= x_at_switch_latest
